"""Unit tests for the sparklite substrate (RDDs, shuffle, DAG scheduler, broadcast)."""

import numpy as np
import pytest

from repro.frameworks.sparklite import (
    Broadcast,
    HashPartitioner,
    RangePartitioner,
    SparkLiteContext,
    shuffle_partitions,
    split_into_partitions,
)
from repro.frameworks.sparklite.shuffle import combine_by_key


@pytest.fixture()
def sc():
    return SparkLiteContext(executor="serial", default_parallelism=4)


class TestPartitioners:
    def test_split_even(self):
        parts = split_into_partitions(list(range(10)), 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert sum(parts, []) == list(range(10))

    def test_split_more_partitions_than_items(self):
        parts = split_into_partitions([1, 2], 5)
        assert len(parts) == 5
        assert sum(parts, []) == [1, 2]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            split_into_partitions([1], 0)

    def test_hash_partitioner_range(self):
        p = HashPartitioner(4)
        assert all(0 <= p.partition_for(k) < 4 for k in range(100))
        assert p == HashPartitioner(4)
        assert p != HashPartitioner(5)

    def test_hash_partitioner_invalid(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_range_partitioner(self):
        p = RangePartitioner([10, 20])
        assert p.partition_for(5) == 0
        assert p.partition_for(15) == 1
        assert p.partition_for(25) == 2


class TestShuffle:
    def test_shuffle_routes_by_key(self):
        p = HashPartitioner(3)
        result = shuffle_partitions([[("a", 1), ("b", 2)], [("a", 3)]], p)
        assert result.num_partitions == 3
        all_records = [r for bucket in result.buckets for r in bucket]
        assert sorted(all_records) == [("a", 1), ("a", 3), ("b", 2)]
        # same key always lands in the same bucket
        buckets_of_a = {i for i, bucket in enumerate(result.buckets)
                        if any(k == "a" for k, _ in bucket)}
        assert len(buckets_of_a) == 1
        assert result.bytes_shuffled > 0

    def test_shuffle_rejects_non_pairs(self):
        with pytest.raises(TypeError):
            shuffle_partitions([[1, 2, 3]], HashPartitioner(2))

    def test_combine_by_key(self):
        combined = dict(combine_by_key([("a", 1), ("a", 2), ("b", 5)],
                                       create=lambda v: v,
                                       merge_value=lambda acc, v: acc + v))
        assert combined == {"a": 3, "b": 5}


class TestRDDTransformations:
    def test_parallelize_collect(self, sc):
        rdd = sc.parallelize(range(10), 3)
        assert rdd.getNumPartitions() == 3
        assert rdd.collect() == list(range(10))

    def test_map_filter_flatmap(self, sc):
        rdd = sc.parallelize(range(10), 4)
        assert rdd.map(lambda x: x * x).collect() == [x * x for x in range(10)]
        assert rdd.filter(lambda x: x % 2 == 0).collect() == [0, 2, 4, 6, 8]
        assert rdd.flatMap(lambda x: [x, x]).count() == 20

    def test_map_partitions_with_index(self, sc):
        rdd = sc.parallelize(range(8), 4).mapPartitionsWithIndex(
            lambda idx, it: [(idx, sum(it))]
        )
        result = dict(rdd.collect())
        assert set(result) == {0, 1, 2, 3}
        assert sum(result.values()) == sum(range(8))

    def test_glom(self, sc):
        parts = sc.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_union(self, sc):
        a = sc.parallelize([1, 2], 1)
        b = sc.parallelize([3, 4], 1)
        assert a.union(b).collect() == [1, 2, 3, 4]

    def test_keys_values_mapvalues(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2)], 2)
        assert rdd.keys().collect() == ["a", "b"]
        assert rdd.values().collect() == [1, 2]
        assert rdd.mapValues(lambda v: v * 10).collect() == [("a", 10), ("b", 20)]


class TestRDDActions:
    def test_count_reduce_sum(self, sc):
        rdd = sc.parallelize(range(1, 11), 3)
        assert rdd.count() == 10
        assert rdd.reduce(lambda a, b: a + b) == 55
        assert rdd.sum() == 55

    def test_take_first(self, sc):
        rdd = sc.parallelize(range(100), 5)
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.first() == 0

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_count_by_key(self, sc):
        rdd = sc.parallelize([("a", 1), ("a", 2), ("b", 1)], 2)
        assert rdd.countByKey() == {"a": 2, "b": 1}


class TestShuffleOperations:
    def test_reduce_by_key(self, sc):
        rdd = sc.parallelize([(i % 3, i) for i in range(12)], 4)
        result = dict(rdd.reduceByKey(lambda a, b: a + b).collect())
        expected = {k: sum(i for i in range(12) if i % 3 == k) for k in range(3)}
        assert result == expected

    def test_group_by_key(self, sc):
        rdd = sc.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
        grouped = dict(rdd.groupByKey().collect())
        assert sorted(grouped["x"]) == [1, 3]
        assert grouped["y"] == [2]

    def test_partition_by(self, sc):
        rdd = sc.parallelize([(i, i) for i in range(20)], 2).partitionBy(5)
        assert rdd.getNumPartitions() == 5
        assert sorted(rdd.collect()) == [(i, i) for i in range(20)]

    def test_repartition(self, sc):
        rdd = sc.parallelize(range(12), 2).repartition(4)
        assert sorted(rdd.collect()) == list(range(12))

    def test_shuffle_recorded_in_metrics_and_stages(self, sc):
        sc.parallelize([(i % 2, i) for i in range(10)], 2).reduceByKey(lambda a, b: a + b).collect()
        assert sc.metrics.bytes_shuffled > 0
        kinds = [s.kind for s in sc.stages]
        assert "shuffle-map" in kinds and "result" in kinds


class TestCachingAndBroadcast:
    def test_cache_reuses_partitions(self, sc):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(5), 1).map(tracked).cache()
        rdd.collect()
        first_count = len(calls)
        rdd.collect()
        assert len(calls) == first_count  # second action served from cache

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(3), 1).map(lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 6

    def test_broadcast_value_and_destroy(self, sc):
        bc = sc.broadcast(np.arange(100))
        assert isinstance(bc, Broadcast)
        assert np.array_equal(bc.value, np.arange(100))
        assert sc.metrics.bytes_broadcast >= 100 * 8
        bc.destroy()
        with pytest.raises(RuntimeError):
            _ = bc.value


class TestUniformSurface:
    def test_map_tasks(self):
        sc = SparkLiteContext(executor="threads", workers=2)
        assert sc.map_tasks(lambda x: x ** 2, list(range(9))) == [x ** 2 for x in range(9)]
        assert sc.metrics.tasks_submitted == 9

    def test_map_tasks_empty(self, sc):
        assert sc.map_tasks(lambda x: x, []) == []

    def test_run_map_reduce(self, sc):
        out = sc.run_map_reduce(
            list(range(10)),
            map_fn=lambda x: [(x % 2, x)],
            reduce_fn=lambda a, b: a + b,
        )
        assert out == {0: 20, 1: 25}
