"""End-to-end integration tests crossing every layer of the library.

These mirror the workflows of the paper's evaluation: build a dataset with
the trajectory substrate, run the algorithm through a framework substrate,
and check the scientific result plus the performance accounting.
"""

import numpy as np

from repro.core import (
    LeafletFinder,
    compare_frameworks,
    compare_leaflet_approaches,
    leaflet_serial,
    psa_serial,
    run_leaflet_finder,
    run_psa,
)
from repro.frameworks import make_framework
from repro.frameworks.pilot import PilotFramework
from repro.perfmodel import calibrate_kernels, model_psa_runtime, LOCAL
from repro.trajectory import (
    BilayerSpec,
    EnsembleSpec,
    load_ensemble,
    make_bilayer_universe,
    make_clustered_ensemble,
    write_ensemble,
)


class TestPsaWorkflow:
    def test_file_based_psa_pipeline(self, tmp_path):
        """generate -> write to disk -> load -> parallel PSA -> cluster recovery."""
        spec = EnsembleSpec(n_trajectories=8, n_frames=10, n_atoms=16, n_clusters=2, seed=42)
        ensemble = make_clustered_ensemble(spec)
        paths = write_ensemble(ensemble, tmp_path / "trajectories", fmt="npz")
        reloaded = load_ensemble(paths)
        assert reloaded.n_trajectories == 8

        fw = make_framework("sparklite", executor="threads", workers=2)
        matrix, report = run_psa(reloaded, fw, n_tasks=6)
        fw.close()

        assert matrix.is_symmetric()
        assert report.metrics.tasks_completed == report.n_tasks
        # the two path families (members 0-3 and 4-7) must be recoverable
        within = matrix.values[:4, :4].max()
        across = matrix.values[:4, 4:].min()
        assert across > within
        clusters = matrix.cluster_by_threshold((within + across) / 2)
        assert sorted(len(c) for c in clusters) == [4, 4]

    def test_all_frameworks_identical_matrices(self, paper_shaped_ensemble):
        reports = compare_frameworks(paper_shaped_ensemble, workers=2, n_tasks=6)
        assert set(reports) == {"sparklite", "dasklite", "pilot", "mpilite"}
        for report in reports.values():
            assert report.wall_time_s > 0
            assert report.n_tasks == reports["sparklite"].n_tasks


class TestLeafletWorkflow:
    def test_universe_selection_to_leaflets(self):
        """bilayer universe -> selection -> every approach on one framework."""
        universe, labels = make_bilayer_universe(BilayerSpec(n_atoms=500, seed=31))
        finder = LeafletFinder(universe, "name P", cutoff=15.0)
        serial = finder.run_serial()
        assert serial.agreement_with(labels) == 1.0

        fw = make_framework("dasklite", executor="threads", workers=2)
        for approach in ("broadcast-1d", "task-2d", "parallel-cc", "tree-search"):
            result = finder.run(fw, approach=approach, n_tasks=8)
            assert result.sizes[:2] == serial.sizes[:2], approach
        fw.close()

    def test_approach_comparison_records_shuffle_reduction(self, small_bilayer):
        """The paper's approach-3 claim must be visible in the live metrics."""
        positions, _ = small_bilayer
        reports = compare_leaflet_approaches(positions, framework="sparklite",
                                             approaches=("task-2d", "parallel-cc"),
                                             n_tasks=8, workers=2)
        assert (reports["parallel-cc"].metrics.bytes_shuffled
                < reports["task-2d"].metrics.bytes_shuffled)

    def test_pilot_latency_visible_end_to_end(self, small_bilayer):
        positions, _ = small_bilayer
        fast = PilotFramework(executor="threads", workers=2, database_latency_s=0.0)
        slow = PilotFramework(executor="threads", workers=2, database_latency_s=0.003)
        _r1, rep_fast = run_leaflet_finder(positions, 15.0, fast, approach="task-2d", n_tasks=12)
        _r2, rep_slow = run_leaflet_finder(positions, 15.0, slow, approach="task-2d", n_tasks=12)
        assert rep_slow.wall_time_s > rep_fast.wall_time_s
        fast.close()
        slow.close()

    def test_mpi_spmd_leaflet_manual(self, small_bilayer):
        """Hand-written SPMD leaflet finder using the raw communicator API."""
        positions, labels = small_bilayer
        from repro.analysis.pairwise import edges_from_block
        from repro.analysis.graph import connected_components
        from repro.core.partitioning import one_dimensional_partition

        fw = make_framework("mpilite", workers=4)

        def program(comm):
            pos = comm.bcast(positions if comm.rank == 0 else None, root=0)
            ranges = one_dimensional_partition(pos.shape[0], comm.size)
            if comm.rank < len(ranges):
                start, stop = ranges[comm.rank]
                edges = edges_from_block(pos[start:stop], pos, 15.0, offset_a=start)
                edges = edges[edges[:, 0] < edges[:, 1]]
            else:
                edges = np.empty((0, 2), dtype=np.int64)
            gathered = comm.gather(edges, root=0)
            if comm.rank == 0:
                all_edges = np.concatenate(gathered, axis=0)
                return connected_components(all_edges, pos.shape[0])
            return None

        results = fw.run_spmd(program)
        components = results[0]
        serial = leaflet_serial(positions, 15.0)
        assert sorted(len(c) for c in components)[-2:] == sorted(serial.sizes[:2])
        fw.close()


class TestModelVsMeasurement:
    def test_calibrated_model_orders_problem_sizes_like_reality(self, small_ensemble):
        """The modeled runtime ordering matches live measurement ordering."""
        rates = calibrate_kernels(n_frames=16, n_atoms=48, n_points=300, repeats=1).rates
        small_model = model_psa_runtime("dask", LOCAL, cores=2, n_trajectories=6,
                                        n_frames=10, n_atoms=24, rates=rates)
        large_model = model_psa_runtime("dask", LOCAL, cores=2, n_trajectories=6,
                                        n_frames=10, n_atoms=96, rates=rates)
        assert large_model > small_model

    def test_psa_serial_matches_framework_run_on_paper_shapes(self, paper_shaped_ensemble):
        fw = make_framework("mpilite", workers=2)
        matrix, _ = run_psa(paper_shaped_ensemble, fw, n_tasks=4)
        assert np.allclose(matrix.values, psa_serial(paper_shaped_ensemble).values,
                           atol=1e-9)
        fw.close()
