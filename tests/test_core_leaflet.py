"""Unit and integration tests for the Leaflet Finder approaches."""

import numpy as np
import pytest

from repro.core.leaflet import (
    LEAFLET_APPROACHES,
    LeafletFinder,
    leaflet_broadcast_1d,
    leaflet_parallel_cc,
    leaflet_serial,
    leaflet_task_2d,
    leaflet_tree_search,
    run_leaflet_finder,
)
from repro.frameworks import make_framework
from repro.trajectory import BilayerSpec, make_bilayer_universe

CUTOFF = 15.0


class TestLeafletSerial:
    @pytest.mark.parametrize("method", ["brute", "balltree", "grid"])
    def test_two_leaflets_found(self, small_bilayer, method):
        positions, labels = small_bilayer
        result = leaflet_serial(positions, CUTOFF, method=method)
        assert result.sizes[0] + result.sizes[1] == positions.shape[0]
        assert result.agreement_with(labels) == 1.0

    def test_methods_agree_on_edges(self, small_bilayer):
        positions, _ = small_bilayer
        brute = leaflet_serial(positions, CUTOFF, method="brute")
        tree = leaflet_serial(positions, CUTOFF, method="balltree")
        assert brute.n_edges == tree.n_edges
        assert brute.sizes == tree.sizes

    def test_curved_bilayer(self, curved_bilayer):
        positions, labels = curved_bilayer
        result = leaflet_serial(positions, CUTOFF)
        assert result.agreement_with(labels) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            leaflet_serial(np.zeros((4, 2)), CUTOFF)
        with pytest.raises(ValueError):
            leaflet_serial(np.zeros((4, 3)), -1.0)
        with pytest.raises(ValueError):
            leaflet_serial(np.empty((0, 3)), CUTOFF)

    def test_small_cutoff_gives_many_components(self, small_bilayer):
        positions, _ = small_bilayer
        result = leaflet_serial(positions, 0.5)
        assert result.n_components > 2


class TestApproachesAgainstSerial:
    """Every approach on every framework must reproduce the serial result."""

    @pytest.mark.parametrize("approach", sorted(LEAFLET_APPROACHES))
    def test_approach_matches_serial(self, small_bilayer, approach, any_framework):
        positions, labels = small_bilayer
        serial = leaflet_serial(positions, CUTOFF)
        result, report = run_leaflet_finder(positions, CUTOFF, any_framework,
                                            approach=approach, n_tasks=6)
        assert result.sizes[:2] == serial.sizes[:2]
        assert result.agreement_with(labels) == 1.0
        assert report.n_tasks >= 1
        assert report.wall_time_s > 0.0

    def test_unknown_approach(self, small_bilayer):
        positions, _ = small_bilayer
        fw = make_framework("dasklite", executor="serial")
        with pytest.raises(ValueError):
            run_leaflet_finder(positions, CUTOFF, fw, approach="quantum")
        fw.close()


class TestApproachCharacteristics:
    def test_broadcast_approach_reports_broadcast_bytes(self, small_bilayer):
        positions, _ = small_bilayer
        fw = make_framework("sparklite", executor="serial")
        _result, report = leaflet_broadcast_1d(positions, CUTOFF, fw, n_tasks=4)
        assert report.metrics.bytes_broadcast >= positions.nbytes
        assert "phase_broadcast_s" in report.parameters
        fw.close()

    def test_task_2d_has_no_broadcast(self, small_bilayer):
        positions, _ = small_bilayer
        fw = make_framework("sparklite", executor="serial")
        _result, report = leaflet_task_2d(positions, CUTOFF, fw, n_tasks=4)
        assert report.metrics.bytes_broadcast == 0
        fw.close()

    def test_parallel_cc_shuffles_less_than_task_2d(self, small_bilayer):
        """The paper's key claim for approach 3: smaller shuffle volume."""
        positions, _ = small_bilayer
        fw = make_framework("dasklite", executor="serial")
        _r2, report2 = leaflet_task_2d(positions, CUTOFF, fw, n_tasks=6)
        _r3, report3 = leaflet_parallel_cc(positions, CUTOFF, fw, n_tasks=6)
        assert report3.metrics.bytes_shuffled < report2.metrics.bytes_shuffled
        fw.close()

    def test_tree_search_equals_parallel_cc_result(self, small_bilayer):
        positions, labels = small_bilayer
        fw = make_framework("mpilite", workers=2)
        r3, _ = leaflet_parallel_cc(positions, CUTOFF, fw, n_tasks=4)
        r4, _ = leaflet_tree_search(positions, CUTOFF, fw, n_tasks=4)
        assert r3.sizes[:2] == r4.sizes[:2]
        assert r4.agreement_with(labels) == 1.0
        fw.close()

    def test_tree_search_grid_method(self, small_bilayer):
        positions, labels = small_bilayer
        fw = make_framework("dasklite", executor="serial")
        result, _ = leaflet_tree_search(positions, CUTOFF, fw, n_tasks=4, method="grid")
        assert result.agreement_with(labels) == 1.0
        with pytest.raises(Exception):
            leaflet_tree_search(positions, CUTOFF, fw, n_tasks=4, method="octree")
        fw.close()

    def test_edge_counts_consistent(self, small_bilayer):
        positions, _ = small_bilayer
        serial = leaflet_serial(positions, CUTOFF, method="brute")
        fw = make_framework("dasklite", executor="serial")
        r1, _ = leaflet_broadcast_1d(positions, CUTOFF, fw, n_tasks=5)
        r2, _ = leaflet_task_2d(positions, CUTOFF, fw, n_tasks=5)
        assert r1.n_edges == serial.n_edges
        assert r2.n_edges == serial.n_edges
        fw.close()


class TestLeafletFinderClass:
    def test_from_universe_with_selection(self):
        universe, labels = make_bilayer_universe(BilayerSpec(n_atoms=200, seed=17))
        finder = LeafletFinder(universe, "name P", cutoff=CUTOFF)
        serial = finder.run_serial()
        assert serial.agreement_with(labels) == 1.0
        fw = make_framework("dasklite", executor="threads", workers=2)
        parallel = finder.run(fw, approach="parallel-cc", n_tasks=4)
        assert parallel.sizes[:2] == serial.sizes[:2]
        assert finder.last_report is not None
        fw.close()

    def test_from_raw_positions(self, small_bilayer):
        positions, labels = small_bilayer
        finder = LeafletFinder(positions, cutoff=CUTOFF)
        assert finder.run_serial().agreement_with(labels) == 1.0

    def test_empty_selection_raises(self):
        universe, _ = make_bilayer_universe(BilayerSpec(n_atoms=50, seed=1))
        with pytest.raises(ValueError):
            LeafletFinder(universe, "name XYZ")
