"""Unit tests for Hausdorff / Fréchet path metrics."""

import numpy as np
import pytest

from repro.analysis.hausdorff import (
    directed_hausdorff,
    discrete_frechet,
    hausdorff,
    hausdorff_earlybreak,
    hausdorff_naive,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def straight_path(n_frames, n_atoms, offset=0.0):
    """A straight-line path in configuration space shifted by ``offset``."""
    t = np.linspace(0.0, 1.0, n_frames)[:, None, None]
    base = np.zeros((n_atoms, 3))
    end = np.ones((n_atoms, 3)) * 10.0
    return (1 - t) * base + t * end + offset


class TestHausdorffBasics:
    def test_identical_paths_zero(self, rng):
        a = rng.normal(size=(6, 5, 3))
        assert hausdorff(a, a) == pytest.approx(0.0, abs=1e-6)
        assert hausdorff_naive(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, rng):
        a, b = rng.normal(size=(5, 4, 3)), rng.normal(size=(7, 4, 3))
        assert hausdorff(a, b) == pytest.approx(hausdorff(b, a))

    def test_translation_gives_exact_offset(self):
        a = straight_path(10, 4)
        b = straight_path(10, 4, offset=2.0)
        # every frame displaced by 2 in each coordinate -> dRMS = 2*sqrt(3)
        assert hausdorff(a, b) == pytest.approx(2.0 * np.sqrt(3.0), rel=1e-9)

    def test_non_negative(self, rng):
        a, b = rng.normal(size=(4, 3, 3)), rng.normal(size=(5, 3, 3))
        assert hausdorff(a, b) >= 0.0

    def test_different_frame_counts_allowed(self, rng):
        a, b = rng.normal(size=(3, 4, 3)), rng.normal(size=(9, 4, 3))
        assert hausdorff(a, b) > 0.0

    def test_atom_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            hausdorff(rng.normal(size=(3, 4, 3)), rng.normal(size=(3, 5, 3)))

    def test_empty_trajectory_raises(self):
        with pytest.raises(ValueError):
            hausdorff(np.empty((0, 4, 3)), np.zeros((2, 4, 3)))


class TestImplementationAgreement:
    """The three Hausdorff implementations are the same function."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_vectorized_equals_naive(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(6, 5, 3))
        b = rng.normal(size=(8, 5, 3))
        assert hausdorff(a, b) == pytest.approx(hausdorff_naive(a, b), rel=1e-10)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_earlybreak_equals_vectorized(self, seed):
        rng = np.random.default_rng(seed + 100)
        a = rng.normal(size=(7, 4, 3))
        b = rng.normal(size=(5, 4, 3))
        assert hausdorff_earlybreak(a, b, shuffle_seed=seed) == pytest.approx(
            hausdorff(a, b), rel=1e-10
        )

    def test_earlybreak_without_shuffle(self, rng):
        a, b = rng.normal(size=(5, 3, 3)), rng.normal(size=(6, 3, 3))
        assert hausdorff_earlybreak(a, b, shuffle_seed=None) == pytest.approx(
            hausdorff(a, b), rel=1e-10
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_earlybreak_equals_vectorized_random_shapes(self, seed):
        """Regression for the dead-code cleanup: the early-break loop must
        stay an exact reimplementation of the vectorized Hausdorff on
        random inputs of random shapes, for any scan order."""
        rng = np.random.default_rng(1000 + seed)
        n_a = int(rng.integers(1, 12))
        n_b = int(rng.integers(1, 12))
        n_atoms = int(rng.integers(1, 8))
        a = rng.normal(scale=rng.uniform(0.1, 10.0), size=(n_a, n_atoms, 3))
        b = rng.normal(scale=rng.uniform(0.1, 10.0), size=(n_b, n_atoms, 3))
        expected = hausdorff(a, b)
        assert hausdorff_earlybreak(a, b, shuffle_seed=seed) == pytest.approx(
            expected, rel=1e-10
        )
        assert hausdorff_earlybreak(a, b, shuffle_seed=None) == pytest.approx(
            expected, rel=1e-10
        )

    def test_earlybreak_structured_paths(self):
        """Structured (non-random) inputs exercise the break-heavy path."""
        a = straight_path(30, 4)
        b = straight_path(25, 4, offset=0.5)
        assert hausdorff_earlybreak(a, b) == pytest.approx(hausdorff(a, b), rel=1e-10)


class TestDirectedHausdorff:
    def test_symmetric_is_max_of_directed(self, rng):
        a, b = rng.normal(size=(5, 4, 3)), rng.normal(size=(6, 4, 3))
        expected = max(directed_hausdorff(a, b), directed_hausdorff(b, a))
        assert hausdorff(a, b) == pytest.approx(expected)

    def test_directed_can_be_asymmetric(self):
        # path b is a sub-path of a: h(b, a) == 0 but h(a, b) > 0
        a = straight_path(20, 2)
        b = a[:5]
        assert directed_hausdorff(b, a) == pytest.approx(0.0, abs=1e-9)
        assert directed_hausdorff(a, b) > 1.0


class TestFrechet:
    def test_identical_zero(self, rng):
        a = rng.normal(size=(6, 4, 3))
        assert discrete_frechet(a, a) == pytest.approx(0.0, abs=1e-6)

    def test_frechet_geq_hausdorff(self, rng):
        """The Fréchet distance upper-bounds the Hausdorff distance."""
        for seed in range(5):
            local = np.random.default_rng(seed)
            a = local.normal(size=(6, 3, 3))
            b = local.normal(size=(7, 3, 3))
            assert discrete_frechet(a, b) >= hausdorff(a, b) - 1e-9

    def test_translation_offset(self):
        a = straight_path(8, 3)
        b = straight_path(8, 3, offset=1.0)
        assert discrete_frechet(a, b) == pytest.approx(np.sqrt(3.0), rel=1e-9)

    def test_symmetry(self, rng):
        a, b = rng.normal(size=(5, 3, 3)), rng.normal(size=(4, 3, 3))
        assert discrete_frechet(a, b) == pytest.approx(discrete_frechet(b, a))
