"""Unit tests for core partitioning (Algorithm 2) and result containers."""

import numpy as np
import pytest

from repro.core.partitioning import (
    BlockTask,
    choose_group_size,
    chunk_ranges,
    one_dimensional_partition,
    pair_blocks,
    tasks_for_group_size,
    two_dimensional_partition,
)
from repro.core.results import DistanceMatrix, LeafletResult, RunReport
from repro.frameworks.base import RunMetrics


class TestChunkRanges:
    def test_exact_division(self):
        assert chunk_ranges(10, 5) == [(0, 5), (5, 10)]

    def test_remainder(self):
        assert chunk_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)


class TestOneDimensionalPartition:
    def test_covers_everything_without_overlap(self):
        ranges = one_dimensional_partition(100, 7)
        covered = []
        for start, stop in ranges:
            covered.extend(range(start, stop))
        assert covered == list(range(100))

    def test_nearly_equal_sizes(self):
        sizes = [stop - start for start, stop in one_dimensional_partition(10, 3)]
        assert sizes == [4, 3, 3]

    def test_more_chunks_than_items(self):
        ranges = one_dimensional_partition(2, 5)
        assert len(ranges) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            one_dimensional_partition(10, 0)


class TestTwoDimensionalPartition:
    def test_block_task_properties(self):
        diag = BlockTask(0, 4, 0, 4)
        off = BlockTask(0, 4, 4, 8)
        assert diag.diagonal and not off.diagonal
        assert diag.n_pairs == 10   # 4*5/2
        assert off.n_pairs == 16
        assert diag.row_indices.tolist() == [0, 1, 2, 3]
        assert off.col_indices.tolist() == [4, 5, 6, 7]

    def test_upper_triangle_blocks(self):
        blocks = two_dimensional_partition(8, 4)
        coords = [(b.row_start, b.col_start) for b in blocks]
        assert coords == [(0, 0), (0, 4), (4, 4)]

    def test_full_matrix_blocks(self):
        blocks = two_dimensional_partition(8, 4, upper_triangle=False)
        assert len(blocks) == 4

    def test_blocks_cover_every_pair_once(self):
        """Union of pairs across all blocks == all unordered pairs (Algorithm 2)."""
        n, chunk = 13, 4
        blocks = two_dimensional_partition(n, chunk)
        seen = set()
        for b in blocks:
            for i in range(b.row_start, b.row_stop):
                for j in range(b.col_start, b.col_stop):
                    if b.diagonal and j <= i:
                        continue
                    assert (i, j) not in seen
                    seen.add((i, j))
        expected = {(i, j) for i in range(n) for j in range(i + 1, n)}
        assert seen == expected

    def test_task_count_formula(self):
        assert tasks_for_group_size(16, 4) == 4 * 5 // 2
        assert tasks_for_group_size(10, 10) == 1

    def test_pair_blocks_group_count(self):
        blocks = pair_blocks(16, 4)
        assert len(blocks) == 10
        with pytest.raises(ValueError):
            pair_blocks(16, 0)

    def test_choose_group_size_hits_target(self):
        n = 128
        chunk = choose_group_size(n, 64)
        n_tasks = tasks_for_group_size(n, chunk)
        assert 0.4 * 64 <= n_tasks <= 2.5 * 64

    def test_choose_group_size_validation(self):
        with pytest.raises(ValueError):
            choose_group_size(0, 4)
        with pytest.raises(ValueError):
            choose_group_size(10, 0)
        assert choose_group_size(4, 1000) == 1


class TestDistanceMatrix:
    def test_basic_properties(self):
        values = np.array([[0.0, 1.0], [1.0, 0.0]])
        dm = DistanceMatrix(values, labels=["a", "b"])
        assert dm.n == 2
        assert dm.is_symmetric()
        assert dm[0, 1] == 1.0
        assert dm.condensed().tolist() == [1.0]
        assert dm.as_dict()["labels"] == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            DistanceMatrix(np.zeros((2, 2)), labels=["only_one"])

    def test_nearest_neighbors(self):
        values = np.array([[0.0, 1.0, 5.0], [1.0, 0.0, 2.0], [5.0, 2.0, 0.0]])
        assert DistanceMatrix(values).nearest_neighbors() == [1, 0, 1]

    def test_cluster_by_threshold(self):
        values = np.array([
            [0.0, 0.5, 9.0, 9.0],
            [0.5, 0.0, 9.0, 9.0],
            [9.0, 9.0, 0.0, 0.4],
            [9.0, 9.0, 0.4, 0.0],
        ])
        clusters = DistanceMatrix(values).cluster_by_threshold(1.0)
        assert sorted(tuple(c) for c in clusters) == [(0, 1), (2, 3)]
        with pytest.raises(ValueError):
            DistanceMatrix(values).cluster_by_threshold(-1.0)


class TestLeafletResult:
    def test_leaflet_accessors(self):
        comps = [np.array([0, 1, 2]), np.array([3, 4]), np.array([5])]
        result = LeafletResult(comps, n_atoms=6, n_edges=4)
        assert result.n_components == 3
        assert result.sizes == [3, 2, 1]
        assert result.leaflet0.tolist() == [0, 1, 2]
        assert result.leaflet1.tolist() == [3, 4]
        assert result.labels().tolist() == [0, 0, 0, 1, 1, 2]
        assert result.as_dict()["n_edges"] == 4

    def test_empty_result_raises(self):
        result = LeafletResult([], n_atoms=0)
        with pytest.raises(ValueError):
            _ = result.leaflet0

    def test_single_component_no_leaflet1(self):
        result = LeafletResult([np.array([0, 1])], n_atoms=2)
        with pytest.raises(ValueError):
            _ = result.leaflet1

    def test_agreement_handles_label_permutation(self):
        comps = [np.array([0, 1]), np.array([2, 3])]
        result = LeafletResult(comps, n_atoms=4)
        assert result.agreement_with(np.array([0, 0, 1, 1])) == 1.0
        assert result.agreement_with(np.array([1, 1, 0, 0])) == 1.0
        assert result.agreement_with(np.array([0, 1, 0, 1])) == 0.5

    def test_agreement_validation(self):
        result = LeafletResult([np.array([0])], n_atoms=1)
        with pytest.raises(ValueError):
            result.agreement_with(np.array([0, 1]))


class TestRunReport:
    def test_as_dict_flattens(self):
        report = RunReport(algorithm="psa", framework="dask",
                           parameters={"n": 4}, wall_time_s=1.5, n_tasks=2,
                           metrics=RunMetrics(tasks_completed=2, bytes_shuffled=10))
        flat = report.as_dict()
        assert flat["algorithm"] == "psa"
        assert flat["param_n"] == 4
        assert flat["bytes_shuffled"] == 10
