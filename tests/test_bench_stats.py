"""Meta-tests for the benchmark statistics layer (repro.bench.stats/sampler).

The statistics that gate CI must themselves be above suspicion, so this
suite checks them on hand-computed fixtures and with hypothesis
properties: permutation invariance, outlier robustness (one 100x spike
moves the mean but not the gate verdict), and the guarantee that
overhead subtraction can never produce a negative duration.

Nothing here reads a real clock: every Sampler test injects a fake
timer, so the suite is deterministic and wall-clock-free (safe for the
tier-1 gate and the quick CI job).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    Distribution,
    Sampler,
    gate_speedup,
    iqr,
    mad,
    median,
    quantile,
    speedup_samples,
    subtract_overhead,
)

# bounded, NaN/inf-free sample lists for the property tests
finite_samples = st.lists(
    st.floats(min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=40)


class FakeTimer:
    """A scripted clock: each call advances by the next scripted delta."""

    def __init__(self, deltas):
        self.deltas = list(deltas)
        self.now = 0.0
        self.calls = 0

    def __call__(self):
        value = self.now
        if self.deltas:
            self.now += self.deltas.pop(0)
        self.calls += 1
        return value


class SteadyTimer:
    """A clock that advances by a fixed step on every call."""

    def __init__(self, step):
        self.step = step
        self.now = 0.0

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestMedian:
    def test_odd_count(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_count_interpolates(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single_sample(self):
        assert median([7.5]) == 7.5

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.random(37).tolist()
        assert median(samples) == pytest.approx(float(np.median(samples)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_nan_raises(self):
        with pytest.raises(ValueError):
            median([1.0, float("nan")])


class TestMad:
    def test_hand_computed(self):
        # median 3; |x-3| = [2, 1, 0, 1, 97]; median of that = 1
        assert mad([1.0, 2.0, 3.0, 4.0, 100.0]) == 1.0

    def test_explicit_center(self):
        # |x-0| = [1, 2, 3]; median = 2
        assert mad([1.0, 2.0, 3.0], center=0.0) == 2.0

    def test_constant_samples(self):
        assert mad([5.0, 5.0, 5.0]) == 0.0

    def test_breakdown_point(self):
        """Up to half the samples can be arbitrary without moving the MAD much."""
        clean = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01]
        spiked = clean + [1e6, 1e6, 1e6]        # 3 of 10: below breakdown
        assert mad(spiked) < 0.1


class TestQuantileIqr:
    def test_hand_computed_quartiles(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        # rank 0.25*(4-1) = 0.75 between 10 and 20
        assert quantile(samples, 0.25) == pytest.approx(17.5)
        assert quantile(samples, 0.75) == pytest.approx(32.5)
        assert iqr(samples) == pytest.approx(15.0)

    def test_extremes(self):
        samples = [3.0, 1.0, 2.0]
        assert quantile(samples, 0.0) == 1.0
        assert quantile(samples, 1.0) == 3.0

    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(1)
        samples = rng.random(23).tolist()
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert quantile(samples, q) == pytest.approx(
                float(np.quantile(samples, q)))

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestSubtractOverhead:
    def test_plain_subtraction(self):
        assert subtract_overhead([3.0, 2.5], 0.5) == (2.5, 2.0)

    def test_clamps_at_zero(self):
        """A run faster than the calibrated overhead clamps to 0.0, never negative."""
        assert subtract_overhead([0.1, 0.5], 0.3) == (0.0, 0.2)

    def test_negative_overhead_raises(self):
        with pytest.raises(ValueError):
            subtract_overhead([1.0], -0.1)

    @given(samples=finite_samples,
           overhead=st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False))
    def test_never_negative(self, samples, overhead):
        assert all(s >= 0.0 for s in subtract_overhead(samples, overhead))

    @given(samples=finite_samples)
    def test_zero_overhead_is_identity(self, samples):
        assert subtract_overhead(samples, 0.0) == tuple(samples)


class TestPermutationInvariance:
    @given(samples=finite_samples, seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60)
    def test_statistics_ignore_order(self, samples, seed):
        rng = np.random.default_rng(seed)
        shuffled = list(samples)
        rng.shuffle(shuffled)
        assert median(shuffled) == median(samples)
        assert mad(shuffled) == mad(samples)
        assert iqr(shuffled) == pytest.approx(iqr(samples))
        assert quantile(shuffled, 0.25) == pytest.approx(quantile(samples, 0.25))


class TestOutlierRobustness:
    def test_spike_moves_mean_not_gate(self):
        """One 100x spike moves the mean but not the gate verdict."""
        reference = [10.0, 10.1, 9.9, 10.0, 10.2, 9.8, 10.0, 10.1]
        candidate = [1.0, 1.01, 0.99, 1.02, 0.98, 1.0, 1.01, 0.99]
        spiked = candidate[:-1] + [candidate[-1] * 100.0]

        clean_dist = Distribution(samples=tuple(candidate))
        spiked_dist = Distribution(samples=tuple(spiked))
        # the mean is dragged by over an order of magnitude...
        assert spiked_dist.mean > 10.0 * clean_dist.mean
        # ...the median barely moves...
        assert spiked_dist.median == pytest.approx(clean_dist.median, rel=0.05)
        # ...and the gate verdict is identical
        clean_verdict = gate_speedup(speedup_samples(reference, candidate), 5.0)
        spiked_verdict = gate_speedup(speedup_samples(reference, spiked), 5.0)
        assert clean_verdict.passed and spiked_verdict.passed

    @given(samples=st.lists(st.floats(min_value=0.5, max_value=2.0,
                                      allow_nan=False), min_size=5, max_size=30),
           factor=st.floats(min_value=100.0, max_value=1e6))
    @settings(max_examples=40)
    def test_single_spike_bounded_median_shift(self, samples, factor):
        spiked = samples + [max(samples) * factor]
        # the spiked median can move at most to the next order statistic
        assert median(spiked) <= max(samples)
        assert mad(spiked) <= (max(samples) - min(samples)) + mad(samples)


class TestDistribution:
    def test_summary_properties(self):
        d = Distribution(samples=(1.0, 2.0, 3.0, 4.0, 100.0), label="w")
        assert d.n == 5
        assert d.median == 3.0
        assert d.mad == 1.0
        assert d.q25 == 2.0 and d.q75 == 4.0
        assert d.iqr == 2.0
        assert d.min == 1.0 and d.max == 100.0
        assert d.mean == 22.0

    def test_round_trip(self):
        d = Distribution(samples=(1.0, 2.0), cold_samples=(5.0,),
                         overhead_s=0.1, label="w", phase="warm")
        again = Distribution.from_dict(d.to_dict())
        assert again == d
        assert again.median == d.median

    def test_from_dict_recomputes_statistics(self):
        """A hand-edited summary cannot disagree with its samples."""
        record = Distribution(samples=(1.0, 2.0, 3.0)).to_dict()
        record["median_s"] = 999.0          # tampered
        assert Distribution.from_dict(record).median == 2.0

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError):
            Distribution(samples=())

    def test_cold_samples_excluded_from_statistics(self):
        d = Distribution(samples=(1.0, 1.0), cold_samples=(50.0, 60.0))
        assert d.median == 1.0
        assert d.max == 1.0

    def test_serialized_record_is_json_ready(self):
        import json
        d = Distribution(samples=(0.5, 0.7), label="x")
        text = json.dumps(d.to_dict())
        assert "samples_s" in text


class TestSampler:
    def test_fake_timer_measures_scripted_durations(self):
        # warmup run takes 5.0, the three samples 1.0/2.0/3.0
        timer = FakeTimer([5.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0])
        sampler = Sampler(n_samples=3, warmup=1, timer=timer, calibrate=False)
        dist = sampler.sample(lambda: None, label="scripted")
        assert dist.samples == (1.0, 2.0, 3.0)
        assert dist.cold_samples == (5.0,)
        assert dist.overhead_s == 0.0
        assert dist.median == 2.0

    def test_overhead_subtraction_clamps_at_zero(self):
        """With every interval equal to the calibrated overhead, all
        samples clamp to exactly zero — never negative."""
        sampler = Sampler(n_samples=4, warmup=1, timer=SteadyTimer(0.001))
        dist = sampler.sample(lambda: None)
        assert sampler.calibrate_overhead() == pytest.approx(0.001)
        assert dist.samples == (0.0, 0.0, 0.0, 0.0)
        assert all(s >= 0.0 for s in dist.samples)

    def test_calibration_cached(self):
        timer = SteadyTimer(0.002)
        sampler = Sampler(n_samples=1, warmup=0, timer=timer)
        first = sampler.calibrate_overhead()
        calls_after = timer.now
        assert sampler.calibrate_overhead() == first
        assert timer.now == calls_after          # no re-measurement

    def test_cold_phase_runs_reset_before_every_sample(self):
        resets = []
        sampler = Sampler(n_samples=3, warmup=2, timer=SteadyTimer(0.0),
                          calibrate=False)
        dist = sampler.sample(lambda: None, reset=lambda: resets.append(1),
                              phase="cold")
        assert len(resets) == 3                  # once per sample, no warmup
        assert dist.phase == "cold"
        assert dist.cold_samples == ()

    def test_warm_phase_ignores_reset(self):
        resets = []
        sampler = Sampler(n_samples=2, warmup=1, timer=SteadyTimer(0.0),
                          calibrate=False)
        sampler.sample(lambda: None, reset=lambda: resets.append(1))
        assert resets == []

    def test_unknown_phase_raises(self):
        sampler = Sampler(n_samples=1, warmup=0, calibrate=False)
        with pytest.raises(ValueError):
            sampler.sample(lambda: None, phase="lukewarm")

    def test_sample_values_excludes_warmup_returns(self):
        values = iter([100.0, 1.0, 2.0, 3.0])
        sampler = Sampler(n_samples=3, warmup=1, calibrate=False)
        dist = sampler.sample_values(lambda: next(values), label="internal")
        assert dist.samples == (1.0, 2.0, 3.0)
        assert dist.cold_samples == (100.0,)
        assert dist.overhead_s == 0.0

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLES", "7")
        monkeypatch.setenv("REPRO_BENCH_WARMUP", "4")
        sampler = Sampler()
        assert sampler.n_samples == 7
        assert sampler.warmup == 4

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SAMPLES", "lots")
        assert Sampler().n_samples == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            Sampler(n_samples=0)
        with pytest.raises(ValueError):
            Sampler(warmup=-1)

    def test_sequential_execution_order(self):
        """Samples run strictly one after another: warmups first, then
        every warm sample, with no interleaving."""
        order = []
        sampler = Sampler(n_samples=3, warmup=2, timer=SteadyTimer(0.0),
                          calibrate=False)
        counter = iter(range(10))
        sampler.sample(lambda: order.append(next(counter)))
        assert order == [0, 1, 2, 3, 4]

    def test_deterministic_with_fake_clock(self):
        """The whole pipeline is reproducible under an injected clock."""
        def run():
            sampler = Sampler(n_samples=5, warmup=1, timer=SteadyTimer(0.25),
                              calibrate=False)
            return sampler.sample(lambda: None, label="det")
        assert run() == run()


def test_overhead_subtraction_preserves_sample_count():
    """Subtraction is elementwise: same count, same order."""
    samples = [5.0, 0.1, 3.0, 0.2]
    out = subtract_overhead(samples, 0.15)
    assert len(out) == len(samples)
    assert out[0] == pytest.approx(4.85)
    assert out[1] == 0.0


@given(samples=finite_samples)
def test_distribution_statistics_within_sample_range(samples):
    d = Distribution(samples=tuple(samples))
    assert d.min <= d.median <= d.max
    assert d.q25 <= d.q75
    assert d.mad >= 0.0
    assert not math.isnan(d.iqr)
