"""Executor-layer contract tests.

Every executor (Serial/Thread/Process/SharedMemory) must satisfy the same
contract: results in input order, exceptions propagated to the caller,
empty input handled, and per-task timings recorded with sane invariants.
The process-based executors additionally account payload bytes
(``bytes_pickled`` / ``bytes_shared``), which the shared-memory data
plane's acceptance criteria are built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks.executors import (
    ProcessExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    ThreadExecutor,
    default_worker_count,
    make_executor,
)

EXECUTOR_KINDS = ("serial", "threads", "processes", "shm")


def make(kind):
    if kind == "serial":
        return SerialExecutor()
    if kind == "threads":
        return ThreadExecutor(workers=2)
    if kind == "processes":
        return ProcessExecutor(workers=2)
    return SharedMemoryExecutor(workers=2)


def square(x):
    return x * x


def boom(x):
    if x == 3:
        raise ValueError("task 3 exploded")
    return x


def array_total(arrays):
    return float(sum(np.asarray(a).sum() for a in arrays))


@pytest.fixture(params=EXECUTOR_KINDS)
def executor(request):
    ex = make(request.param)
    yield ex
    ex.shutdown()


class TestExecutorContract:
    def test_results_in_input_order(self, executor):
        items = list(range(10))
        assert executor.map_tasks(square, items) == [x * x for x in items]

    def test_empty_input(self, executor):
        assert executor.map_tasks(square, []) == []
        assert executor.timings == []
        assert executor.total_task_time == 0.0

    def test_exception_propagates(self, executor):
        with pytest.raises(ValueError, match="task 3 exploded"):
            executor.map_tasks(boom, [1, 2, 3, 4])

    def test_timing_invariants(self, executor):
        items = list(range(6))
        executor.map_tasks(square, items)
        timings = executor.timings
        assert [t.index for t in timings] == items
        for t in timings:
            assert t.stop >= t.start
            assert t.duration >= 0.0
            assert t.bytes_pickled >= 0
            assert t.bytes_shared >= 0
        assert executor.total_task_time == pytest.approx(
            sum(t.duration for t in timings)
        )

    def test_array_payload_round_trip(self, executor):
        items = [[np.full((20, 3), i, dtype=np.float64)] for i in range(5)]
        expected = [float(i * 60) for i in range(5)]
        assert executor.map_tasks(array_total, items) == expected

    def test_map_with_args(self, executor):
        if isinstance(executor, (ProcessExecutor, SharedMemoryExecutor)):
            pytest.skip("map_with_args uses a closure; in-process executors only")
        assert executor.map_with_args(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]


class TestByteAccounting:
    def test_in_process_executors_move_nothing(self):
        for kind in ("serial", "threads"):
            ex = make(kind)
            ex.map_tasks(square, [1, 2, 3])
            assert ex.total_bytes_pickled == 0
            assert ex.total_bytes_shared == 0

    def test_process_executor_counts_pickled_payloads(self):
        ex = ProcessExecutor(workers=2)
        items = [[np.zeros((50, 3))] for _ in range(4)]
        ex.map_tasks(array_total, items)
        # each payload carries its 1200-byte array plus pickle framing
        assert ex.total_bytes_pickled > 4 * 50 * 3 * 8
        assert ex.total_bytes_shared == 0

    def test_shm_executor_shares_instead_of_pickling(self):
        ex = SharedMemoryExecutor(workers=2)
        pex = ProcessExecutor(workers=2)
        items = [[np.zeros((50, 3))] for _ in range(4)]
        try:
            assert ex.map_tasks(array_total, items) == pex.map_tasks(array_total, items)
            assert ex.total_bytes_shared == 4 * 50 * 3 * 8
            assert 0 < ex.total_bytes_pickled < pex.total_bytes_pickled
        finally:
            ex.shutdown()

    def test_shm_executor_deduplicates_shared_arrays(self):
        ex = SharedMemoryExecutor(workers=2)
        shared = np.ones((100, 3))
        try:
            ex.map_tasks(array_total, [[shared] for _ in range(8)])
            # every task references the array, but only one segment exists
            assert ex.total_bytes_shared == 8 * shared.nbytes
            assert len(ex.store) == 1
        finally:
            ex.shutdown()

    def test_shm_executor_shutdown_unlinks_store(self):
        ex = SharedMemoryExecutor(workers=2)
        ex.map_tasks(array_total, [[np.ones((10, 3))]])
        assert len(ex.store) == 1
        ex.shutdown()
        assert ex.store.closed


class TestFactoryAndDefaults:
    def test_make_executor_shm(self):
        ex = make_executor("shm", workers=2)
        assert isinstance(ex, SharedMemoryExecutor)
        assert ex.workers == 2
        ex.shutdown()

    def test_default_worker_count_reserves_driver_core(self):
        import os

        count = default_worker_count()
        assert count >= 1
        cpus = os.cpu_count()
        if cpus and cpus > 1:
            assert count == cpus - 1
