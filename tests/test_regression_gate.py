"""Deterministic tests of the variance-gated regression logic.

Every sample here is injected by hand — no timers, no benchmarks, no
wall clock — so pass/fail boundaries are exact and the suite runs in
milliseconds inside tier-1.  Covers the pure gate functions
(:func:`gate_speedup`, :func:`gate_regression`), the pairwise speedup
construction, the :class:`RegressionGate` wrapper over
:class:`Distribution` records, the :class:`BenchHistory` baseline
round-trip, and a chaos case where baseline and candidate
distributions overlap.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.bench import (
    BenchHistory,
    Distribution,
    GateVerdict,
    RegressionGate,
    distinguishable,
    gate_regression,
    gate_speedup,
    speedup_samples,
)


class TestSpeedupSamples:
    def test_all_pairwise_ratios(self):
        ratios = speedup_samples([10.0, 20.0], [2.0, 5.0])
        assert sorted(ratios) == [2.0, 4.0, 5.0, 10.0]
        assert len(ratios) == 4

    def test_zero_candidate_clamped_to_smallest_positive(self):
        ratios = speedup_samples([10.0], [0.0, 2.0])
        assert sorted(ratios) == [5.0, 5.0]

    def test_all_zero_candidate_is_infinite(self):
        assert speedup_samples([1.0], [0.0, 0.0]) == (float("inf"),)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            speedup_samples([], [1.0])
        with pytest.raises(ValueError):
            speedup_samples([1.0], [])


class TestGateSpeedup:
    def test_exact_boundary_fails(self):
        """Sitting exactly on the floor fails: the gate is strictly >."""
        verdict = gate_speedup([2.0, 2.0, 2.0], floor=2.0)   # MAD = 0
        assert not verdict.passed
        assert verdict.margin == 0.0

    def test_just_above_boundary_passes(self):
        verdict = gate_speedup([2.0, 2.0, 2.0], floor=1.999)
        assert verdict.passed
        assert verdict.margin == pytest.approx(0.001)

    def test_k_widens_the_guard_band(self):
        # median 3, MAD 1
        speedups = [2.0, 2.0, 3.0, 4.0, 4.0]
        assert gate_speedup(speedups, floor=1.9, k=1.0).passed
        assert not gate_speedup(speedups, floor=1.9, k=3.0).passed

    def test_k_zero_gates_on_raw_median(self):
        verdict = gate_speedup([1.0, 100.0, 3.0], floor=2.9, k=0.0)
        assert verdict.passed
        assert verdict.margin == pytest.approx(0.1)

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            gate_speedup([1.0], floor=1.0, k=-1.0)

    def test_reason_carries_the_decision_trace(self):
        verdict = gate_speedup([2.0, 2.0], floor=1.0)
        assert "median" in verdict.reason and "floor 1" in verdict.reason

    def test_informational_flag_preserved(self):
        verdict = gate_speedup([0.5], floor=10.0, gating=False)
        assert not verdict.passed and not verdict.gating


class TestDistinguishable:
    def test_clearly_faster(self):
        assert distinguishable([5.0, 5.1, 4.9], baseline=1.0, k=3.0)

    def test_clearly_slower(self):
        assert distinguishable([0.5, 0.49, 0.51], baseline=1.0, k=3.0)

    def test_straddling_one_is_noise(self):
        # median 1.0, MAD 0.2: the ±3 MAD band [0.4, 1.6] contains 1.0
        assert not distinguishable([0.8, 1.0, 1.2], baseline=1.0, k=3.0)


class TestGateRegression:
    def test_empty_baseline_passes_trivially(self):
        for baseline in (None, (), []):
            verdict = gate_regression([1.0, 2.0], baseline)
            assert verdict.passed
            assert verdict.margin == float("inf")
            assert "no baseline" in verdict.reason

    def test_exact_boundary_fails(self):
        # zero MAD on both sides, zero tolerance: threshold = baseline median
        verdict = gate_regression([1.0, 1.0], [1.0, 1.0])
        assert not verdict.passed
        assert verdict.margin == 0.0

    def test_clear_regression_fails(self):
        verdict = gate_regression([1.3, 1.31, 1.29], [1.0, 1.0, 1.0])
        assert not verdict.passed

    def test_faster_candidate_passes(self):
        assert gate_regression([0.9, 0.91], [1.0, 1.0]).passed

    def test_tolerance_absorbs_deliberate_slowdown(self):
        candidate, baseline = [1.05, 1.05], [1.0, 1.0]
        assert not gate_regression(candidate, baseline).passed
        assert gate_regression(candidate, baseline, tolerance=0.10).passed

    def test_larger_mad_wins(self):
        """A degenerately quiet baseline cannot flag an ordinarily noisy
        candidate: the guard band uses max(baseline MAD, candidate MAD)."""
        quiet_baseline = [1.0, 1.0, 1.0]                  # MAD 0
        noisy_candidate = [0.9, 1.1, 1.3, 0.8, 1.2]       # median 1.1, MAD 0.2
        verdict = gate_regression(noisy_candidate, quiet_baseline, k=3.0)
        # threshold = 1.0 + 3*0.2 = 1.6 > 1.1
        assert verdict.passed
        assert verdict.margin == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            gate_regression([1.0], [1.0], k=-1.0)
        with pytest.raises(ValueError):
            gate_regression([1.0], [1.0], tolerance=-0.1)


class TestOverlapChaos:
    """Baseline and candidate distributions overlap heavily: the gate
    must not raise false alarms, but must still catch a real shift."""

    @staticmethod
    def _noisy(center, seed, n=25, spread=0.05):
        rng = np.random.default_rng(seed)
        return (center + spread * rng.standard_normal(n)).tolist()

    def test_overlapping_same_center_passes(self):
        baseline = self._noisy(1.0, seed=1)
        candidate = self._noisy(1.0, seed=2)
        assert gate_regression(candidate, baseline, k=3.0).passed

    def test_small_shift_inside_noise_band_passes(self):
        baseline = self._noisy(1.0, seed=3)
        candidate = self._noisy(1.02, seed=4)     # < k*MAD away
        assert gate_regression(candidate, baseline, k=3.0).passed

    def test_large_shift_outside_noise_band_fails(self):
        baseline = self._noisy(1.0, seed=5)
        candidate = self._noisy(1.5, seed=6)      # >> k*MAD away
        assert not gate_regression(candidate, baseline, k=3.0).passed

    def test_overlapping_speedup_gate_is_symmetric_noise(self):
        """Two identical implementations measured with noise must not
        clear any floor above ~1x, in either direction."""
        a = self._noisy(1.0, seed=7)
        b = self._noisy(1.0, seed=8)
        ratios_ab = speedup_samples(a, b)
        ratios_ba = speedup_samples(b, a)
        assert not gate_speedup(ratios_ab, floor=1.1).passed
        assert not gate_speedup(ratios_ba, floor=1.1).passed
        assert not distinguishable(ratios_ab, baseline=1.0)


class TestRegressionGateWrapper:
    def test_check_speedup_over_distributions(self):
        gate = RegressionGate(k=3.0)
        reference = Distribution(samples=(10.0, 10.1, 9.9))
        candidate = Distribution(samples=(1.0, 1.01, 0.99))
        verdict = gate.check_speedup(reference, candidate, floor=5.0)
        assert verdict.passed
        assert isinstance(verdict, GateVerdict)

    def test_check_speedup_informational(self):
        gate = RegressionGate()
        d = Distribution(samples=(1.0, 1.0))
        verdict = gate.check_speedup(d, d, floor=100.0, gating=False)
        assert not verdict.passed and not verdict.gating

    def test_check_baseline_none_passes(self):
        gate = RegressionGate()
        assert gate.check_baseline(Distribution(samples=(1.0,)), None).passed

    def test_check_baseline_catches_regression(self):
        gate = RegressionGate(k=3.0)
        baseline = Distribution(samples=(1.0, 1.0, 1.0))
        slower = Distribution(samples=(1.4, 1.41, 1.39))
        faster = Distribution(samples=(0.7, 0.71, 0.69))
        assert not gate.check_baseline(slower, baseline).passed
        assert gate.check_baseline(faster, baseline).passed

    def test_speedup_stats_keys_and_consistency(self):
        gate = RegressionGate(k=2.0)
        reference = Distribution(samples=(8.0, 8.0))
        candidate = Distribution(samples=(2.0, 2.0))
        stats = gate.speedup_stats(reference, candidate)
        assert stats["speedup_median"] == 4.0
        assert stats["speedup_mad"] == 0.0
        assert stats["speedup_lower_bound"] == 4.0
        assert stats["k"] == 2.0
        json.dumps(stats)                          # JSON-ready

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionGate(k=-1.0)
        with pytest.raises(ValueError):
            RegressionGate(tolerance=-0.1)


class TestBenchHistory:
    def test_append_load_round_trip(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        d = Distribution(samples=(1.0, 2.0, 3.0), label="w")
        record = history.append("kernels", "cc", "n=100",
                                {"candidate": d}, stats={"x": 1.0},
                                meta={"pr": 7})
        loaded = history.load()
        assert len(loaded) == 1
        assert loaded[0]["suite"] == "kernels"
        assert loaded[0]["stats"] == {"x": 1.0}
        assert loaded[0]["meta"] == {"pr": 7}
        assert record["kernel"] == "cc"

    def test_missing_file_is_empty(self, tmp_path):
        assert BenchHistory(tmp_path / "nope.jsonl").load() == []
        assert BenchHistory(tmp_path / "nope.jsonl").baseline("s", "k") is None

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        history = BenchHistory(path)
        history.append("s", "k", "w", {"candidate": Distribution(samples=(1.0,))})
        with path.open("a") as fh:
            fh.write("{truncated by a killed CI job\n")
        history.append("s", "k", "w", {"candidate": Distribution(samples=(2.0,))})
        assert len(history.load()) == 2

    def test_records_filtering(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        d = Distribution(samples=(1.0,))
        history.append("kernels", "cc", "w", {"candidate": d})
        history.append("kernels", "kabsch", "w", {"candidate": d})
        history.append("spill", "cc", "w", {"candidate": d})
        assert len(history.records(suite="kernels")) == 2
        assert len(history.records(kernel="cc")) == 2
        assert len(history.records(suite="spill", kernel="cc")) == 1

    def test_baseline_is_latest_matching_record(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append("s", "k", "w",
                       {"candidate": Distribution(samples=(1.0, 1.0))})
        history.append("s", "k", "w",
                       {"candidate": Distribution(samples=(5.0, 5.0))})
        baseline = history.baseline("s", "k")
        assert baseline is not None
        assert baseline.median == 5.0

    def test_baseline_role_lookup(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        history.append("s", "k", "w", {
            "reference": Distribution(samples=(9.0,)),
            "vectorized": Distribution(samples=(3.0,)),
        })
        assert history.baseline("s", "k", role="vectorized").median == 3.0
        assert history.baseline("s", "k", role="candidate") is None

    def test_sha_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "abc123")
        history = BenchHistory(tmp_path / "hist.jsonl")
        record = history.append("s", "k", "w",
                                {"candidate": Distribution(samples=(1.0,))})
        assert record["sha"] == "abc123"


class TestEndToEndDeterministic:
    """The full CI decision path — history baseline, regression gate,
    speedup floor — on injected samples only."""

    def test_injected_regression_is_caught(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        gate = RegressionGate(k=3.0)
        history.append("kernels", "cc", "n=100",
                       {"candidate": Distribution(samples=(1.0, 1.01, 0.99,
                                                           1.0, 1.02))})
        baseline = history.baseline("kernels", "cc")
        healthy = Distribution(samples=(1.0, 1.01, 1.02, 0.98, 0.99))
        regressed = Distribution(samples=(1.3, 1.31, 1.29, 1.32, 1.28))
        assert gate.check_baseline(healthy, baseline).passed
        assert not gate.check_baseline(regressed, baseline).passed

    def test_first_run_of_new_workload_always_passes(self, tmp_path):
        history = BenchHistory(tmp_path / "hist.jsonl")
        gate = RegressionGate()
        candidate = Distribution(samples=(math.pi,))
        verdict = gate.check_baseline(
            candidate, history.baseline("kernels", "brand-new"))
        assert verdict.passed and verdict.margin == float("inf")
