"""Tests for the experiment drivers (figure/table regeneration harness)."""

import numpy as np
import pytest

from repro.experiments import (
    fig2_throughput,
    fig3_throughput_nodes,
    fig4_psa_wrangler,
    fig5_psa_comet_wrangler,
    fig6_cpptraj,
    fig7_leaflet_approaches,
    fig8_broadcast,
    fig9_rp_leaflet,
    report,
    tables,
)
from repro.experiments.common import format_rows, geometric_factor


class TestCommonHelpers:
    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        assert "a" in text and "10" in text
        assert format_rows([]) == "(no rows)"

    def test_geometric_factor(self):
        assert geometric_factor([1, 2, 4, 8]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_factor([1])


class TestModeledFigures:
    """Each figure's modeled series must exist and reproduce the paper's shape."""

    def test_fig2_dask_dominates(self):
        rows = fig2_throughput.modeled_rows(task_counts=(1024, 16384))
        by = {(r["framework"], r["n_tasks"]): r["throughput_tasks_per_s"] for r in rows}
        assert by[("dask", 16384)] > by[("spark", 16384)] > by[("pilot", 16384)]

    def test_fig3_includes_both_machines(self):
        rows = fig3_throughput_nodes.modeled_rows(node_counts=(1, 2))
        machines = {r["machine"] for r in rows}
        assert machines == {"comet", "wrangler"}

    def test_fig4_full_grid(self):
        rows = fig4_psa_wrangler.modeled_rows(ensemble_sizes=(128,),
                                              trajectory_sizes=("small", "large"),
                                              core_counts=(16, 256))
        # 1 ensemble size x 2 traj sizes x 4 frameworks x 2 core counts
        assert len(rows) == 16
        assert all(r["runtime_s"] > 0 for r in rows)

    def test_fig4_scaling_factor_roughly_six(self):
        rows = fig4_psa_wrangler.modeled_rows(ensemble_sizes=(128,),
                                              trajectory_sizes=("small",),
                                              core_counts=(16, 256))
        dask = [r for r in rows if r["framework"] == "dask"]
        speedup = dask[-1]["speedup"]
        assert 4.0 <= speedup <= 12.0

    def test_fig5_comet_beats_wrangler(self):
        rows = fig5_psa_comet_wrangler.modeled_rows(core_counts=(256,))
        runtimes = {(r["machine"], r["framework"]): r["runtime_s"] for r in rows}
        assert runtimes[("comet", "mpi")] < runtimes[("wrangler", "mpi")]

    def test_fig6_intel_faster(self):
        rows = fig6_cpptraj.modeled_rows(core_counts=(40, 240))
        by = {(r["framework"], r["cores"]): r["runtime_s"] for r in rows}
        assert by[("cpptraj-intel-O3", 240)] < by[("cpptraj-gnu", 240)]

    def test_fig7_grid_and_feasibility(self):
        rows = fig7_leaflet_approaches.modeled_rows(frameworks=("spark", "dask"),
                                                    atom_counts=(131_072, 524_288),
                                                    core_counts=(32, 256))
        assert len(rows) == 2 * 4 * 2 * 2
        dask_bcast_big = [r for r in rows if r["framework"] == "dask"
                          and r["approach"] == "broadcast-1d" and r["n_atoms"] == 524_288]
        assert all(not r["feasible"] for r in dask_bcast_big)

    def test_fig8_dask_broadcast_fraction_highest(self):
        rows = fig8_broadcast.modeled_rows(atom_counts=(262_144,))
        at_256 = {r["framework"]: r["broadcast_fraction"] for r in rows if r["cores"] == 256}
        assert at_256["dask"] > at_256["spark"]
        assert at_256["dask"] > at_256["mpi"]

    def test_fig9_overhead_dominated(self):
        rows = fig9_rp_leaflet.modeled_rows(atom_counts=(131_072, 524_288),
                                            core_counts=(32, 256))
        small = [r["runtime_s"] for r in rows if r["n_atoms"] == 131_072]
        large = [r["runtime_s"] for r in rows if r["n_atoms"] == 524_288]
        # runtimes similar despite 4x system size (overheads dominate)
        assert max(large) / max(small) < 2.5

    def test_report_collects_all_figures(self):
        modeled = report.all_modeled()
        assert set(modeled) == {"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                                "fig8", "fig9"}
        assert all(len(rows) > 0 for rows in modeled.values())


class TestMeasuredFigures:
    """Laptop-scale live runs of the same code paths (kept tiny)."""

    def test_fig2_measured(self):
        rows = fig2_throughput.measured_rows(task_counts=(16, 64), workers=2)
        assert len(rows) == 6
        assert all(r["throughput_tasks_per_s"] > 0 for r in rows)

    def test_fig4_measured_all_frameworks_agree_on_shape(self):
        rows = fig4_psa_wrangler.measured_rows(n_trajectories=6, scale=0.005,
                                               workers=2, n_frames=8)
        assert len(rows) == 4
        max_d = {r["framework"]: r["max_distance"] for r in rows}
        assert np.allclose(list(max_d.values()), list(max_d.values())[0])

    def test_fig6_measured_vectorized_wins(self):
        rows = fig6_cpptraj.measured_rows(n_pairs=3, n_frames=20, scale=0.01)
        assert rows[0]["speedup_vs_naive"] > 1.0

    def test_fig7_measured_small(self):
        rows = fig7_leaflet_approaches.measured_rows(n_atoms=400, n_tasks=6, workers=2,
                                                     frameworks=("dasklite",),
                                                     approaches=("task-2d", "parallel-cc"))
        assert len(rows) == 2
        assert all(r["agreement"] == 1.0 for r in rows)

    def test_fig8_measured(self):
        rows = fig8_broadcast.measured_rows(n_atoms=400, n_tasks=4, workers=2,
                                            frameworks=("dasklite",))
        assert rows[0]["bytes_broadcast"] > 0

    def test_fig9_measured_latency_hurts(self):
        rows = fig9_rp_leaflet.measured_rows(n_atoms=300, n_tasks=10, workers=2,
                                             database_latency_s=0.002)
        assert rows[1]["wall_time_s"] > rows[0]["wall_time_s"]


class TestTablesDriver:
    def test_render_all_tables(self):
        for t in (1, 2, 3):
            text = tables.render_table_text(t)
            assert len(text) > 100
        with pytest.raises(ValueError):
            tables.render_table_text(4)

    def test_table3_includes_recommendations(self):
        text = tables.render_table_text(3)
        assert "recommendation" in text
        assert "Dask" in text and "Spark" in text


class TestMainEntrypoints:
    """The CLI mains run without error (modeled output only)."""

    @pytest.mark.parametrize("module", [fig2_throughput, fig3_throughput_nodes,
                                        fig6_cpptraj, fig8_broadcast, fig9_rp_leaflet,
                                        tables])
    def test_main_runs(self, module, capsys):
        module.main([])
        out = capsys.readouterr().out
        assert len(out) > 50
