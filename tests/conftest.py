"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.frameworks import make_framework
from repro.trajectory import (
    BilayerSpec,
    EnsembleSpec,
    make_bilayer,
    make_clustered_ensemble,
    paper_psa_ensemble,
)

FRAMEWORK_NAMES = ("sparklite", "dasklite", "pilot", "mpilite")


@pytest.fixture(scope="session")
def small_ensemble():
    """A small clustered PSA ensemble (6 trajectories, 2 path families)."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=6, n_frames=10, n_atoms=24, n_clusters=2, seed=7)
    )


@pytest.fixture(scope="session")
def paper_shaped_ensemble():
    """A down-scaled version of the paper's 'small' PSA dataset."""
    return paper_psa_ensemble("small", 8, n_frames=12, scale=0.01, seed=3)


@pytest.fixture(scope="session")
def small_bilayer():
    """A small bilayer: positions plus ground-truth leaflet labels."""
    spec = BilayerSpec(n_atoms=360, seed=11)
    positions, labels = make_bilayer(spec)
    return positions, labels


@pytest.fixture(scope="session")
def curved_bilayer():
    """A bilayer with curvature (still two distinct leaflets)."""
    spec = BilayerSpec(n_atoms=400, seed=5, curvature_amplitude=4.0,
                       curvature_periods=1.5)
    positions, labels = make_bilayer(spec)
    return positions, labels


@pytest.fixture(params=FRAMEWORK_NAMES)
def any_framework(request):
    """Each of the four framework substrates, threads executor, 2 workers."""
    fw = make_framework(request.param, executor="threads", workers=2)
    yield fw
    fw.close()


@pytest.fixture(params=FRAMEWORK_NAMES)
def serial_framework(request):
    """Each of the four framework substrates with the serial executor."""
    fw = make_framework(request.param, executor="serial")
    yield fw
    fw.close()


@pytest.fixture()
def rng():
    """A seeded random generator."""
    return np.random.default_rng(12345)
