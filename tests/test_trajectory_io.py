"""Unit tests for trajectory readers and writers."""

import numpy as np
import pytest

from repro.trajectory import (
    Topology,
    Trajectory,
    TrajectoryEnsemble,
    load_ensemble,
    open_lazy,
    read_npy,
    read_npz,
    read_trajectory,
    read_xyz,
    write_ensemble,
    write_npy,
    write_npz,
    write_trajectory,
    write_xyz,
)


def make_traj(n_frames=4, n_atoms=5, seed=1, name="traj"):
    rng = np.random.default_rng(seed)
    top = Topology.from_names(["C"] * n_atoms)
    return Trajectory(rng.normal(size=(n_frames, n_atoms, 3)), topology=top, name=name)


class TestNpyRoundtrip:
    def test_roundtrip(self, tmp_path):
        traj = make_traj()
        path = tmp_path / "a.npy"
        write_npy(traj, path)
        back = read_npy(path)
        assert back.n_frames == traj.n_frames
        assert np.allclose(back.positions, traj.positions)

    def test_read_2d_array_promoted_to_single_frame(self, tmp_path):
        path = tmp_path / "single.npy"
        np.save(path, np.zeros((7, 3)))
        traj = read_npy(path)
        assert traj.n_frames == 1
        assert traj.n_atoms == 7

    def test_name_from_filename(self, tmp_path):
        traj = make_traj()
        path = tmp_path / "mytraj.npy"
        write_npy(traj, path)
        assert read_npy(path).name == "mytraj"


class TestNpzRoundtrip:
    def test_roundtrip_preserves_topology_and_times(self, tmp_path):
        traj = make_traj(name="npz_traj")
        path = tmp_path / "b.npz"
        write_npz(traj, path)
        back = read_npz(path)
        assert np.allclose(back.positions, traj.positions)
        assert np.allclose(back.times, traj.times)
        assert back.topology == traj.topology
        assert back.name == "npz_traj"


class TestXyzRoundtrip:
    def test_roundtrip(self, tmp_path):
        traj = make_traj(3, 4)
        path = tmp_path / "c.xyz"
        write_xyz(traj, path)
        back = read_xyz(path)
        assert back.n_frames == 3
        assert back.n_atoms == 4
        assert np.allclose(back.positions, traj.positions, atol=1e-5)

    def test_elements_preserved(self, tmp_path):
        top = Topology.from_names(["C", "N", "O"])
        traj = Trajectory(np.zeros((1, 3, 3)), topology=top)
        path = tmp_path / "d.xyz"
        write_xyz(traj, path)
        assert list(read_xyz(path).topology.elements) == ["C", "N", "O"]

    def test_malformed_count_raises(self, tmp_path):
        path = tmp_path / "bad.xyz"
        path.write_text("notanumber\ncomment\n")
        with pytest.raises(ValueError):
            read_xyz(path)

    def test_truncated_frame_raises(self, tmp_path):
        path = tmp_path / "trunc.xyz"
        path.write_text("3\ncomment\nC 0 0 0\n")
        with pytest.raises((ValueError, IndexError)):
            read_xyz(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.xyz"
        path.write_text("")
        with pytest.raises(ValueError):
            read_xyz(path)


class TestDispatch:
    @pytest.mark.parametrize("ext", ["npy", "npz", "xyz"])
    def test_write_read_by_extension(self, tmp_path, ext):
        traj = make_traj()
        path = tmp_path / f"t.{ext}"
        write_trajectory(traj, path)
        back = read_trajectory(path)
        assert np.allclose(back.positions, traj.positions, atol=1e-5)

    def test_unknown_extension_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_trajectory(make_traj(), tmp_path / "t.dcd")
        with pytest.raises(ValueError):
            read_trajectory(tmp_path / "t.dcd")


class TestEnsembleIO:
    def test_write_and_load_ensemble(self, tmp_path):
        ens = TrajectoryEnsemble([make_traj(seed=i, name=f"m{i}") for i in range(3)])
        paths = write_ensemble(ens, tmp_path / "ens", fmt="npy")
        assert len(paths) == 3
        back = load_ensemble(paths)
        assert back.n_trajectories == 3
        assert np.allclose(back[1].positions, ens[1].positions)

    def test_write_ensemble_bad_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_ensemble(TrajectoryEnsemble([make_traj()]), tmp_path, fmt="dcd")

    def test_open_lazy(self, tmp_path):
        ens = TrajectoryEnsemble([make_traj(name="only")])
        paths = write_ensemble(ens, tmp_path, fmt="npy")
        lazy = open_lazy(paths[0])
        assert lazy.n_frames == 4
