"""Unit tests for repro.trajectory.topology."""

import numpy as np
import pytest

from repro.trajectory.topology import ELEMENT_MASSES, Topology, guess_masses


class TestGuessMasses:
    def test_known_elements(self):
        masses = guess_masses(["C", "N", "O", "P"])
        assert masses.tolist() == [12.011, 14.007, 15.999, 30.974]

    def test_case_insensitive(self):
        assert guess_masses(["c"])[0] == pytest.approx(ELEMENT_MASSES["C"])

    def test_unknown_element_is_zero(self):
        assert guess_masses(["Xx"])[0] == 0.0

    def test_empty(self):
        assert guess_masses([]).shape == (0,)


class TestTopologyConstruction:
    def test_uniform(self):
        top = Topology.uniform(10, name="P", element="P", resname="LIP")
        assert top.n_atoms == 10
        assert set(top.names) == {"P"}
        assert set(top.resnames) == {"LIP"}
        assert top.n_residues == 10

    def test_uniform_atoms_per_residue(self):
        top = Topology.uniform(10, atoms_per_residue=5)
        assert top.n_residues == 2
        assert top.resids[0] == 1
        assert top.resids[-1] == 2

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            Topology.uniform(-1)
        with pytest.raises(ValueError):
            Topology.uniform(5, atoms_per_residue=0)

    def test_from_names_defaults(self):
        top = Topology.from_names(["CA", "CB", "N"])
        assert top.n_atoms == 3
        assert list(top.elements) == ["C", "C", "N"]
        assert top.masses[2] == pytest.approx(14.007)

    def test_from_names_two_letter_elements(self):
        top = Topology.from_names(["CL1", "NA"])
        assert list(top.elements) == ["CL", "NA"]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Topology(
                names=np.array(["A", "B"], dtype=object),
                elements=np.array(["C"], dtype=object),
                resids=np.array([1, 1]),
                resnames=np.array(["X", "X"], dtype=object),
                segids=np.array(["S", "S"], dtype=object),
            )

    def test_masses_guessed_when_missing(self):
        top = Topology.from_names(["CA", "O"])
        assert top.masses[1] == pytest.approx(15.999)

    def test_charges_default_zero(self):
        top = Topology.uniform(4)
        assert np.all(top.charges == 0.0)


class TestTopologyOperations:
    def test_len(self):
        assert len(Topology.uniform(7)) == 7

    def test_equality(self):
        a = Topology.uniform(5, name="P")
        b = Topology.uniform(5, name="P")
        c = Topology.uniform(5, name="CA")
        assert a == b
        assert a != c

    def test_equality_with_non_topology(self):
        assert Topology.uniform(2).__eq__(42) is NotImplemented

    def test_subset_preserves_order(self):
        top = Topology.from_names(["A", "B", "C", "D"])
        sub = top.subset([3, 1])
        assert list(sub.names) == ["D", "B"]
        assert sub.n_atoms == 2

    def test_concat(self):
        a = Topology.uniform(3, name="P")
        b = Topology.uniform(2, name="CA")
        merged = a.concat(b)
        assert merged.n_atoms == 5
        assert list(merged.names) == ["P", "P", "P", "CA", "CA"]

    def test_roundtrip_dict(self):
        top = Topology.from_names(["CA", "P", "O"], charges=[0.1, -0.2, 0.0])
        again = Topology.from_dict(top.to_dict())
        assert again == top
