"""Unit tests for the high-level API and the characterization / decision framework."""

import numpy as np
import pytest

from repro.core.api import compare_frameworks, compare_leaflet_approaches, leaflet_finder, psa
from repro.core.characterization import (
    DECISION_FRAMEWORK,
    FRAMEWORK_COMPARISON,
    LEAFLET_MAPREDUCE_OPERATIONS,
    LEAFLET_OGRES,
    PSA_OGRES,
    Support,
    decision_framework_table,
    framework_comparison_table,
    leaflet_operations_table,
    recommend_framework,
    render_table,
)
from repro.core.psa import psa_serial
from repro.frameworks import make_framework
from repro.trajectory import BilayerSpec, make_bilayer_universe


class TestHighLevelApi:
    def test_psa_with_framework_name(self, small_ensemble):
        matrix, report = psa(small_ensemble, framework="dask", workers=2, n_tasks=4)
        assert np.allclose(matrix.values, psa_serial(small_ensemble).values, atol=1e-9)
        assert report.framework == "dasklite"

    def test_psa_with_framework_instance(self, small_ensemble):
        fw = make_framework("mpi", workers=2)
        matrix, _ = psa(small_ensemble, framework=fw, group_size=3)
        assert matrix.is_symmetric()
        fw.close()

    def test_leaflet_finder_from_universe(self):
        universe, labels = make_bilayer_universe(BilayerSpec(n_atoms=200, seed=23))
        result, report = leaflet_finder(universe, framework="spark", workers=2,
                                        approach="parallel-cc", n_tasks=4)
        assert result.agreement_with(labels) == 1.0
        assert report.algorithm.startswith("leaflet_finder")

    def test_leaflet_finder_from_positions(self, small_bilayer):
        positions, labels = small_bilayer
        result, _ = leaflet_finder(positions, framework="mpi", workers=2,
                                   approach="task-2d", n_tasks=4)
        assert result.agreement_with(labels) == 1.0

    def test_leaflet_finder_empty_selection(self):
        universe, _ = make_bilayer_universe(BilayerSpec(n_atoms=50, seed=2))
        with pytest.raises(ValueError):
            leaflet_finder(universe, selection="name ZZZ")

    def test_compare_frameworks_reports_all(self, small_ensemble):
        reports = compare_frameworks(small_ensemble,
                                     frameworks=("dasklite", "mpilite"),
                                     workers=2, n_tasks=4)
        assert set(reports) == {"dasklite", "mpilite"}
        assert all(r.wall_time_s > 0 for r in reports.values())

    def test_compare_leaflet_approaches_consistent(self, small_bilayer):
        positions, _ = small_bilayer
        reports = compare_leaflet_approaches(positions, framework="dasklite",
                                             approaches=("task-2d", "parallel-cc"),
                                             n_tasks=4, workers=2)
        assert set(reports) == {"task-2d", "parallel-cc"}


class TestOgres:
    def test_psa_classification(self):
        facets = PSA_OGRES.all_facets()
        assert set(facets) == {"execution", "data source & style", "processing",
                               "problem architecture"}
        assert any("embarrassingly parallel" in f for f in PSA_OGRES.problem_architecture)

    def test_leaflet_classification(self):
        assert any("MapReduce" in f for f in LEAFLET_OGRES.problem_architecture)
        assert any("graph" in f for f in LEAFLET_OGRES.processing)


class TestTables:
    def test_table1_content(self):
        assert set(FRAMEWORK_COMPARISON) == {"RADICAL-Pilot", "Spark", "Dask"}
        assert FRAMEWORK_COMPARISON["RADICAL-Pilot"]["shuffle"] == "-"
        text = framework_comparison_table()
        assert "Stage-oriented DAG" in text

    def test_table2_content(self):
        assert set(LEAFLET_MAPREDUCE_OPERATIONS) == {"broadcast-1d", "task-2d",
                                                     "parallel-cc", "tree-search"}
        assert "O(n)" in LEAFLET_MAPREDUCE_OPERATIONS["parallel-cc"]["shuffle"]
        assert "O(E)" in LEAFLET_MAPREDUCE_OPERATIONS["task-2d"]["shuffle"]
        assert "tree" in leaflet_operations_table()

    def test_table2_matches_leaflet_approaches(self):
        from repro.core.leaflet import LEAFLET_APPROACHES
        assert set(LEAFLET_MAPREDUCE_OPERATIONS) == set(LEAFLET_APPROACHES)

    def test_table3_content(self):
        frameworks = {"RADICAL-Pilot", "Spark", "Dask"}
        for criterion, row in DECISION_FRAMEWORK.items():
            assert set(row) == frameworks, criterion
            assert all(level in Support.ORDER for level in row.values())
        text = decision_framework_table()
        assert "throughput" in text

    def test_support_scoring(self):
        assert Support.score("++") > Support.score("+") > Support.score("o") > Support.score("-")
        with pytest.raises(ValueError):
            Support.score("+++")

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


class TestRecommendation:
    def test_shuffle_heavy_prefers_spark(self):
        ranking = recommend_framework({"shuffle": 1.0, "broadcast": 1.0, "caching": 1.0})
        assert ranking[0][0] == "Spark"

    def test_python_task_api_prefers_dask(self):
        ranking = recommend_framework({"task_api": 1.0, "throughput": 1.0,
                                       "low_latency": 1.0})
        assert ranking[0][0] == "Dask"

    def test_mpi_hpc_prefers_pilot(self):
        ranking = recommend_framework({"mpi_hpc_tasks": 1.0, "python_native_code": 1.0})
        assert ranking[0][0] == "RADICAL-Pilot"

    def test_scores_bounded(self):
        ranking = recommend_framework({"shuffle": 2.0})
        assert all(0.0 <= score <= 3.0 for _fw, score in ranking)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_framework({})
        with pytest.raises(ValueError):
            recommend_framework({"bogus": 1.0})
        with pytest.raises(ValueError):
            recommend_framework({"shuffle": -1.0})
        with pytest.raises(ValueError):
            recommend_framework({"shuffle": 0.0})
