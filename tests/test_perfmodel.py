"""Unit tests for the performance model (machines, costs, kernels, throughput, scaling).

Beyond plain unit checks, these tests assert the *shape* properties the
paper reports — who wins, rough factors, crossovers — because those are
the claims the modeled figures must reproduce.
"""

import pytest

from repro.perfmodel import (
    COMET,
    DEFAULT_RATES,
    LOCAL,
    WRANGLER,
    KernelCosts,
    calibrate_kernels,
    cpptraj_sweep,
    engine_preset,
    get_cost_model,
    leaflet_sweep,
    model_broadcast_breakdown,
    model_leaflet_runtime,
    model_psa_runtime,
    model_task_run_time,
    model_throughput,
    node_scaling_sweep,
    psa_sweep,
    rates_from_bench_record,
    throughput_sweep,
)
from repro.perfmodel.scaling import _configuration_feasible


class TestMachines:
    def test_nodes_for_cores(self):
        assert WRANGLER.nodes_for_cores(32) == 1
        assert WRANGLER.nodes_for_cores(256) == 8
        assert COMET.nodes_for_cores(256) == 16
        with pytest.raises(ValueError):
            WRANGLER.nodes_for_cores(0)

    def test_effective_cores_hyperthread_penalty(self):
        """The same 256 'cores' are worth less on Wrangler (hyper-threads)."""
        assert COMET.effective_cores(256) > WRANGLER.effective_cores(256)
        with pytest.raises(ValueError):
            WRANGLER.effective_cores(0)

    def test_effective_cores_monotone(self):
        values = [WRANGLER.effective_cores(c) for c in (16, 64, 128, 256)]
        assert values == sorted(values)

    def test_cluster_factory(self):
        cluster = WRANGLER.cluster(4)
        assert cluster.nodes == 4
        assert cluster.cores_per_node == 24


class TestCostModels:
    def test_lookup_aliases(self):
        assert get_cost_model("spark") is get_cost_model("sparklite")
        assert get_cost_model("mpi4py") is get_cost_model("mpilite")
        with pytest.raises(ValueError):
            get_cost_model("flink")

    def test_scheduler_throughput_ordering(self):
        """Dask > Spark > RADICAL-Pilot, as in Figure 2."""
        dask = get_cost_model("dask").scheduler_throughput(1)
        spark = get_cost_model("spark").scheduler_throughput(1)
        pilot = get_cost_model("pilot").scheduler_throughput(1)
        assert dask > 5 * spark           # "order of magnitude" separation
        assert spark > pilot
        assert pilot < 100.0              # "plateaus below 100 tasks/sec"

    def test_pilot_task_limit(self):
        assert not get_cost_model("pilot").supports_task_count(100_000)
        assert get_cost_model("dask").supports_task_count(131_072)

    def test_broadcast_cost_grows_with_nodes_and_bytes(self):
        spark = get_cost_model("spark")
        assert spark.broadcast_time(10**6, 8) > spark.broadcast_time(10**6, 1)
        assert spark.broadcast_time(10**8, 2) > spark.broadcast_time(10**6, 2)
        with pytest.raises(ValueError):
            spark.broadcast_time(-1, 1)

    def test_dask_broadcast_weaker_than_spark(self):
        """Figure 8: Dask's broadcast is the weak point for large systems."""
        nbytes = 262_144 * 24
        assert (get_cost_model("dask").broadcast_time(nbytes, 8)
                > get_cost_model("spark").broadcast_time(nbytes, 8))

    def test_with_overrides(self):
        custom = get_cost_model("dask").with_overrides(task_overhead_s=1.0)
        assert custom.scheduler_throughput(1) == pytest.approx(1.0)

    def test_dispatch_validation(self):
        with pytest.raises(ValueError):
            get_cost_model("dask").dispatch_time(-1)
        with pytest.raises(ValueError):
            get_cost_model("dask").scheduler_throughput(0)


class TestKernels:
    def test_costs_scale_with_problem_size(self):
        kern = KernelCosts()
        assert kern.hausdorff_pair(204, 3341) > kern.hausdorff_pair(102, 3341)
        assert kern.cdist_block(2000, 2000) > kern.cdist_block(1000, 1000)
        assert kern.connected_components(100, 1000) > kern.connected_components(100, 10)

    def test_tree_cheaper_than_cdist_for_large_blocks(self):
        kern = KernelCosts()
        n = 100_000
        assert kern.tree_block(n, n) < kern.cdist_block(n, n)

    def test_rate_scaling(self):
        fast = KernelCosts(DEFAULT_RATES.scaled(2.0))
        assert fast.hausdorff_pair(100, 1000) == pytest.approx(
            KernelCosts().hausdorff_pair(100, 1000) / 2.0)
        with pytest.raises(ValueError):
            DEFAULT_RATES.scaled(0.0)

    def test_validation(self):
        kern = KernelCosts()
        with pytest.raises(ValueError):
            kern.hausdorff_pair(0, 10)
        with pytest.raises(ValueError):
            kern.cdist_block(-1, 5)
        with pytest.raises(ValueError):
            kern.connected_components(-1, 0)

    def test_vectorized_engine_costs(self):
        """The kernel-engine cost split: vectorized variants model cheaper."""
        kern = KernelCosts()
        n, e = 100_000, 400_000
        assert kern.connected_components(n, e, method="vectorized") \
            < kern.connected_components(n, e, method="reference")
        assert kern.tree_block_batched(n, n) < kern.tree_block(n, n)
        with pytest.raises(ValueError):
            kern.connected_components(10, 10, method="gpu")
        with pytest.raises(ValueError):
            kern.tree_block_batched(-1, 5)

    def test_earlybreak_pair_cost(self):
        """The early-break kernel models as a fraction of the full 2D-RMSD."""
        kern = KernelCosts()
        full = kern.hausdorff_pair(256, 64)
        assert kern.hausdorff_earlybreak_pair(256, 64) == pytest.approx(0.25 * full)
        assert kern.hausdorff_earlybreak_pair(256, 64, visit_fraction=1.0) \
            == pytest.approx(full)
        with pytest.raises(ValueError):
            kern.hausdorff_earlybreak_pair(256, 64, visit_fraction=0.0)

    def test_spill_write_cost(self):
        """The write-behind spill term: async only pays the unhidden tail."""
        kern = KernelCosts()
        nbytes = 64 * 1024 * 1024
        sync = kern.spill_write(nbytes, spill_async=False)
        assert sync == pytest.approx(nbytes / DEFAULT_RATES.spill_bandwidth)
        behind = kern.spill_write(nbytes, spill_async=True)
        assert behind < sync
        assert behind == pytest.approx(0.1 * sync)      # default hides 90%
        # the limits bracket it: fully hidden is free, fully backpressured
        # is a synchronous write
        assert kern.spill_write(nbytes, hidden_fraction=1.0) == 0.0
        assert kern.spill_write(nbytes, hidden_fraction=0.0) == pytest.approx(sync)
        assert kern.spill_write(0) == 0.0
        with pytest.raises(ValueError):
            kern.spill_write(-1)
        with pytest.raises(ValueError):
            kern.spill_write(nbytes, hidden_fraction=1.5)

    def test_retry_overhead_cost(self):
        """Task-level replay pays the task again, never the rest of the run."""
        kern = KernelCosts()
        assert kern.retry_overhead(2.0) == pytest.approx(2.0)
        assert kern.retry_overhead(2.0, retries=0) == 0.0
        assert kern.retry_overhead(2.0, retries=3) == pytest.approx(6.0)
        # deterministic backoff series: 0.5 + 1.0 for two retries (factor 2)
        assert kern.retry_overhead(2.0, retries=2, backoff_s=0.5) \
            == pytest.approx(2 * 2.0 + 0.5 + 1.0)
        # a worker death also pays the pool rebuild as redispatch
        assert kern.retry_overhead(2.0, retries=1, redispatch_s=0.3) \
            == pytest.approx(2.3)
        with pytest.raises(ValueError):
            kern.retry_overhead(-1.0)
        with pytest.raises(ValueError):
            kern.retry_overhead(1.0, retries=-1)


class TestThroughputModel:
    def test_figure2_shape(self):
        """Dask > Spark >> RP at large task counts; RP cannot run 131k tasks."""
        assert model_throughput("dask", 131_072) > model_throughput("spark", 131_072)
        assert model_throughput("spark", 16_384) > model_throughput("pilot", 16_384)
        assert model_task_run_time("pilot", 131_072) == float("inf")
        assert model_throughput("pilot", 131_072) == 0.0

    def test_throughput_saturates(self):
        """Throughput rises with task count then flattens (Figure 2)."""
        small = model_throughput("dask", 16)
        large = model_throughput("dask", 65_536)
        huge = model_throughput("dask", 131_072)
        assert large > small
        assert abs(huge - large) / large < 0.1

    def test_figure3_node_scaling(self):
        """Dask grows nearly linearly with nodes, RP plateaus (Figure 3)."""
        points = {(p.framework, p.nodes): p.throughput
                  for p in node_scaling_sweep(node_counts=(1, 4))}
        assert points[("dask", 4)] > 2.5 * points[("dask", 1)]
        assert points[("pilot", 4)] < 1.5 * points[("pilot", 1)]
        assert points[("pilot", 4)] < 100.0

    def test_sweep_row_format(self):
        rows = [p.as_dict() for p in throughput_sweep(task_counts=(16, 1024))]
        assert {"framework", "n_tasks", "throughput_tasks_per_s"} <= set(rows[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            model_task_run_time("dask", 0)
        with pytest.raises(ValueError):
            model_task_run_time("dask", 10, nodes=0)


class TestPsaModel:
    def test_runtime_decreases_with_cores(self):
        runtimes = [model_psa_runtime("dask", WRANGLER, cores=c) for c in (16, 64, 256)]
        assert runtimes[0] > runtimes[1] > runtimes[2]

    def test_mpi_fastest_framework(self):
        for cores in (16, 256):
            mpi = model_psa_runtime("mpi", WRANGLER, cores=cores)
            for fw in ("spark", "dask", "pilot"):
                assert mpi <= model_psa_runtime(fw, WRANGLER, cores=cores)

    def test_speedup_saturates_like_paper(self):
        """Fig 4: going 16 -> 256 cores buys roughly 5-10x, not 16x."""
        points = psa_sweep(frameworks=("dask",), core_counts=(16, 256))
        speedup = points[-1].speedup
        assert 4.0 <= speedup <= 12.0

    def test_comet_faster_than_wrangler(self):
        """Fig 5: same core count is worth more on Comet (no hyper-threads)."""
        wr = model_psa_runtime("mpi", WRANGLER, cores=256, n_atoms=13364)
        co = model_psa_runtime("mpi", COMET, cores=256, n_atoms=13364)
        assert co < wr

    def test_larger_systems_take_longer(self):
        small = model_psa_runtime("dask", WRANGLER, cores=64, n_atoms=3341)
        large = model_psa_runtime("dask", WRANGLER, cores=64, n_atoms=13364)
        assert large > 2.0 * small

    def test_validation(self):
        with pytest.raises(ValueError):
            model_psa_runtime("dask", WRANGLER, cores=0)


class TestCpptrajModel:
    def test_intel_faster_than_gnu(self):
        rows = cpptraj_sweep(core_counts=(20, 240))
        by_key = {(r.framework, r.cores): r.runtime_s for r in rows}
        assert by_key[("cpptraj-intel-O3", 240)] < by_key[("cpptraj-gnu", 240)]

    def test_compiled_faster_than_python_frameworks(self):
        """Fig 6 vs Fig 4: the compiled comparator wins in absolute runtime."""
        compiled = [r for r in cpptraj_sweep(core_counts=(240,))
                    if r.framework == "cpptraj-gnu"][0].runtime_s
        python_fw = model_psa_runtime("dask", WRANGLER, cores=256)
        assert compiled < python_fw

    def test_validation(self):
        from repro.perfmodel.scaling import model_cpptraj_runtime
        with pytest.raises(ValueError):
            model_cpptraj_runtime(0)
        with pytest.raises(ValueError):
            model_cpptraj_runtime(8, compiler_speedup=0.0)


class TestLeafletModel:
    def test_broadcast_approach_slowest(self):
        for fw in ("spark", "dask"):
            bc = model_leaflet_runtime(fw, "broadcast-1d", cores=128, n_atoms=262_144)
            t2 = model_leaflet_runtime(fw, "task-2d", cores=128, n_atoms=262_144)
            assert bc > t2

    def test_parallel_cc_faster_than_task_2d(self):
        """Fig 7: the partial-components refinement buys roughly 10-30%."""
        t2 = model_leaflet_runtime("spark", "task-2d", cores=256, n_atoms=524_288)
        t3 = model_leaflet_runtime("spark", "parallel-cc", cores=256, n_atoms=524_288)
        assert t3 < t2
        assert t3 > 0.5 * t2

    def test_tree_search_crossover(self):
        """Tree search loses on the smallest system but wins on the biggest."""
        small_cc = model_leaflet_runtime("dask", "parallel-cc", cores=64, n_atoms=131_072)
        small_tree = model_leaflet_runtime("dask", "tree-search", cores=64, n_atoms=131_072)
        big_cc = model_leaflet_runtime("dask", "parallel-cc", cores=64, n_atoms=4_194_304)
        big_tree = model_leaflet_runtime("dask", "tree-search", cores=64, n_atoms=4_194_304)
        assert small_tree > small_cc
        assert big_tree < big_cc

    def test_mpi_fastest(self):
        for approach in ("task-2d", "parallel-cc"):
            mpi = model_leaflet_runtime("mpi", approach, cores=128, n_atoms=262_144)
            spark = model_leaflet_runtime("spark", approach, cores=128, n_atoms=262_144)
            assert mpi < spark

    def test_pilot_overhead_dominated(self):
        """Fig 9: RP runtimes are overhead-dominated and insensitive to size."""
        small = model_leaflet_runtime("pilot", "task-2d", cores=256, n_atoms=131_072)
        large = model_leaflet_runtime("pilot", "task-2d", cores=256, n_atoms=524_288)
        assert large / small < 2.0
        assert small > model_leaflet_runtime("dask", "task-2d", cores=256, n_atoms=131_072) * 3

    def test_feasibility_flags(self):
        assert not _configuration_feasible("dask", "broadcast-1d", 524_288)
        assert _configuration_feasible("spark", "broadcast-1d", 524_288)
        assert not _configuration_feasible("spark", "task-2d", 4_194_304)
        assert _configuration_feasible("spark", "parallel-cc", 4_194_304)
        assert not _configuration_feasible("dask", "parallel-cc", 4_194_304)
        assert _configuration_feasible("dask", "tree-search", 4_194_304)

    def test_sweep_and_breakdown_rows(self):
        rows = leaflet_sweep(frameworks=("spark",), atom_counts=(131_072,),
                             core_counts=(32, 256))
        assert len(rows) == 4 * 2
        breakdown = model_broadcast_breakdown(frameworks=("mpi",), atom_counts=(131_072,),
                                              core_counts=(32, 256))
        assert all("broadcast_s" in p.extra for p in breakdown)

    def test_mpi_broadcast_fraction_smaller_than_dask(self):
        """Fig 8: broadcast is a much larger fraction of runtime for Dask."""
        rows = model_broadcast_breakdown(frameworks=("dask", "mpi"),
                                         atom_counts=(262_144,), core_counts=(256,))
        frac = {r.framework: r.extra["broadcast_fraction"] for r in rows}
        assert frac["dask"] > frac["mpi"]

    def test_validation(self):
        with pytest.raises(ValueError):
            model_leaflet_runtime("spark", "bogus", cores=32, n_atoms=1000)
        with pytest.raises(ValueError):
            model_leaflet_runtime("spark", "task-2d", cores=0, n_atoms=1000)


class TestCalibration:
    def test_calibrate_returns_positive_rates(self):
        result = calibrate_kernels(n_frames=16, n_atoms=64, n_points=300, repeats=1)
        rates = result.rates
        assert rates.gemm_flops > 0
        assert rates.cdist_evals > 0
        assert rates.tree_build_points > 0
        assert rates.union_find_ops > 0
        assert "rmsd_matrix" in result.timings
        assert isinstance(result.summary(), str)

    def test_calibrated_rates_usable_in_model(self):
        result = calibrate_kernels(n_frames=16, n_atoms=64, n_points=300, repeats=1)
        runtime = model_psa_runtime("dask", LOCAL, cores=4, n_trajectories=8,
                                    n_frames=20, n_atoms=50, rates=result.rates)
        assert runtime > 0.0

    def test_calibration_keeps_distribution_evidence(self):
        result = calibrate_kernels(n_frames=16, n_atoms=64, n_points=300, repeats=2)
        dist = result.distributions["rmsd_matrix"]
        assert dist.n == 2
        assert result.timings["rmsd_matrix"] == pytest.approx(
            max(dist.median, 1e-9))
        assert "MAD" in result.summary()


class TestEnginePresets:
    """Engine-aware rate presets recalibrated from a benchmark record."""

    SYNTHETIC_RECORD = {
        "rows": [
            {"kernel": "connected_components", "workload": "n=30000 nodes",
             "speedup_median": 10.0},
            {"kernel": "radius_edges[balltree]", "workload": "n=20000 atoms",
             "speedup_median": 30.0},
        ]
    }

    def test_cc_rate_derived_from_speedup_median(self):
        rates = rates_from_bench_record(self.SYNTHETIC_RECORD)
        # passes(30000) = log2(30000)/2 ~= 7.43
        import numpy as np
        passes = max(1.0, np.log2(30_000) / 2.0)
        expected = 10.0 * passes * DEFAULT_RATES.union_find_ops
        assert rates.cc_label_ops == pytest.approx(expected)

    def test_ordering_invariants_survive_any_record(self):
        """Vectorized rates never fall below their reference counterpart,
        even from a degenerate record claiming a slowdown."""
        degenerate = {"rows": [
            {"kernel": "connected_components", "workload": "n=100 nodes",
             "speedup_median": 1e-6},
        ]}
        rates = rates_from_bench_record(degenerate)
        assert rates.cc_label_ops >= rates.union_find_ops

    def test_missing_kernels_keep_incoming_rates(self):
        rates = rates_from_bench_record({"rows": []})
        assert rates == DEFAULT_RATES

    def test_missing_file_returns_rates_unchanged(self, tmp_path, monkeypatch):
        import repro.perfmodel.calibration as calibration
        monkeypatch.setattr(calibration, "BENCH_RECORD_PATH",
                            tmp_path / "absent.json")
        assert calibration.rates_from_bench_record(None) == DEFAULT_RATES

    def test_engine_preset_reference_is_identity(self):
        assert engine_preset("reference") == DEFAULT_RATES

    def test_engine_preset_vectorized_widens_engine_gap(self):
        """With the committed record present, the vectorized preset's
        components cost must beat the reference engine's."""
        rates = engine_preset("vectorized")
        assert rates.cc_label_ops >= DEFAULT_RATES.union_find_ops
        costs = KernelCosts(rates)
        assert (costs.connected_components(30_000, 120_000, method="vectorized")
                <= costs.connected_components(30_000, 120_000,
                                              method="reference"))

    def test_engine_preset_unknown_raises(self):
        with pytest.raises(ValueError):
            engine_preset("fortran")
