"""Unit tests for the RMSD kernels."""

import numpy as np
import pytest

from repro.analysis.rmsd import (
    kabsch_rmsd,
    kabsch_rotation,
    pairwise_rmsd_loop,
    rmsd,
    rmsd_matrix,
    rmsd_matrix_blocked,
    rmsd_trajectory,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestRMSD:
    def test_identical_frames_zero(self, rng):
        frame = rng.normal(size=(10, 3))
        assert rmsd(frame, frame) == pytest.approx(0.0)

    def test_known_value(self):
        a = np.zeros((2, 3))
        b = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        # each atom displaced by 1 -> rmsd = 1
        assert rmsd(a, b) == pytest.approx(1.0)

    def test_symmetry(self, rng):
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(5, 3))
        assert rmsd(a, b) == pytest.approx(rmsd(b, a))

    def test_translation_changes_plain_rmsd(self, rng):
        a = rng.normal(size=(8, 3))
        assert rmsd(a, a + 5.0) == pytest.approx(np.sqrt(3 * 25.0))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            rmsd(rng.normal(size=(4, 3)), rng.normal(size=(5, 3)))

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            rmsd(np.zeros((4, 2)), np.zeros((4, 2)))


class TestKabsch:
    def test_rotation_is_orthogonal(self, rng):
        a = rng.normal(size=(10, 3))
        a -= a.mean(axis=0)
        b = rng.normal(size=(10, 3))
        b -= b.mean(axis=0)
        rot = kabsch_rotation(a, b)
        assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-10)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_kabsch_removes_rotation_and_translation(self, rng):
        a = rng.normal(size=(12, 3))
        theta = 0.7
        rotation = np.array([[np.cos(theta), -np.sin(theta), 0],
                             [np.sin(theta), np.cos(theta), 0],
                             [0, 0, 1.0]])
        b = a @ rotation.T + np.array([3.0, -1.0, 2.0])
        assert kabsch_rmsd(a, b) == pytest.approx(0.0, abs=1e-9)
        assert rmsd(a, b) > 1.0  # plain RMSD sees the transformation

    def test_kabsch_leq_plain(self, rng):
        a, b = rng.normal(size=(9, 3)), rng.normal(size=(9, 3))
        assert kabsch_rmsd(a, b) <= rmsd(a - a.mean(0), b - b.mean(0)) + 1e-12

    def test_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            kabsch_rmsd(rng.normal(size=(4, 3)), rng.normal(size=(6, 3)))


class TestRmsdTrajectory:
    def test_reference_default_first_frame(self, rng):
        traj = rng.normal(size=(5, 6, 3))
        series = rmsd_trajectory(traj)
        assert series.shape == (5,)
        assert series[0] == pytest.approx(0.0)

    def test_explicit_reference(self, rng):
        traj = rng.normal(size=(4, 6, 3))
        ref = rng.normal(size=(6, 3))
        series = rmsd_trajectory(traj, reference=ref)
        assert series[2] == pytest.approx(rmsd(traj[2], ref))

    def test_superposition_path(self, rng):
        traj = rng.normal(size=(3, 6, 3))
        plain = rmsd_trajectory(traj)
        fitted = rmsd_trajectory(traj, superposition=True)
        assert np.all(fitted <= plain + 1e-9)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            rmsd_trajectory(np.zeros((5, 3)))


class TestRmsdMatrix:
    def test_matches_loop_reference(self, rng):
        a = rng.normal(size=(6, 5, 3))
        b = rng.normal(size=(4, 5, 3))
        assert np.allclose(rmsd_matrix(a, b), pairwise_rmsd_loop(a, b), atol=1e-10)

    def test_blocked_matches_full(self, rng):
        a = rng.normal(size=(7, 4, 3))
        b = rng.normal(size=(9, 4, 3))
        assert np.allclose(rmsd_matrix_blocked(a, b, block=3), rmsd_matrix(a, b), atol=1e-12)

    def test_diagonal_of_self_comparison_zero(self, rng):
        a = rng.normal(size=(5, 6, 3))
        mat = rmsd_matrix(a, a)
        assert np.allclose(np.diag(mat), 0.0, atol=1e-7)

    def test_non_negative(self, rng):
        a = rng.normal(size=(5, 4, 3))
        b = rng.normal(size=(6, 4, 3))
        assert np.all(rmsd_matrix(a, b) >= 0.0)

    def test_atom_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            rmsd_matrix(rng.normal(size=(3, 4, 3)), rng.normal(size=(3, 5, 3)))

    def test_blocked_bad_block(self, rng):
        a = rng.normal(size=(3, 4, 3))
        with pytest.raises(ValueError):
            rmsd_matrix_blocked(a, a, block=0)
