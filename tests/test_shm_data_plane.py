"""Tests for the zero-copy shared-memory data plane.

Covers the store/ref primitives, payload conversion, the ``data_plane``
option on every framework substrate, and the acceptance criteria of the
data-plane work: identical PSA/leaflet results on both planes, and
strictly fewer pickled/moved bytes on the shm plane.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.leaflet import LEAFLET_APPROACHES, leaflet_serial, run_leaflet_finder
from repro.core.psa import psa_serial, run_psa
from repro.experiments.fig8_broadcast import data_plane_rows
from repro.frameworks import make_framework
from repro.frameworks.base import TaskFramework
from repro.frameworks.shm import (
    BlockRef,
    SharedMemoryStore,
    maybe_resolve,
    refs_nbytes,
    resolve_payload,
    share_payload,
)
from repro.frameworks.sparklite.partitioner import split_array_into_partitions
from repro.trajectory import (
    BilayerSpec,
    EnsembleSpec,
    make_bilayer,
    make_clustered_ensemble,
)

FRAMEWORK_NAMES = ("sparklite", "dasklite", "pilot", "mpilite")


@pytest.fixture()
def store():
    s = SharedMemoryStore()
    yield s
    s.cleanup()


@pytest.fixture(scope="module")
def ensemble():
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=6, n_frames=8, n_atoms=16, n_clusters=2, seed=7)
    )


@pytest.fixture(scope="module")
def bilayer():
    positions, _labels = make_bilayer(BilayerSpec(n_atoms=360, seed=11))
    return positions


class TestStoreAndRefs:
    def test_put_resolve_round_trip(self, store):
        array = np.arange(24, dtype=np.float64).reshape(8, 3)
        ref = store.put(array)
        view = ref.resolve()
        assert np.array_equal(view, array)
        assert not view.flags.writeable  # shared views are read-only
        assert ref.nbytes == array.nbytes

    def test_put_deduplicates_same_array(self, store):
        array = np.ones((10, 3))
        assert store.put(array) == store.put(array)
        assert len(store) == 1
        assert store.bytes_shared == array.nbytes

    def test_put_copies_non_contiguous(self, store):
        array = np.arange(60, dtype=np.float64).reshape(10, 6)[:, ::2]
        assert not array.flags.c_contiguous
        assert np.array_equal(store.put(array).resolve(), array)

    def test_put_rejects_empty_and_non_arrays(self, store):
        with pytest.raises(ValueError):
            store.put(np.empty((0, 3)))
        with pytest.raises(TypeError):
            store.put([1, 2, 3])

    def test_cleanup_is_idempotent_and_closes(self, store):
        store.put(np.ones(4))
        store.cleanup()
        store.cleanup()
        assert store.closed
        with pytest.raises(RuntimeError):
            store.put(np.ones(4))

    def test_slice_rows_zero_copy(self, store):
        array = np.arange(36, dtype=np.float64).reshape(12, 3)
        ref = store.put(array)
        sub = ref.slice_rows(3, 9)
        assert sub.segment == ref.segment  # same segment, new offset
        assert np.array_equal(sub.resolve(), array[3:9])
        assert np.array_equal(ref.slice_rows(10, 99).resolve(), array[10:])
        assert ref.slice_rows(5, 5).resolve().shape == (0, 3)

    def test_slice_rows_3d(self, store):
        array = np.arange(48, dtype=np.float64).reshape(4, 4, 3)
        ref = store.put(array)
        assert np.array_equal(ref.slice_rows(1, 3).resolve(), array[1:3])


class TestPayloadConversion:
    def test_share_and_resolve_nested_payload(self, store):
        a = np.ones((5, 3))
        b = np.full((2, 3), 7.0)
        payload = {"rows": [a, b], "meta": ("x", 3), "single": a}
        converted, newly = share_payload(payload, store)
        assert newly == a.nbytes + b.nbytes  # a stored once despite two uses
        assert isinstance(converted["rows"][0], BlockRef)
        assert converted["meta"] == ("x", 3)
        assert refs_nbytes(converted) == 2 * a.nbytes + b.nbytes
        back = resolve_payload(converted)
        assert np.array_equal(back["rows"][0], a)
        assert np.array_equal(back["single"], a)

    def test_non_array_payload_untouched(self, store):
        payload = {"n": 3, "s": "x"}
        converted, newly = share_payload(payload, store)
        assert converted is payload
        assert newly == 0

    def test_maybe_resolve(self, store):
        array = np.ones((4, 3))
        ref = store.put(array)
        assert np.array_equal(maybe_resolve(ref), array)
        assert maybe_resolve("plain") == "plain"

    def test_split_array_into_partitions_refs(self, store):
        array = np.arange(30, dtype=np.float64).reshape(10, 3)
        ref = store.put(array)
        parts = split_array_into_partitions(ref, 3)
        assert [p.shape[0] for p in parts] == [4, 3, 3]
        assert np.array_equal(np.concatenate([p.resolve() for p in parts]), array)
        views = split_array_into_partitions(array, 3)
        assert all(isinstance(v, np.ndarray) for v in views)


class TestFrameworkDataPlane:
    def test_rejects_unknown_plane(self):
        with pytest.raises(ValueError, match="data_plane"):
            TaskFramework(data_plane="carrier-pigeon")

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_psa_identical_across_planes(self, name, ensemble):
        reference = psa_serial(ensemble).values
        for plane in ("pickle", "shm"):
            fw = make_framework(name, executor="threads", workers=2, data_plane=plane)
            matrix, report = run_psa(ensemble, fw, n_tasks=4)
            assert np.allclose(matrix.values, reference)
            assert report.parameters["data_plane"] == plane
            if plane == "shm":
                assert report.metrics.bytes_shared > 0
            fw.close()

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    @pytest.mark.parametrize("approach", sorted(LEAFLET_APPROACHES))
    def test_leaflet_identical_across_planes(self, name, approach, bilayer):
        expected = sorted(len(c) for c in leaflet_serial(bilayer, 15.0).components)
        for plane in ("pickle", "shm"):
            fw = make_framework(name, executor="threads", workers=2, data_plane=plane)
            result, report = run_leaflet_finder(bilayer, 15.0, fw,
                                                approach=approach, n_tasks=6)
            assert sorted(len(c) for c in result.components) == expected
            assert report.parameters["data_plane"] == plane
            fw.close()

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_shm_broadcast_moves_only_refs(self, name, bilayer):
        fw_pickle = make_framework(name, executor="threads", workers=2)
        fw_shm = make_framework(name, executor="threads", workers=2, data_plane="shm")
        handle_pickle = fw_pickle.broadcast(bilayer)
        handle_shm = fw_shm.broadcast(bilayer)
        try:
            assert handle_shm.nbytes < handle_pickle.nbytes
            assert handle_shm.bytes_shared == bilayer.nbytes
            assert fw_shm.metrics.bytes_shared >= bilayer.nbytes
        finally:
            fw_pickle.close()
            fw_shm.close()

    def test_mpilite_shm_collectives(self, bilayer):
        fw = make_framework("mpilite", executor="threads", workers=2,
                            ranks=3, data_plane="shm")

        def rank_main(comm):
            received = comm.bcast(bilayer if comm.rank == 0 else None, root=0)
            chunks = None
            if comm.rank == 0:
                chunks = [bilayer[i::comm.size] for i in range(comm.size)]
            mine = comm.scatter(chunks, root=0)
            return float(received.sum()) + float(mine.sum())

        results = fw.run_spmd(rank_main)
        expected = [float(bilayer.sum()) + float(bilayer[i::3].sum()) for i in range(3)]
        assert results == pytest.approx(expected)
        ctx = fw.last_context
        assert ctx.bytes_shared >= bilayer.nbytes  # arrays served via shm
        assert ctx.bytes_communicated < bilayer.nbytes  # only refs moved
        fw.close()

    def test_dasklite_piecewise_scatter_splits_refs(self, bilayer):
        fw = make_framework("dasklite", executor="threads", workers=2,
                            data_plane="shm")
        scattered = fw.scatter(bilayer, broadcast=False)
        assert len(scattered.pieces) == 2  # one zero-copy chunk per worker
        assert all(isinstance(p, BlockRef) for p in scattered.pieces)
        reassembled = np.concatenate([p.resolve() for p in scattered.pieces])
        assert np.array_equal(reassembled, bilayer)
        assert scattered.nbytes < bilayer.nbytes  # only refs would move
        fw.close()

    def test_pilot_shm_staging(self, bilayer):
        fw = make_framework("pilot", executor="threads", workers=2, data_plane="shm")
        path = fw.stage_data(bilayer)
        assert path.startswith("shm://")
        assert np.array_equal(fw.load_staged(path), bilayer)
        assert fw.metrics.bytes_shared >= bilayer.nbytes
        assert fw.metrics.bytes_staged < bilayer.nbytes  # only the ref staged
        fw.close()

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_planes_report_comparable_payload_bytes(self, name, bilayer):
        """Both planes report would-cross payload bytes on in-process
        executors, with the shm plane strictly smaller (refs vs arrays)."""
        fw_pickle = make_framework(name, executor="threads", workers=2)
        fw_shm = make_framework(name, executor="threads", workers=2, data_plane="shm")
        try:
            _, report_pickle = run_leaflet_finder(bilayer, 15.0, fw_pickle,
                                                  approach="task-2d", n_tasks=6)
            _, report_shm = run_leaflet_finder(bilayer, 15.0, fw_shm,
                                               approach="task-2d", n_tasks=6)
            assert (report_pickle.metrics.bytes_pickled
                    > report_shm.metrics.bytes_pickled > 0)
        finally:
            fw_pickle.close()
            fw_shm.close()

    def test_forced_plane_overrides_and_restores(self, bilayer):
        """An explicit data_plane overrides the framework's configured
        plane for the run, labels the report correctly, and restores."""
        fw = make_framework("dasklite", executor="threads", workers=2,
                            data_plane="shm")
        try:
            _, report = run_leaflet_finder(bilayer, 15.0, fw, approach="task-2d",
                                           data_plane="pickle")
            assert report.parameters["data_plane"] == "pickle"
            assert report.metrics.bytes_shared == 0
            assert fw.data_plane == "shm"
        finally:
            fw.close()

    def test_close_releases_owned_store(self):
        fw = make_framework("dasklite", executor="threads", workers=2,
                            data_plane="shm")
        fw.broadcast(np.ones((50, 3)))
        store = fw.store
        fw.close()
        assert store.closed


class TestAcceptance:
    """The PR's acceptance criteria, executable."""

    def test_shm_executor_matches_process_executor_on_psa(self, ensemble):
        fw_process = TaskFramework(executor="processes", workers=2)
        fw_shm = TaskFramework(executor="shm", workers=2, data_plane="shm")
        try:
            matrix_p, report_p = run_psa(ensemble, fw_process, n_tasks=4)
            matrix_s, report_s = run_psa(ensemble, fw_shm, n_tasks=4)
            assert np.allclose(matrix_p.values, matrix_s.values)
            assert np.allclose(matrix_p.values, psa_serial(ensemble).values)
            # strictly fewer pickled bytes on the shm plane
            assert 0 < report_s.metrics.bytes_pickled < report_p.metrics.bytes_pickled
            assert report_s.metrics.bytes_shared > 0
        finally:
            fw_process.close()
            fw_shm.close()

    def test_fig8_reports_strictly_fewer_moved_bytes(self):
        rows = data_plane_rows(n_atoms=400, workers=2, n_tasks=4)
        assert rows
        system_bytes = 400 * 3 * 8
        for row in rows:
            assert row["bytes_moved_shm"] < row["bytes_moved_pickle"]
            # tasks access the system many times over...
            assert row["bytes_accessed_shm"] >= system_bytes
            # ...but it enters the store exactly once; the rest of the
            # resident bytes are the adopted result blocks, which are
            # bounded by what the tasks actually returned
            assert system_bytes <= row["bytes_resident_shm"] \
                <= system_bytes + row["bytes_shared_results"]
            assert row["bytes_resident_shm"] < row["bytes_accessed_shm"]
            assert row["moved_reduction"] > 1.0

    def test_fig8_result_path_rides_the_plane(self):
        """PR 2 acceptance: result payloads (edge lists) move >=10x fewer
        bytes on the shm plane — only refs return through pickle."""
        rows = data_plane_rows(n_atoms=800, workers=2, n_tasks=4)
        for row in rows:
            assert row["bytes_results_moved_shm"] < row["bytes_results_moved_pickle"]
            assert row["results_moved_reduction"] >= 10.0
            # the edge-list bytes the pickle plane would have moved come
            # back through shared segments instead
            assert row["bytes_shared_results"] > 0
