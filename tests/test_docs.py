"""Executable documentation: run every Python code block in the docs.

The README quickstarts and the architecture walkthrough are part of the
product surface — if they drift from the code they are worse than no
docs.  This module extracts every fenced ```python block from
``README.md`` and ``docs/*.md`` and executes it; blocks within one file
share a namespace (so a later block may build on an earlier import), and
a block preceded by an HTML comment containing ``no-run`` is skipped.

The CI workflow runs this file as the dedicated docs job.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)


def extract_python_blocks(path: Path) -> List[Tuple[int, str, bool]]:
    """Return ``(first_line_number, source, skip)`` for each ```python fence."""
    lines = path.read_text().splitlines()
    blocks: List[Tuple[int, str, bool]] = []
    i = 0
    while i < len(lines):
        if lines[i].strip().startswith("```python"):
            start = i + 1
            j = start
            while j < len(lines) and not lines[j].strip().startswith("```"):
                j += 1
            # a "<!-- no-run -->" comment right above the fence opts out
            k = i - 1
            while k >= 0 and not lines[k].strip():
                k -= 1
            skip = k >= 0 and lines[k].lstrip().startswith("<!--") and "no-run" in lines[k]
            blocks.append((start + 1, "\n".join(lines[start:j]), skip))
            i = j
        i += 1
    return blocks


def test_docs_exist_and_have_executable_examples():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    runnable = [b for f in DOC_FILES for b in extract_python_blocks(f) if not b[2]]
    assert runnable, "the docs must contain executable Python examples"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_doc_code_blocks_execute(doc):
    blocks = extract_python_blocks(doc)
    if not any(not skip for _, _, skip in blocks):
        pytest.skip(f"{doc.name} has no runnable python blocks")
    namespace: dict = {"__name__": f"docs_{doc.stem}"}
    for line, source, skip in blocks:
        if skip:
            continue
        code = compile(source, f"{doc.name}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{doc.name} block at line {line} failed: {exc!r}")
