"""Tests for the tiered result plane: spill-to-disk and segment cleanup.

Covers the PR's acceptance criteria for the spill tier: a store filled
past its watermark moves least-recently-used blocks to memory-mapped
files, refs keep resolving bit-identically across the tier change,
``bytes_spilled`` is reported, a PSA run sized beyond a configured store
cap completes with bit-identical output — and no ``/dev/shm`` segments
leak across runs (the worker-crash cleanup fix).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.psa import psa_serial, run_psa
from repro.frameworks import make_framework
from repro.frameworks.executors import SharedMemoryExecutor
from repro.frameworks.shm import (
    BlockRef,
    FileBackedStore,
    SharedMemoryStore,
    publish_payload,
    adopt_payload,
)
from repro.trajectory import EnsembleSpec, make_clustered_ensemble


def shm_entries():
    """Current /dev/shm segment names (empty set if the dir is absent)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux fallback: nothing to compare
        return set()


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(42)
    return [rng.random((50, 10)) for _ in range(6)]  # 4000 bytes each


class TestSpillToDisk:
    def test_fill_past_watermark_spills_lru_first(self, arrays):
        store = SharedMemoryStore(capacity_bytes=10_000)
        try:
            refs = [store.put(a) for a in arrays]
            # 24k put into a 10k store: at least 4 blocks must have spilled
            assert store.bytes_spilled >= 4 * 4000
            assert store.bytes_resident <= 10_000
            # LRU: the most recently put block is still resident
            assert refs[-1].segment in store._segments
            # the first block went to disk, as a .blk file in the spill dir
            assert os.path.exists(
                os.path.join(store.spill_dir, refs[0].segment + ".blk"))
        finally:
            store.cleanup()

    def test_spilled_refs_resolve_bit_identical(self, arrays):
        store = SharedMemoryStore(capacity_bytes=5_000)
        try:
            refs = [store.put(a) for a in arrays]
            assert store.bytes_spilled > 0
            for array, ref in zip(arrays, refs):
                view = ref.resolve()
                assert np.array_equal(view, array)  # bit-identical
                assert not view.flags.writeable
        finally:
            store.cleanup()

    def test_slice_rows_survives_spill(self, arrays):
        store = SharedMemoryStore(capacity_bytes=4_000)
        try:
            ref = store.put(arrays[0])
            sub = ref.slice_rows(10, 30)
            store.put(arrays[1])  # pushes the first block to disk
            assert ref.segment not in store._segments
            assert np.array_equal(sub.resolve(), arrays[0][10:30])
        finally:
            store.cleanup()

    def test_get_refreshes_lru_position(self, arrays):
        store = SharedMemoryStore(capacity_bytes=9_000)  # two blocks fit
        try:
            ref0 = store.put(arrays[0])
            store.put(arrays[1])
            store.get(ref0)           # touch: block 0 becomes most recent
            store.put(arrays[2])      # evicts block 1, not block 0
            assert ref0.segment in store._segments
        finally:
            store.cleanup()

    def test_size_aware_eviction_prefers_large_cold_blocks(self):
        """One cold oversized block spills before many small cold ones."""
        rng = np.random.default_rng(7)
        small = [rng.random((25, 5)) for _ in range(2)]   # 1000 bytes each
        big = rng.random((200, 5))                        # 8000 bytes
        store = SharedMemoryStore(capacity_bytes=10_000)
        try:
            small_refs = [store.put(a) for a in small]
            big_ref = store.put(big)                      # resident: 10k exactly
            assert store.bytes_spilled == 0
            trigger = store.put(rng.random((25, 5)))      # 11k > 10k: evict
            # the big block is the largest cold segment -> it spills alone,
            # every small block (older ones included) stays resident
            assert big_ref.segment not in store._segments
            assert store.bytes_spilled == big.nbytes
            for ref in small_refs + [trigger]:
                assert ref.segment in store._segments
            assert np.array_equal(big_ref.resolve(), big)  # via the file tier
        finally:
            store.cleanup()

    def test_size_aware_eviction_protects_most_recent(self):
        """Equal sizes reduce to classic LRU; the hottest block never spills."""
        rng = np.random.default_rng(8)
        arrays = [rng.random((50, 10)) for _ in range(4)]  # 4000 bytes each
        store = SharedMemoryStore(capacity_bytes=9_000)
        try:
            ref0 = store.put(arrays[0])
            store.put(arrays[1])
            store.get(ref0)                   # block 0 is now the hottest
            ref2 = store.put(arrays[2])       # evicts block 1 (cold), not 0
            assert ref0.segment in store._segments
            assert ref2.segment in store._segments
        finally:
            store.cleanup()

    def test_adopted_segments_spill_too(self, arrays):
        published, _ = publish_payload([arrays[0], arrays[1]])
        store = SharedMemoryStore(capacity_bytes=4_000)
        try:
            views = adopt_payload(published, store)
            assert store.bytes_adopted >= 8_000
            assert store.bytes_spilled > 0  # adoption ran past the watermark
            for array, view in zip(arrays, views):
                assert np.array_equal(view, array)
        finally:
            store.cleanup()

    def test_cleanup_removes_spill_files(self, arrays):
        store = SharedMemoryStore(capacity_bytes=4_000)
        refs = [store.put(a) for a in arrays[:3]]
        spill_dir = store.spill_dir
        assert os.listdir(spill_dir)
        store.cleanup()
        assert not os.path.exists(spill_dir)  # files and owned dir removed
        del refs

    def test_zero_capacity_goes_straight_to_disk(self, arrays):
        store = SharedMemoryStore(capacity_bytes=0)
        try:
            ref = store.put(arrays[0])
            assert store.bytes_resident == 0
            assert store.bytes_spilled == arrays[0].nbytes
            assert np.array_equal(ref.resolve(), arrays[0])
        finally:
            store.cleanup()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryStore(capacity_bytes=-1)


class TestFileBackedStore:
    def test_put_resolve_round_trip(self, arrays):
        store = FileBackedStore()
        try:
            ref = store.put(arrays[0])
            assert isinstance(ref, BlockRef)
            view = store.get(ref)
            assert np.array_equal(view, arrays[0])
            assert not view.flags.writeable
            assert ref in store and len(store) == 1
        finally:
            store.cleanup()

    def test_dedup_and_rejects(self, arrays):
        store = FileBackedStore()
        try:
            assert store.put(arrays[0]) == store.put(arrays[0])
            assert len(store) == 1
            with pytest.raises(ValueError):
                store.put(np.empty((0, 3)))
            with pytest.raises(TypeError):
                store.put([1, 2, 3])
        finally:
            store.cleanup()

    def test_cleanup_removes_directory(self, arrays):
        store = FileBackedStore()
        store.put(arrays[0])
        directory = store.directory
        store.cleanup()
        assert store.closed
        assert not os.path.exists(directory)
        with pytest.raises(RuntimeError):
            store.put(arrays[0])


class TestMetricsAndAcceptance:
    def test_psa_beyond_store_cap_completes_bit_identical(self):
        """PR 2 acceptance: a PSA run sized beyond the configured store
        cap completes via spill with bit-identical output."""
        ensemble = make_clustered_ensemble(
            EnsembleSpec(n_trajectories=8, n_frames=16, n_atoms=64, seed=3))
        total = sum(t.as_array().nbytes for t in ensemble)
        reference = psa_serial(ensemble).values
        fw = make_framework("dasklite", executor="threads", workers=2,
                            data_plane="shm", store_capacity_bytes=total // 4)
        try:
            matrix, report = run_psa(ensemble, fw, n_tasks=8)
            assert np.array_equal(matrix.values, reference)  # bit-identical
            assert report.metrics.bytes_spilled > 0
            assert fw.store.bytes_resident <= total // 4
            assert report.metrics.as_dict()["bytes_spilled"] > 0
        finally:
            fw.close()

    def test_shm_executor_with_cap_spills_results(self):
        """Cross-process: worker-published result blocks spill once the
        driver store runs past its watermark, and still round-trip."""
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2, store_capacity_bytes=2_000)
        try:
            items = [np.full((30, 10), i, dtype=np.float64) for i in range(4)]
            results = ex.map_tasks(_double, items)
            for i, out in enumerate(results):
                assert np.array_equal(out, items[i] * 2)
            assert ex.store.bytes_spilled > 0
            assert ex.total_bytes_results_shared == 4 * 30 * 10 * 8
            assert 0 < ex.total_bytes_results_pickled < ex.total_bytes_results_shared
        finally:
            ex.shutdown()
        assert shm_entries() <= before  # nothing leaked


def _double(array):
    return np.asarray(array) * 2


class TestNoSegmentLeaks:
    """The worker-crash cleanup fix: /dev/shm stays clean across runs."""

    def test_executor_run_leaves_no_segments(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2)
        ex.map_tasks(_double, [np.ones((40, 3)) for _ in range(4)])
        ex.shutdown()
        assert shm_entries() <= before

    def test_failing_tasks_leave_no_segments(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2)
        with pytest.raises(ValueError, match="boom"):
            ex.map_tasks(_explode, [np.ones((40, 3)) for _ in range(4)])
        ex.shutdown()
        assert shm_entries() <= before

    def test_framework_shm_run_leaves_no_segments(self):
        before = shm_entries()
        ensemble = make_clustered_ensemble(
            EnsembleSpec(n_trajectories=4, n_frames=8, n_atoms=16, seed=5))
        fw = make_framework("sparklite", executor="threads", workers=2,
                            data_plane="shm")
        run_psa(ensemble, fw, n_tasks=2)
        fw.close()
        assert shm_entries() <= before

    def test_store_registers_exit_finalizers(self):
        """cleanup is wired to both atexit and the multiprocessing
        finalizer registry (workers skip atexit), and cleanup cancels
        them again."""
        import multiprocessing.util as mp_util

        store = SharedMemoryStore()
        assert store._finalizer in mp_util._finalizer_registry.values()
        store.cleanup()
        assert store._finalizer not in mp_util._finalizer_registry.values()


def _explode(array):
    raise ValueError("boom")
