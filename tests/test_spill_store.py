"""Tests for the tiered result plane: spill-to-disk and segment cleanup.

Covers the PR's acceptance criteria for the spill tier: a store filled
past its watermark moves least-recently-used blocks to memory-mapped
files, refs keep resolving bit-identically across the tier change,
``bytes_spilled`` is reported, a PSA run sized beyond a configured store
cap completes with bit-identical output — and no ``/dev/shm`` segments
leak across runs (the worker-crash cleanup fix).

The write-behind pipeline (PR 4) is covered by ``TestWriteBehind``:
enqueued/spilling blocks stay readable from shared memory, ``flush_spill``
is a real barrier, backpressure bounds the queue, concurrent
put/resolve races stay bit-identical, ``spill_async=False`` is an exact
behavioural twin, and closing (or crashing a worker) with a non-empty
queue leaks neither ``/dev/shm`` names nor spill files.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.psa import psa_serial, run_psa
from repro.frameworks import make_framework
from repro.frameworks.executors import SharedMemoryExecutor
from repro.frameworks.shm import (
    BlockRef,
    FileBackedStore,
    SharedMemoryStore,
    publish_payload,
    adopt_payload,
)
from repro.trajectory import EnsembleSpec, make_clustered_ensemble


def shm_entries():
    """Current /dev/shm segment names (empty set if the dir is absent)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux fallback: nothing to compare
        return set()


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(42)
    return [rng.random((50, 10)) for _ in range(6)]  # 4000 bytes each


class TestSpillToDisk:
    def test_fill_past_watermark_spills_lru_first(self, arrays):
        store = SharedMemoryStore(capacity_bytes=10_000)
        try:
            refs = [store.put(a) for a in arrays]
            # 24k put into a 10k store: at least 4 blocks must have spilled
            assert store.bytes_spilled >= 4 * 4000
            assert store.bytes_resident <= 10_000
            # LRU: the most recently put block is still resident
            assert refs[-1].segment in store._segments
            # after the write-behind barrier the first block is on disk,
            # as a .blk file in the spill dir
            store.flush_spill()
            assert os.path.exists(
                os.path.join(store.spill_dir, refs[0].segment + ".blk"))
        finally:
            store.cleanup()

    def test_spilled_refs_resolve_bit_identical(self, arrays):
        store = SharedMemoryStore(capacity_bytes=5_000)
        try:
            refs = [store.put(a) for a in arrays]
            assert store.bytes_spilled > 0
            for array, ref in zip(arrays, refs):
                view = ref.resolve()
                assert np.array_equal(view, array)  # bit-identical
                assert not view.flags.writeable
        finally:
            store.cleanup()

    def test_slice_rows_survives_spill(self, arrays):
        store = SharedMemoryStore(capacity_bytes=4_000)
        try:
            ref = store.put(arrays[0])
            sub = ref.slice_rows(10, 30)
            store.put(arrays[1])  # pushes the first block to disk
            assert ref.segment not in store._segments
            assert np.array_equal(sub.resolve(), arrays[0][10:30])
        finally:
            store.cleanup()

    def test_get_refreshes_lru_position(self, arrays):
        store = SharedMemoryStore(capacity_bytes=9_000)  # two blocks fit
        try:
            ref0 = store.put(arrays[0])
            store.put(arrays[1])
            store.get(ref0)           # touch: block 0 becomes most recent
            store.put(arrays[2])      # evicts block 1, not block 0
            assert ref0.segment in store._segments
        finally:
            store.cleanup()

    def test_size_aware_eviction_prefers_large_cold_blocks(self):
        """One cold oversized block spills before many small cold ones."""
        rng = np.random.default_rng(7)
        small = [rng.random((25, 5)) for _ in range(2)]   # 1000 bytes each
        big = rng.random((200, 5))                        # 8000 bytes
        store = SharedMemoryStore(capacity_bytes=10_000)
        try:
            small_refs = [store.put(a) for a in small]
            big_ref = store.put(big)                      # resident: 10k exactly
            assert store.bytes_spilled == 0
            trigger = store.put(rng.random((25, 5)))      # 11k > 10k: evict
            # the big block is the largest cold segment -> it spills alone,
            # every small block (older ones included) stays resident
            assert big_ref.segment not in store._segments
            assert store.bytes_spilled == big.nbytes
            for ref in small_refs + [trigger]:
                assert ref.segment in store._segments
            assert np.array_equal(big_ref.resolve(), big)  # via the file tier
        finally:
            store.cleanup()

    def test_size_aware_eviction_protects_most_recent(self):
        """Equal sizes reduce to classic LRU; the hottest block never spills."""
        rng = np.random.default_rng(8)
        arrays = [rng.random((50, 10)) for _ in range(4)]  # 4000 bytes each
        store = SharedMemoryStore(capacity_bytes=9_000)
        try:
            ref0 = store.put(arrays[0])
            store.put(arrays[1])
            store.get(ref0)                   # block 0 is now the hottest
            ref2 = store.put(arrays[2])       # evicts block 1 (cold), not 0
            assert ref0.segment in store._segments
            assert ref2.segment in store._segments
        finally:
            store.cleanup()

    def test_adopted_segments_spill_too(self, arrays):
        published, _ = publish_payload([arrays[0], arrays[1]])
        store = SharedMemoryStore(capacity_bytes=4_000)
        try:
            views = adopt_payload(published, store)
            assert store.bytes_adopted >= 8_000
            assert store.bytes_spilled > 0  # adoption ran past the watermark
            for array, view in zip(arrays, views):
                assert np.array_equal(view, array)
        finally:
            store.cleanup()

    def test_cleanup_removes_spill_files(self, arrays):
        store = SharedMemoryStore(capacity_bytes=4_000)
        refs = [store.put(a) for a in arrays[:3]]
        store.flush_spill()
        spill_dir = store.spill_dir
        assert os.listdir(spill_dir)
        store.cleanup()
        assert not os.path.exists(spill_dir)  # files and owned dir removed
        del refs

    def test_zero_capacity_goes_straight_to_disk(self, arrays):
        store = SharedMemoryStore(capacity_bytes=0)
        try:
            ref = store.put(arrays[0])
            assert store.bytes_resident == 0
            assert store.bytes_spilled == arrays[0].nbytes
            assert np.array_equal(ref.resolve(), arrays[0])
        finally:
            store.cleanup()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryStore(capacity_bytes=-1)

    def test_bad_queue_depth_rejected(self):
        with pytest.raises(ValueError):
            SharedMemoryStore(capacity_bytes=100, spill_queue_depth=0)


class TestWriteBehind:
    """The async spill pipeline: enqueue/spilling states, barrier, races."""

    def test_flush_spill_is_a_noop_without_pending_work(self, arrays):
        store = SharedMemoryStore()  # no capacity: nothing ever spills
        try:
            store.put(arrays[0])
            store.flush_spill()
        finally:
            store.cleanup()

    def test_spilling_blocks_resolve_from_shm_until_demoted(self, arrays):
        """In the enqueued/spilling states the shm mapping still serves
        reads; after the barrier the same ref resolves via the file."""
        store = SharedMemoryStore(capacity_bytes=0, spill_queue_depth=1)
        try:
            ref = store.put(arrays[0])
            # whichever state the block is in right now, reads are exact
            assert np.array_equal(ref.resolve(), arrays[0])
            store.flush_spill()
            assert ref.segment in store._spilled
            assert os.path.exists(
                os.path.join(store.spill_dir, ref.segment + ".blk"))
            assert np.array_equal(ref.resolve(), arrays[0])
        finally:
            store.cleanup()

    def test_async_matches_sync_bit_for_bit(self, arrays):
        """spill_async=False equivalence: same evictions, same counters,
        same bytes back — only where the write time lands differs."""
        sync = SharedMemoryStore(capacity_bytes=8_000, spill_async=False)
        behind = SharedMemoryStore(capacity_bytes=8_000, spill_async=True)
        try:
            sync_refs = [sync.put(a) for a in arrays]
            async_refs = [behind.put(a) for a in arrays]
            behind.flush_spill()
            assert sync.bytes_spilled == behind.bytes_spilled > 0
            assert sync.bytes_resident == behind.bytes_resident
            assert set(sync._spilled) != set()  # both really hit the disk tier
            for array, s_ref, a_ref in zip(arrays, sync_refs, async_refs):
                assert np.array_equal(s_ref.resolve(), array)
                assert np.array_equal(a_ref.resolve(), array)
            # the split: sync stalls the putter, write-behind hides it
            assert sync.spill_wait_seconds > 0.0
            assert sync.spill_hidden_seconds == 0.0
            assert behind.spill_hidden_seconds > 0.0
        finally:
            sync.cleanup()
            behind.cleanup()

    def test_backpressure_bounds_the_queue(self):
        """A depth-1 queue forces eviction to wait for the writer; the
        store still ends up exactly at its watermark."""
        rng = np.random.default_rng(21)
        arrays = [rng.random((500, 100)) for _ in range(8)]  # 400k each
        store = SharedMemoryStore(capacity_bytes=400_000, spill_queue_depth=1)
        try:
            refs = [store.put(a) for a in arrays]
            store.flush_spill()
            assert store.bytes_resident <= 400_000
            assert store.bytes_spilled == 7 * arrays[0].nbytes
            for array, ref in zip(arrays, refs):
                assert np.array_equal(ref.resolve(), array)
        finally:
            store.cleanup()

    def test_concurrent_put_resolve_during_spill(self):
        """Putters and resolvers race the spill writer; every read is
        bit-identical whichever tier serves it."""
        rng = np.random.default_rng(12)
        arrays = [rng.random((100, 20)) for _ in range(32)]  # 16k each
        store = SharedMemoryStore(capacity_bytes=48_000, spill_queue_depth=2)
        refs: dict = {}
        failures: list = []

        def putter(indices):
            try:
                for i in indices:
                    refs[i] = store.put(arrays[i])
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        def resolver():
            try:
                for _ in range(50):
                    for i, ref in list(refs.items()):
                        if not np.array_equal(ref.resolve(), arrays[i]):
                            failures.append(f"mismatch on block {i}")
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        import threading
        threads = [threading.Thread(target=putter, args=(range(0, 32, 2),)),
                   threading.Thread(target=putter, args=(range(1, 32, 2),)),
                   threading.Thread(target=resolver),
                   threading.Thread(target=resolver)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not failures
            store.flush_spill()
            for i, ref in refs.items():
                assert np.array_equal(ref.resolve(), arrays[i])
        finally:
            store.cleanup()

    def test_adopt_while_block_is_spilling(self, arrays):
        """Adopting a ref whose segment is mid-spill neither duplicates
        ownership nor breaks resolution."""
        store = SharedMemoryStore(capacity_bytes=0, spill_queue_depth=1)
        try:
            ref = store.put(arrays[0])  # immediately enqueued (capacity 0)
            out = store.adopt(ref)
            assert out.spill_dir == store.spill_dir
            store.flush_spill()
            assert np.array_equal(out.resolve(), arrays[0])
        finally:
            store.cleanup()

    def test_close_with_nonempty_queue_leaks_nothing(self):
        """flush-on-close: cleanup with blocks still enqueued/in flight
        leaves neither /dev/shm names nor spill files behind."""
        before = shm_entries()
        rng = np.random.default_rng(3)
        store = SharedMemoryStore(capacity_bytes=0, spill_queue_depth=1)
        spill_dir = store.spill_dir
        for _ in range(6):
            store.put(rng.random((200, 50)))
        store.cleanup()  # no flush first: the queue is likely non-empty
        assert shm_entries() <= before
        assert not os.path.exists(spill_dir)

    def test_put_after_close_still_raises(self, arrays):
        store = SharedMemoryStore(capacity_bytes=1_000)
        store.cleanup()
        with pytest.raises(RuntimeError):
            store.put(arrays[0])


class TestFileBackedStore:
    def test_put_resolve_round_trip(self, arrays):
        store = FileBackedStore()
        try:
            ref = store.put(arrays[0])
            assert isinstance(ref, BlockRef)
            view = store.get(ref)
            assert np.array_equal(view, arrays[0])
            assert not view.flags.writeable
            assert ref in store and len(store) == 1
        finally:
            store.cleanup()

    def test_dedup_and_rejects(self, arrays):
        store = FileBackedStore()
        try:
            assert store.put(arrays[0]) == store.put(arrays[0])
            assert len(store) == 1
            with pytest.raises(ValueError):
                store.put(np.empty((0, 3)))
            with pytest.raises(TypeError):
                store.put([1, 2, 3])
        finally:
            store.cleanup()

    def test_cleanup_removes_directory(self, arrays):
        store = FileBackedStore()
        store.put(arrays[0])
        directory = store.directory
        store.cleanup()
        assert store.closed
        assert not os.path.exists(directory)
        with pytest.raises(RuntimeError):
            store.put(arrays[0])


class TestMetricsAndAcceptance:
    def test_psa_spill_async_ablation_bit_identical(self):
        """PR 4 acceptance: the write-behind pipeline changes where the
        spill time lands, never the results."""
        ensemble = make_clustered_ensemble(
            EnsembleSpec(n_trajectories=8, n_frames=16, n_atoms=64, seed=3))
        total = sum(t.as_array().nbytes for t in ensemble)
        reference = psa_serial(ensemble).values
        reports = {}
        for spill_async in (False, True):
            fw = make_framework("dasklite", executor="threads", workers=2,
                                data_plane="shm",
                                store_capacity_bytes=total // 4,
                                spill_async=spill_async)
            try:
                matrix, report = run_psa(ensemble, fw, n_tasks=8)
                assert np.array_equal(matrix.values, reference)  # bit-identical
                assert report.metrics.bytes_spilled > 0
                reports[spill_async] = report
            finally:
                fw.close()
        sync_metrics = reports[False].metrics
        async_metrics = reports[True].metrics
        # the new split reaches the run report on both paths
        assert sync_metrics.spill_wait_seconds > 0.0
        assert sync_metrics.spill_hidden_seconds == 0.0
        assert async_metrics.spill_hidden_seconds >= 0.0
        assert "spill_wait_seconds" in async_metrics.as_dict()
        assert "spill_hidden_seconds" in async_metrics.as_dict()

    def test_shm_executor_attributes_per_task_spill_stall(self):
        """Synchronous spilling during payload staging lands on the
        staged task's TaskTiming and rolls up through the executor
        totals into RunMetrics — even on a pickle-plane framework."""
        from repro.frameworks.base import TaskFramework

        ex = SharedMemoryExecutor(workers=2, store_capacity_bytes=2_000,
                                  spill_async=False)
        fw = TaskFramework(executor=ex)  # data_plane defaults to "pickle"
        try:
            items = [np.full((30, 10), i, dtype=np.float64) for i in range(4)]
            results = fw.map_tasks(_double, items)
            for i, out in enumerate(results):
                assert np.array_equal(out, items[i] * 2)
            assert any(t.spill_wait_seconds > 0.0 for t in ex.timings)
            assert ex.total_spill_wait_seconds > 0.0
            assert ex.total_spill_hidden_seconds == 0.0  # synchronous store
            assert fw.metrics.spill_wait_seconds >= ex.total_spill_wait_seconds
        finally:
            fw.close()

    def test_cleanup_racing_concurrent_puts_leaks_nothing(self):
        """Closing a store out from under putter threads (including ones
        parked on spill backpressure) neither crashes nor leaks."""
        import threading

        before = shm_entries()
        rng = np.random.default_rng(17)
        arrays = [rng.random((200, 50)) for _ in range(16)]  # 80k each
        store = SharedMemoryStore(capacity_bytes=80_000, spill_queue_depth=1)
        spill_dir = store.spill_dir
        failures: list = []

        def hammer(sub):
            try:
                for i in sub:
                    store.put(arrays[i], dedup=False)
            except RuntimeError:
                pass  # closed under us: the documented outcome
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(range(0, 16, 2),)),
                   threading.Thread(target=hammer, args=(range(1, 16, 2),))]
        for t in threads:
            t.start()
        store.cleanup()  # race the putters deliberately
        for t in threads:
            t.join()
        assert not failures
        assert shm_entries() <= before
        assert not os.path.exists(spill_dir)

    def test_psa_beyond_store_cap_completes_bit_identical(self):
        """PR 2 acceptance: a PSA run sized beyond the configured store
        cap completes via spill with bit-identical output."""
        ensemble = make_clustered_ensemble(
            EnsembleSpec(n_trajectories=8, n_frames=16, n_atoms=64, seed=3))
        total = sum(t.as_array().nbytes for t in ensemble)
        reference = psa_serial(ensemble).values
        fw = make_framework("dasklite", executor="threads", workers=2,
                            data_plane="shm", store_capacity_bytes=total // 4)
        try:
            matrix, report = run_psa(ensemble, fw, n_tasks=8)
            assert np.array_equal(matrix.values, reference)  # bit-identical
            assert report.metrics.bytes_spilled > 0
            assert fw.store.bytes_resident <= total // 4
            assert report.metrics.as_dict()["bytes_spilled"] > 0
        finally:
            fw.close()

    def test_shm_executor_with_cap_spills_results(self):
        """Cross-process: worker-published result blocks spill once the
        driver store runs past its watermark, and still round-trip."""
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2, store_capacity_bytes=2_000)
        try:
            items = [np.full((30, 10), i, dtype=np.float64) for i in range(4)]
            results = ex.map_tasks(_double, items)
            for i, out in enumerate(results):
                assert np.array_equal(out, items[i] * 2)
            assert ex.store.bytes_spilled > 0
            assert ex.total_bytes_results_shared == 4 * 30 * 10 * 8
            assert 0 < ex.total_bytes_results_pickled < ex.total_bytes_results_shared
        finally:
            ex.shutdown()
        assert shm_entries() <= before  # nothing leaked


def _double(array):
    return np.asarray(array) * 2


class TestNoSegmentLeaks:
    """The worker-crash cleanup fix: /dev/shm stays clean across runs."""

    def test_executor_run_leaves_no_segments(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2)
        ex.map_tasks(_double, [np.ones((40, 3)) for _ in range(4)])
        ex.shutdown()
        assert shm_entries() <= before

    def test_failing_tasks_leave_no_segments(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=2)
        with pytest.raises(ValueError, match="boom"):
            ex.map_tasks(_explode, [np.ones((40, 3)) for _ in range(4)])
        ex.shutdown()
        assert shm_entries() <= before

    def test_framework_shm_run_leaves_no_segments(self):
        before = shm_entries()
        ensemble = make_clustered_ensemble(
            EnsembleSpec(n_trajectories=4, n_frames=8, n_atoms=16, seed=5))
        fw = make_framework("sparklite", executor="threads", workers=2,
                            data_plane="shm")
        run_psa(ensemble, fw, n_tasks=2)
        fw.close()
        assert shm_entries() <= before

    def test_worker_crash_with_nonempty_spill_queue_leaks_nothing(self, tmp_path):
        """A pool worker that dies mid-pipeline — store created, blocks
        enqueued for write-behind, task raises — must leave /dev/shm and
        the spill directory clean (the worker-exit finalizer drains)."""
        before = shm_entries()
        spill_dir = str(tmp_path / "crash-spill")
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=1) as pool:
            with pytest.raises(ValueError, match="crashed with a non-empty"):
                pool.submit(_crash_with_pending_spills, spill_dir).result()
        # the pool has joined its workers: finalizers have run
        assert shm_entries() <= before
        leftovers = os.listdir(spill_dir) if os.path.exists(spill_dir) else []
        assert leftovers == []

    def test_store_registers_exit_finalizers(self):
        """cleanup is wired to both atexit and the multiprocessing
        finalizer registry (workers skip atexit), and cleanup cancels
        them again."""
        import multiprocessing.util as mp_util

        store = SharedMemoryStore()
        assert store._finalizer in mp_util._finalizer_registry.values()
        store.cleanup()
        assert store._finalizer not in mp_util._finalizer_registry.values()


def _explode(array):
    raise ValueError("boom")


def _crash_with_pending_spills(spill_dir):
    """Worker-side: build a write-behind store, keep its queue busy, die."""
    rng = np.random.default_rng(0)
    store = SharedMemoryStore(capacity_bytes=0, spill_dir=spill_dir,
                              spill_async=True, spill_queue_depth=1)
    for _ in range(8):
        store.put(rng.random((200, 64)), dedup=False)
    raise ValueError("crashed with a non-empty spill queue")
