"""Property-based equivalence suite for the vectorized kernel engine.

Every vectorized kernel must match its executable reference *exactly* on
randomized inputs: the flat-array BallTree and the sorted-cell grid
against the brute-force scan (bit-identical index sets and edge arrays),
the min-label-propagation connected components against the union-find
loop and networkx, the vectorized partial-component merge against the
dict/union-find merge, and the blockwise early-break Hausdorff against
the literal Taha & Hanbury scan (equal floats, not approximately equal).
Degenerate cases — coincident points, empty edge lists, single-frame
trajectories, singleton partials — are exercised explicitly.
"""

import numpy as np
import pytest

from repro.analysis.engine import (
    KERNEL_METHODS,
    get_kernel_method,
    resolve_kernel_method,
    set_kernel_method,
    use_kernel_method,
)
from repro.analysis.graph import (
    connected_components,
    connected_components_networkx,
    label_components,
    merge_component_sets,
)
from repro.analysis.hausdorff import hausdorff, hausdorff_earlybreak
from repro.analysis.neighbors import (
    BallTree,
    GridNeighborSearch,
    brute_force_radius,
    brute_force_radius_pairs,
    radius_edges,
)
from repro.analysis.rmsd import kabsch_rmsd, rmsd_trajectory


def random_cloud(rng, kind):
    """A point cloud of the named flavour (uniform, clustered, degenerate)."""
    n = int(rng.integers(1, 150))
    if kind == "uniform":
        return rng.uniform(-20.0, 20.0, size=(n, 3))
    if kind == "clustered":
        centers = rng.uniform(-30.0, 30.0, size=(max(1, n // 20), 3))
        return centers[rng.integers(0, len(centers), size=n)] + rng.normal(scale=0.8, size=(n, 3))
    if kind == "coincident":
        # many exactly coincident points plus a few distinct ones
        base = rng.uniform(-5.0, 5.0, size=(max(1, n // 10), 3))
        return base[rng.integers(0, len(base), size=n)]
    if kind == "planar":
        cloud = rng.uniform(-20.0, 20.0, size=(n, 3))
        cloud[:, 2] = 0.0
        return cloud
    raise AssertionError(kind)


CLOUD_KINDS = ("uniform", "clustered", "coincident", "planar")


class TestEngineSelection:
    def test_default_is_vectorized(self):
        assert get_kernel_method() == "vectorized"
        assert resolve_kernel_method(None) == "vectorized"

    def test_context_manager_restores(self):
        with use_kernel_method("reference"):
            assert get_kernel_method() == "reference"
            assert resolve_kernel_method(None) == "reference"
        assert get_kernel_method() == "vectorized"

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_kernel_method("reference"):
                raise RuntimeError("boom")
        assert get_kernel_method() == "vectorized"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            set_kernel_method("numba")
        with pytest.raises(ValueError):
            resolve_kernel_method("gpu")
        assert set(KERNEL_METHODS) == {"reference", "vectorized"}


class TestNeighborSearchEquivalence:
    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_searchers_match_brute_force_bitwise(self, kind, seed):
        rng = np.random.default_rng(100 * seed + hash(kind) % 97)
        points = random_cloud(rng, kind)
        queries = random_cloud(rng, kind)[: int(rng.integers(1, 40))]
        radius = float(rng.uniform(0.5, 12.0))
        expected = brute_force_radius(points, queries, radius)
        for searcher in (BallTree(points, leaf_size=int(rng.integers(1, 20))),
                         GridNeighborSearch(points, cell_size=float(rng.uniform(0.5, 8.0)))):
            got = searcher.query_radius(queries, radius)
            assert len(got) == len(expected)
            for e, g in zip(expected, got):
                assert np.array_equal(e, g)     # same ids, same (sorted) order

    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    @pytest.mark.parametrize("seed", [3, 4])
    def test_flat_pairs_match_list_view(self, kind, seed):
        rng = np.random.default_rng(500 + seed + hash(kind) % 89)
        points = random_cloud(rng, kind)
        queries = points[: max(1, points.shape[0] // 3)]
        radius = float(rng.uniform(0.5, 10.0))
        bq, bp = brute_force_radius_pairs(points, queries, radius)
        for searcher in (BallTree(points, leaf_size=7),
                         GridNeighborSearch(points, cell_size=radius)):
            q, p = searcher.query_radius_pairs(queries, radius)
            assert np.array_equal(q, bq)
            assert np.array_equal(p, bp)

    @pytest.mark.parametrize("seed", range(6))
    def test_radius_edges_bit_identical_across_methods(self, seed):
        rng = np.random.default_rng(900 + seed)
        points = random_cloud(rng, CLOUD_KINDS[seed % len(CLOUD_KINDS)])
        cutoff = float(rng.uniform(0.5, 10.0))
        brute = radius_edges(points, cutoff, method="brute")
        for method in ("balltree", "grid"):
            edges = radius_edges(points, cutoff, method=method)
            assert edges.dtype == brute.dtype
            assert np.array_equal(edges, brute)   # same pairs in the same order

    @pytest.mark.parametrize("seed", range(4))
    def test_radius_edges_query_subset(self, seed):
        rng = np.random.default_rng(1300 + seed)
        points = random_cloud(rng, "clustered")
        cutoff = float(rng.uniform(1.0, 8.0))
        subset = rng.choice(points.shape[0], size=max(1, points.shape[0] // 4),
                            replace=False)
        brute = radius_edges(points, cutoff, query_indices=subset, method="brute")
        for method in ("balltree", "grid"):
            assert np.array_equal(
                radius_edges(points, cutoff, query_indices=subset, method=method), brute)

    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    def test_count_within_matches_query_radius(self, kind):
        rng = np.random.default_rng(hash(kind) % 1000)
        points = random_cloud(rng, kind)
        queries = random_cloud(rng, kind)[:25]
        radius = float(rng.uniform(0.5, 15.0))
        expected = np.array([len(hits) for hits in brute_force_radius(points, queries, radius)])
        tree = BallTree(points, leaf_size=5)
        assert np.array_equal(tree.count_within(queries, radius), expected)
        grid = GridNeighborSearch(points, cell_size=radius)
        assert np.array_equal(grid.count_within(queries, radius), expected)

    def test_empty_structures(self):
        empty = np.empty((0, 3))
        assert BallTree(empty).query_radius(np.zeros((2, 3)), 1.0)[0].size == 0
        assert BallTree(empty).count_within(np.zeros((2, 3)), 1.0).tolist() == [0, 0]
        i, j = GridNeighborSearch(np.zeros((1, 3)), 1.0).self_join_pairs(1.0)
        assert i.size == 0 and j.size == 0
        assert radius_edges(np.zeros((1, 3)), 5.0).shape == (0, 2)

    def test_all_coincident_points(self):
        points = np.ones((60, 3))
        tree = BallTree(points, leaf_size=4)
        assert tree.query_radius(np.ones((1, 3)), 0.5)[0].size == 60
        assert tree.count_within(np.ones((1, 3)), 0.5)[0] == 60
        edges = radius_edges(points, 0.5, method="grid")
        assert edges.shape[0] == 60 * 59 // 2
        assert np.array_equal(edges, radius_edges(points, 0.5, method="brute"))


class TestGridSubsetJoinEquivalence:
    """The ``query_indices``-aware subset join of :class:`GridNeighborSearch`.

    Large query subsets take the half-stencil self-join plus a
    smaller-endpoint membership filter, small ones the per-query stencil
    scan; both must be bit-identical to filtering the brute-force pairs
    with ``p > q`` — grouped by the queries' order in ``query_indices``,
    neighbor ascending — for every subset shape.
    """

    @pytest.mark.parametrize("kind", CLOUD_KINDS)
    @pytest.mark.parametrize("seed", range(3))
    def test_random_subsets_match_brute(self, kind, seed):
        rng = np.random.default_rng(4200 + 10 * seed + hash(kind) % 83)
        points = random_cloud(rng, kind)
        n = points.shape[0]
        cutoff = float(rng.uniform(0.5, 8.0))
        for frac in (0.1, 0.5, 0.8, 1.0):
            m = max(1, int(n * frac))
            subset = rng.choice(n, size=m, replace=False)
            if rng.random() < 0.5:
                subset = np.sort(subset)
            brute = radius_edges(points, cutoff, query_indices=subset,
                                 method="brute")
            grid = radius_edges(points, cutoff, query_indices=subset,
                                method="grid")
            assert grid.dtype == brute.dtype
            assert np.array_equal(grid, brute)
            assert np.array_equal(
                radius_edges(points, cutoff, query_indices=subset,
                             method="balltree"), brute)

    @pytest.mark.parametrize("seed", range(3))
    def test_both_strategies_bit_identical(self, seed):
        """The join+filter and query+filter branches agree exactly."""
        rng = np.random.default_rng(5100 + seed)
        points = random_cloud(rng, "clustered")
        n = points.shape[0]
        cutoff = float(rng.uniform(1.0, 6.0))
        subset = rng.choice(n, size=max(1, int(0.75 * n)), replace=False)
        grid = GridNeighborSearch(points, cell_size=cutoff)
        q, p = grid.subset_join_pairs(subset, cutoff)
        # force the opposite branch by moving the crossover threshold
        flipped = GridNeighborSearch(points, cell_size=cutoff)
        flipped._SUBSET_JOIN_FRACTION = 2.0 if 0.75 >= flipped._SUBSET_JOIN_FRACTION \
            else 0.0
        q2, p2 = flipped.subset_join_pairs(subset, cutoff)
        assert np.array_equal(q, q2)
        assert np.array_equal(p, p2)

    def test_permuted_full_subset_matches_self_join(self):
        rng = np.random.default_rng(6007)
        points = rng.uniform(0, 12, size=(90, 3))
        permuted = rng.permutation(90)
        brute = radius_edges(points, 3.0, query_indices=permuted, method="brute")
        assert np.array_equal(
            radius_edges(points, 3.0, query_indices=permuted, method="grid"), brute)
        # identity order reduces to the plain full-discovery fast path
        ordered = radius_edges(points, 3.0, query_indices=np.arange(90),
                               method="grid")
        assert np.array_equal(ordered, radius_edges(points, 3.0, method="grid"))

    def test_degenerate_subsets(self):
        points = np.random.default_rng(7).uniform(0, 5, size=(40, 3))
        grid = GridNeighborSearch(points, cell_size=2.0)
        q, p = grid.subset_join_pairs(np.empty(0, dtype=np.int64), 2.0)
        assert q.size == 0 and p.size == 0
        single = radius_edges(points, 2.0, query_indices=np.array([17]),
                              method="grid")
        assert np.array_equal(
            single, radius_edges(points, 2.0, query_indices=np.array([17]),
                                 method="brute"))

    def test_duplicate_indices_rejected_but_radius_edges_falls_back(self):
        points = np.random.default_rng(8).uniform(0, 5, size=(30, 3))
        grid = GridNeighborSearch(points, cell_size=2.0)
        with pytest.raises(ValueError, match="unique"):
            grid.subset_join_pairs(np.array([3, 3, 7]), 2.0)
        dup = np.array([3, 3, 7])
        assert np.array_equal(
            radius_edges(points, 2.0, query_indices=dup, method="grid"),
            radius_edges(points, 2.0, query_indices=dup, method="brute"))


class TestConnectedComponentsEquivalence:
    @staticmethod
    def assert_same_components(left, right):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("include_singletons", [True, False])
    def test_vectorized_equals_reference_and_networkx(self, seed, include_singletons):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 120))
        n_edges = int(rng.integers(0, 300))
        edges = rng.integers(0, n, size=(n_edges, 2))
        vec = connected_components(edges, n, include_singletons, method="vectorized")
        ref = connected_components(edges, n, include_singletons, method="reference")
        nxc = connected_components_networkx(edges, n, include_singletons)
        self.assert_same_components(vec, ref)
        self.assert_same_components(vec, nxc)

    def test_empty_edge_list(self):
        vec = connected_components(np.empty((0, 2)), 5, method="vectorized")
        ref = connected_components(np.empty((0, 2)), 5, method="reference")
        self.assert_same_components(vec, ref)
        assert len(vec) == 5
        assert connected_components(np.empty((0, 2)), 0, method="vectorized") == []

    def test_engine_default_steers_method(self):
        edges = np.array([[0, 1], [2, 3]])
        with use_kernel_method("reference"):
            ref = connected_components(edges, 5)
        self.assert_same_components(ref, connected_components(edges, 5))

    def test_label_components_minimum_labels(self):
        labels = label_components(np.array([[4, 3], [3, 2], [0, 1]]), 6)
        assert labels.tolist() == [0, 0, 2, 2, 2, 5]

    def test_self_loops_and_duplicates(self):
        edges = np.array([[1, 1], [1, 1], [2, 1], [1, 2]])
        vec = connected_components(edges, 4, method="vectorized")
        ref = connected_components(edges, 4, method="reference")
        self.assert_same_components(vec, ref)

    @pytest.mark.parametrize("seed", range(6))
    def test_merge_vectorized_equals_reference(self, seed):
        rng = np.random.default_rng(40 + seed)
        n = int(rng.integers(2, 200))
        edges = rng.integers(0, n, size=(int(rng.integers(0, 350)), 2))
        partial_sets = [
            [c.tolist() for c in connected_components(chunk, n, include_singletons=False)]
            for chunk in np.array_split(edges, int(rng.integers(1, 7)))
        ]
        vec = merge_component_sets(partial_sets, method="vectorized")
        ref = merge_component_sets(partial_sets, method="reference")
        self.assert_same_components(vec, ref)
        # merged partials reproduce the global components
        expected = connected_components(edges, n, include_singletons=False)
        self.assert_same_components(vec, expected)

    def test_merge_degenerates(self):
        for method in KERNEL_METHODS:
            assert merge_component_sets([], method=method) == []
            assert merge_component_sets([[], []], method=method) == []
            singles = merge_component_sets([[[7]], [[7]], [[9]]], method=method)
            assert [c.tolist() for c in singles] == [[7], [9]]


class TestEarlybreakEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_blockwise_exactly_equals_reference(self, seed):
        rng = np.random.default_rng(2000 + seed)
        n_a = int(rng.integers(1, 24))
        n_b = int(rng.integers(1, 24))
        n_atoms = int(rng.integers(1, 10))
        a = rng.normal(scale=rng.uniform(0.1, 10.0), size=(n_a, n_atoms, 3))
        b = rng.normal(scale=rng.uniform(0.1, 10.0), size=(n_b, n_atoms, 3))
        for shuffle_seed in (None, seed):
            blockwise = hausdorff_earlybreak(a, b, shuffle_seed=shuffle_seed,
                                             method="vectorized")
            reference = hausdorff_earlybreak(a, b, shuffle_seed=shuffle_seed,
                                             method="reference")
            assert blockwise == reference        # equal floats, not approx
            assert blockwise == pytest.approx(hausdorff(a, b), rel=1e-10)

    @pytest.mark.parametrize("offset", [1e3, 9e6, -5e6])
    @pytest.mark.parametrize("seed", range(4))
    def test_large_common_offset_stays_exact(self, offset, seed):
        """Regression: a large shared coordinate magnitude must not break the
        GEMM expansion's pruning (catastrophic cancellation) — the blockwise
        kernel centers both sets by their common mean first."""
        rng = np.random.default_rng(4000 + seed)
        a = rng.normal(size=(int(rng.integers(1, 20)), 7, 3)) + offset
        b = rng.normal(size=(int(rng.integers(1, 20)), 7, 3)) + offset
        blockwise = hausdorff_earlybreak(a, b, shuffle_seed=seed)
        reference = hausdorff_earlybreak(a, b, shuffle_seed=seed, method="reference")
        assert blockwise == reference

    @pytest.mark.parametrize("block_size", [1, 3, 17, 256])
    def test_block_size_does_not_change_result(self, block_size):
        rng = np.random.default_rng(77)
        a = rng.normal(size=(21, 6, 3))
        b = rng.normal(size=(13, 6, 3))
        expected = hausdorff_earlybreak(a, b, method="reference")
        assert hausdorff_earlybreak(a, b, block_size=block_size) == expected

    def test_single_frame_trajectories(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(1, 4, 3))
        b = rng.normal(size=(1, 4, 3))
        assert hausdorff_earlybreak(a, b) == hausdorff_earlybreak(a, b, method="reference")
        assert hausdorff_earlybreak(a, a) == 0.0

    def test_identical_trajectories_zero(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(9, 5, 3))
        for method in KERNEL_METHODS:
            assert hausdorff_earlybreak(a, a.copy(), method=method) == 0.0

    def test_engine_default_steers_method(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(8, 4, 3))
        b = rng.normal(size=(6, 4, 3))
        with use_kernel_method("reference"):
            assert hausdorff_earlybreak(a, b) == hausdorff_earlybreak(
                a, b, method="reference")

    def test_invalid_block_size(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(3, 2, 3))
        with pytest.raises(ValueError):
            hausdorff_earlybreak(a, a, block_size=0)


class TestBatchedKabschEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_batched_matches_per_frame_loop(self, seed):
        rng = np.random.default_rng(3000 + seed)
        traj = rng.normal(scale=rng.uniform(0.5, 4.0), size=(17, 9, 3))
        reference = rng.normal(size=(9, 3))
        batched = rmsd_trajectory(traj, reference=reference, superposition=True)
        looped = np.array([kabsch_rmsd(frame, reference) for frame in traj])
        assert np.allclose(batched, looped, rtol=1e-9, atol=1e-12)

    def test_single_frame(self):
        rng = np.random.default_rng(9)
        traj = rng.normal(size=(1, 6, 3))
        out = rmsd_trajectory(traj, superposition=True)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(0.0, abs=1e-9)

    def test_rotated_copy_has_zero_fitted_rmsd(self):
        rng = np.random.default_rng(10)
        frame = rng.normal(size=(12, 3))
        theta = 0.7
        rot = np.array([[np.cos(theta), -np.sin(theta), 0.0],
                        [np.sin(theta), np.cos(theta), 0.0],
                        [0.0, 0.0, 1.0]])
        traj = np.stack([frame, frame @ rot.T + 3.0])
        fitted = rmsd_trajectory(traj, reference=frame, superposition=True)
        assert np.allclose(fitted, 0.0, atol=1e-9)
