"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.graph import (
    DisjointSet,
    components_to_labels,
    connected_components,
    connected_components_networkx,
    merge_component_sets,
)
from repro.analysis.hausdorff import hausdorff, hausdorff_earlybreak, hausdorff_naive
from repro.analysis.neighbors import BallTree, brute_force_radius
from repro.analysis.rmsd import pairwise_rmsd_loop, rmsd_matrix
from repro.core.partitioning import (
    choose_group_size,
    one_dimensional_partition,
    two_dimensional_partition,
)
from repro.frameworks import make_framework
from repro.frameworks.faults import FaultPolicy, FaultSpec
from repro.frameworks.sparklite.partitioner import split_into_partitions

# keep example sizes small: these kernels are O(n^2)
SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


def traj_pair_strategy(max_frames=6, max_atoms=6):
    """Two trajectories with the same atom count."""
    return st.tuples(
        st.integers(1, max_frames), st.integers(1, max_frames), st.integers(1, max_atoms),
        st.integers(0, 2 ** 16),
    )


def _make_pair(n_a, n_b, atoms, seed):
    rng = np.random.default_rng(seed)
    return (rng.uniform(-10, 10, size=(n_a, atoms, 3)),
            rng.uniform(-10, 10, size=(n_b, atoms, 3)))


class TestHausdorffProperties:
    @SETTINGS
    @given(traj_pair_strategy())
    def test_symmetry_and_nonnegativity(self, params):
        a, b = _make_pair(*params)
        d_ab = hausdorff(a, b)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(hausdorff(b, a), rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(traj_pair_strategy())
    def test_identity(self, params):
        a, _ = _make_pair(*params)
        assert hausdorff(a, a) == pytest.approx(0.0, abs=1e-6)

    @SETTINGS
    @given(traj_pair_strategy(max_frames=5, max_atoms=4))
    def test_implementations_agree(self, params):
        a, b = _make_pair(*params)
        reference = hausdorff_naive(a, b)
        assert hausdorff(a, b) == pytest.approx(reference, rel=1e-8, abs=1e-8)
        assert hausdorff_earlybreak(a, b) == pytest.approx(reference, rel=1e-8, abs=1e-8)

    @SETTINGS
    @given(traj_pair_strategy(), st.floats(-5.0, 5.0))
    def test_translation_invariance_of_relative_order(self, params, shift):
        """Shifting both trajectories by the same vector leaves the distance unchanged."""
        a, b = _make_pair(*params)
        d_original = hausdorff(a, b)
        d_shifted = hausdorff(a + shift, b + shift)
        assert d_shifted == pytest.approx(d_original, rel=1e-7, abs=1e-7)


class TestRmsdMatrixProperties:
    @SETTINGS
    @given(traj_pair_strategy(max_frames=5, max_atoms=4))
    def test_vectorized_matches_loop(self, params):
        a, b = _make_pair(*params)
        assert np.allclose(rmsd_matrix(a, b), pairwise_rmsd_loop(a, b), atol=1e-8)

    @SETTINGS
    @given(traj_pair_strategy(max_frames=5, max_atoms=4))
    def test_transpose_relation(self, params):
        a, b = _make_pair(*params)
        assert np.allclose(rmsd_matrix(a, b), rmsd_matrix(b, a).T, atol=1e-10)


class TestNeighborProperties:
    @SETTINGS
    @given(st.integers(1, 60), st.floats(0.5, 10.0), st.integers(0, 2 ** 16))
    def test_balltree_matches_bruteforce(self, n_points, radius, seed):
        rng = np.random.default_rng(seed)
        points = rng.uniform(0, 20, size=(n_points, 3))
        queries = points[: min(10, n_points)]
        tree_hits = BallTree(points, leaf_size=4).query_radius(queries, radius)
        brute_hits = brute_force_radius(points, queries, radius)
        for t, b in zip(tree_hits, brute_hits):
            assert np.array_equal(np.sort(t), np.sort(b))


class TestGraphProperties:
    edges_strategy = st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), min_size=0, max_size=80
    )

    @SETTINGS
    @given(edges_strategy)
    def test_components_partition_nodes(self, edge_list):
        n = 30
        edges = np.array(edge_list, dtype=np.int64).reshape(-1, 2)
        comps = connected_components(edges, n)
        flat = sorted(int(x) for c in comps for x in c)
        assert flat == list(range(n))          # every node in exactly one component
        labels = components_to_labels(comps, n)
        for a, b in edges:
            assert labels[a] == labels[b]       # endpoints always share a component

    @SETTINGS
    @given(edges_strategy)
    def test_union_find_matches_networkx(self, edge_list):
        n = 30
        edges = np.array(edge_list, dtype=np.int64).reshape(-1, 2)
        ours = [c.tolist() for c in connected_components(edges, n)]
        theirs = [c.tolist() for c in connected_components_networkx(edges, n)]
        assert ours == theirs

    @SETTINGS
    @given(edges_strategy, st.integers(1, 5))
    def test_partial_merge_equals_global(self, edge_list, n_blocks):
        """Splitting edges into blocks and merging partial components is lossless."""
        n = 30
        edges = np.array(edge_list, dtype=np.int64).reshape(-1, 2)
        expected = [c.tolist() for c in connected_components(edges, n,
                                                             include_singletons=False)]
        partials = []
        for chunk in np.array_split(edges, n_blocks) if len(edges) else []:
            comps = connected_components(chunk, n, include_singletons=False)
            partials.append([c.tolist() for c in comps])
        merged = [c.tolist() for c in merge_component_sets(partials)]
        assert merged == expected

    @SETTINGS
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    def test_disjoint_set_group_sizes(self, pairs):
        dsu = DisjointSet(20)
        for a, b in pairs:
            dsu.union(a, b)
        groups = dsu.groups()
        assert sum(len(g) for g in groups) == 20
        assert all(dsu.find(int(g[0])) == dsu.find(int(x)) for g in groups for x in g)


def _retry_task(x):
    """A deterministic numeric task for the retry-determinism property."""
    return float(np.sum(x * x) + np.sum(np.sort(x)[:3]))


_RETRY_N_TASKS = 7
_RETRY_BASELINE: dict = {}


def _retry_workload():
    """Fixed-seed task payloads (rebuilt per run so faults cannot mutate them)."""
    rng = np.random.default_rng(2024)
    return [rng.uniform(-5, 5, size=16) for _ in range(_RETRY_N_TASKS)]


def _retry_results(framework_name, **kwargs):
    fw = make_framework(framework_name, executor="serial", **kwargs)
    try:
        results = fw.map_tasks(_retry_task, _retry_workload())
        return results, fw.metrics
    finally:
        fw.close()


class TestRetryDeterminism:
    """One injected fault at *any* task index leaves the results bit-identical.

    The resilience layer's core contract: because faults are consumed at
    first-attempt dispatch and tasks are deterministic, a run that loses
    a worker (or hits a transient raise) at any position recovers to
    exactly the fault-free answer, with the retry accounted.
    """

    @SETTINGS
    @given(st.sampled_from(("sparklite", "dasklite", "pilot", "mpilite")),
           st.integers(0, _RETRY_N_TASKS - 1),
           st.sampled_from(("raise", "kill_worker", "delay")))
    def test_single_fault_any_position_is_invisible(self, name, position, kind):
        baseline = _RETRY_BASELINE.setdefault(
            "results", _retry_results("dasklite")[0])
        spec = FaultSpec(kind, at_task=position, delay_s=0.0)
        results, metrics = _retry_results(name, fault_policy=FaultPolicy(),
                                          faults=spec)
        assert results == baseline          # bit-identical floats
        expected_retries = 0 if kind == "delay" else 1
        assert metrics.tasks_retried == expected_retries
        assert metrics.tasks_lost == (1 if kind == "kill_worker" else 0)

    @SETTINGS
    @given(st.integers(0, _RETRY_N_TASKS - 1), st.integers(0, _RETRY_N_TASKS - 1))
    def test_two_faults_any_positions_are_invisible(self, first, second):
        baseline = _RETRY_BASELINE.setdefault(
            "results", _retry_results("dasklite")[0])
        specs = [FaultSpec("raise", at_task=first)]
        if second != first:
            specs.append(FaultSpec("kill_worker", at_task=second))
        results, metrics = _retry_results("dasklite", fault_policy=FaultPolicy(),
                                          faults=specs)
        assert results == baseline
        assert metrics.tasks_retried == len(specs)


class TestPartitioningProperties:
    @SETTINGS
    @given(st.integers(0, 200), st.integers(1, 20))
    def test_1d_partition_is_a_partition(self, n_items, n_chunks):
        ranges = one_dimensional_partition(n_items, n_chunks)
        covered = [i for start, stop in ranges for i in range(start, stop)]
        assert covered == list(range(n_items))
        sizes = [stop - start for start, stop in ranges]
        if sizes:
            assert max(sizes) - min(sizes) <= 1   # balanced

    @SETTINGS
    @given(st.integers(2, 60), st.integers(1, 60))
    def test_2d_partition_covers_pairs_once(self, n_items, chunk):
        blocks = two_dimensional_partition(n_items, chunk)
        seen = set()
        for b in blocks:
            for i in range(b.row_start, b.row_stop):
                for j in range(b.col_start, b.col_stop):
                    if b.diagonal and j <= i:
                        continue
                    assert (i, j) not in seen
                    seen.add((i, j))
        assert seen == {(i, j) for i in range(n_items) for j in range(i + 1, n_items)}

    @SETTINGS
    @given(st.integers(1, 500), st.integers(1, 300))
    def test_choose_group_size_valid(self, n_items, target):
        chunk = choose_group_size(n_items, target)
        assert 1 <= chunk <= n_items

    @SETTINGS
    @given(st.lists(st.integers(), max_size=100), st.integers(1, 12))
    def test_split_into_partitions_preserves_order(self, data, n_parts):
        parts = split_into_partitions(data, n_parts)
        assert len(parts) == n_parts
        assert [x for p in parts for x in p] == data
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1
