"""Unit tests for the atom-selection mini-language."""

import numpy as np
import pytest

from repro.trajectory.selections import SelectionError, parse_selection, select
from repro.trajectory.topology import Topology


@pytest.fixture()
def membrane_topology():
    """A tiny mixed system: lipids (P, C) and protein (CA) atoms."""
    names = ["P", "C1", "C2", "P", "C1", "CA", "CA", "OW"]
    elements = ["P", "C", "C", "P", "C", "C", "C", "O"]
    resids = [1, 1, 1, 2, 2, 3, 4, 5]
    resnames = ["POPC", "POPC", "POPC", "POPE", "POPE", "ALA", "GLY", "SOL"]
    segids = ["MEMB", "MEMB", "MEMB", "MEMB", "MEMB", "PROT", "PROT", "SOLV"]
    masses = [30.97, 12.0, 12.0, 30.97, 12.0, 12.0, 12.0, 16.0]
    return Topology(
        names=np.array(names, dtype=object),
        elements=np.array(elements, dtype=object),
        resids=np.array(resids),
        resnames=np.array(resnames, dtype=object),
        segids=np.array(segids, dtype=object),
        masses=np.array(masses),
    )


@pytest.fixture()
def positions():
    pos = np.zeros((8, 3))
    pos[:, 2] = np.arange(8, dtype=float)  # z = 0..7
    return pos


class TestBasicSelections:
    def test_all_and_none(self, membrane_topology):
        assert select("all", membrane_topology).tolist() == list(range(8))
        assert select("none", membrane_topology).tolist() == []

    def test_name(self, membrane_topology):
        assert select("name P", membrane_topology).tolist() == [0, 3]

    def test_name_multiple_patterns(self, membrane_topology):
        assert select("name P CA", membrane_topology).tolist() == [0, 3, 5, 6]

    def test_name_wildcard(self, membrane_topology):
        assert select("name C*", membrane_topology).tolist() == [1, 2, 4, 5, 6]

    def test_resname(self, membrane_topology):
        assert select("resname POPC", membrane_topology).tolist() == [0, 1, 2]

    def test_segid(self, membrane_topology):
        assert select("segid PROT", membrane_topology).tolist() == [5, 6]

    def test_element(self, membrane_topology):
        assert select("element O", membrane_topology).tolist() == [7]

    def test_resid_single_and_range(self, membrane_topology):
        assert select("resid 2", membrane_topology).tolist() == [3, 4]
        assert select("resid 1:2", membrane_topology).tolist() == [0, 1, 2, 3, 4]

    def test_index(self, membrane_topology):
        assert select("index 0 7", membrane_topology).tolist() == [0, 7]
        assert select("index 2:4", membrane_topology).tolist() == [2, 3, 4]


class TestBooleanLogic:
    def test_and(self, membrane_topology):
        assert select("resname POPC and name P", membrane_topology).tolist() == [0]

    def test_or(self, membrane_topology):
        result = select("resname ALA or resname GLY", membrane_topology)
        assert result.tolist() == [5, 6]

    def test_not(self, membrane_topology):
        result = select("not segid MEMB", membrane_topology)
        assert result.tolist() == [5, 6, 7]

    def test_parentheses(self, membrane_topology):
        result = select("( name P or name CA ) and not segid PROT", membrane_topology)
        assert result.tolist() == [0, 3]

    def test_precedence_and_binds_tighter_than_or(self, membrane_topology):
        # "A or B and C" == "A or (B and C)"
        res = select("name OW or name C1 and resname POPC", membrane_topology)
        assert res.tolist() == [1, 7]


class TestPropSelections:
    def test_prop_mass(self, membrane_topology):
        assert select("prop mass > 20", membrane_topology).tolist() == [0, 3]

    def test_prop_z_requires_positions(self, membrane_topology):
        with pytest.raises(SelectionError):
            select("prop z > 3", membrane_topology)

    def test_prop_z(self, membrane_topology, positions):
        result = select("prop z >= 6", membrane_topology, positions)
        assert result.tolist() == [6, 7]

    def test_prop_combined(self, membrane_topology, positions):
        result = select("name P and prop z < 3", membrane_topology, positions)
        assert result.tolist() == [0]

    @pytest.mark.parametrize("op,expected", [
        ("<", [0]), ("<=", [0, 1]), (">", [2, 3, 4, 5, 6, 7]),
        (">=", [1, 2, 3, 4, 5, 6, 7]), ("==", [1]), ("!=", [0, 2, 3, 4, 5, 6, 7]),
    ])
    def test_prop_operators(self, membrane_topology, positions, op, expected):
        assert select(f"prop z {op} 1", membrane_topology, positions).tolist() == expected


class TestSelectionErrors:
    @pytest.mark.parametrize("bad", [
        "", "name", "bogus P", "resid x", "resid 1:y", "prop mass >",
        "prop charge ~ 1", "prop volume > 1", "( name P", "name P )",
        "prop mass > notanumber",
    ])
    def test_invalid_selections_raise(self, membrane_topology, bad):
        with pytest.raises(SelectionError):
            select(bad, membrane_topology)

    def test_parse_selection_returns_mask(self, membrane_topology):
        mask = parse_selection("name P", membrane_topology)
        assert mask.dtype == bool
        assert mask.sum() == 2
