"""Locality-aware placement: scheduler policy, engine accounting, hygiene.

The placement layer must never change *what* a run computes — only
*where* tasks execute.  The correctness matrix here pins that: PSA and
leaflet results are bit-identical with locality on and off, across both
data planes, under speculation and under worker death.  The scheduler
policy itself (delay scheduling over resident sets) is pure bookkeeping
and is unit-tested with a fake clock; the engine-level tests pin the
exact ``tasks_local`` / ``tasks_remote`` split on deterministic
single-lane runs, resident-set transport through the heartbeat
directory, dead-lane invalidation, and the two bugfixes that rode along
(the even-count speculation median and prefetch hints dropped on a full
queue).
"""

from __future__ import annotations

import os
import queue
import tempfile

import numpy as np
import pytest

from repro.core.api import leaflet_finder, psa
from repro.frameworks import shm as shm_mod
from repro.frameworks.base import RunMetrics
from repro.frameworks.executors import (
    SharedMemoryExecutor,
    _speculation_threshold,
    _WorkerLane,
)
from repro.frameworks.faults import (
    RESIDENT_PREFIX,
    FaultCounters,
    FaultPolicy,
    read_resident_set,
    reap_dead_heartbeats,
    report_resident_set,
    write_heartbeat,
)
from repro.frameworks.locality import LocalityScheduler, Placement, TaskBlocks
from repro.frameworks.shm import (
    BlockRef,
    SharedMemoryStore,
    prefetch_hints_dropped,
    prefetch_refs,
)
from repro.trajectory import (
    BilayerSpec,
    EnsembleSpec,
    make_bilayer,
    make_clustered_ensemble,
)


def ref(name, nbytes=80, spill_dir=None):
    """A BlockRef of ``nbytes`` bytes under segment ``name``."""
    return BlockRef(segment=name, shape=(nbytes // 8,), dtype="<f8",
                    spill_dir=spill_dir)


def blocks(index, *named_sizes):
    """TaskBlocks from ``(name, nbytes)`` pairs."""
    return TaskBlocks.from_refs(
        index, [ref(name, size) for name, size in named_sizes])


def block_sum(payload):
    return float(np.asarray(payload).sum())


# --------------------------------------------------------------------------- #
# the scheduler policy, unit-tested pure
# --------------------------------------------------------------------------- #
class TestTaskBlocks:
    def test_from_refs_dedups_to_largest_view(self):
        refs = [ref("a", 800), ref("a", 80), ref("b", 160)]
        task = TaskBlocks.from_refs(0, refs)
        assert task.names == frozenset({"a", "b"})
        assert task.nbytes == {"a": 800, "b": 160}

    def test_empty_refs(self):
        task = TaskBlocks.from_refs(3, [])
        assert task.names == frozenset()


class TestLocalityScheduler:
    def scheduler(self, tasks, wait_s=10.0, t0=100.0):
        clock = lambda: t0  # noqa: E731 - overridden via now= in choose
        return LocalityScheduler(tasks, wait_s, clock=clock)

    def test_prefers_best_covered_task(self):
        sched = self.scheduler([blocks(0, ("a", 80)), blocks(1, ("b", 800)),
                                blocks(2, ("c", 80))])
        choice = sched.choose([0, 1, 2], lane=0, resident=frozenset({"a", "b"}),
                              others={}, spilled=frozenset({"a", "b", "c"}))
        assert choice.index == 1          # covers 800 bytes > 80 bytes
        assert choice.local is True
        assert choice.bytes_avoided == 800
        assert choice.missing == frozenset()

    def test_tie_goes_to_queue_order(self):
        sched = self.scheduler([blocks(0, ("a", 80)), blocks(1, ("b", 80))])
        choice = sched.choose([0, 1], lane=0, resident=frozenset({"a", "b"}),
                              others={}, spilled=frozenset({"a", "b"}))
        assert choice.index == 0

    def test_partial_coverage_is_remote_with_missing_names(self):
        sched = self.scheduler([blocks(0, ("a", 80), ("b", 80))])
        choice = sched.choose([0], lane=0, resident=frozenset({"a"}),
                              others={}, spilled=frozenset({"a", "b"}))
        assert choice.local is False
        assert choice.bytes_avoided == 80
        assert choice.missing == frozenset({"b"})

    def test_spill_free_task_is_local_fallback(self):
        sched = self.scheduler([blocks(0, ("a", 80))])
        choice = sched.choose([0], lane=1, resident=frozenset(),
                              others={}, spilled=frozenset())
        assert choice == Placement(0, 1, True, 0, frozenset())

    def test_first_toucher_runs_remote_when_no_lane_covers(self):
        sched = self.scheduler([blocks(0, ("a", 80))])
        choice = sched.choose([0], lane=0, resident=frozenset(),
                              others={1: frozenset()},
                              spilled=frozenset({"a"}))
        assert choice.local is False
        assert choice.missing == frozenset({"a"})

    def test_task_affine_elsewhere_is_held_then_stolen(self):
        sched = self.scheduler([blocks(0, ("a", 80))], wait_s=5.0)
        others = {1: frozenset({"a"})}
        spilled = frozenset({"a"})
        # within the wait bound: held, the lane stays idle
        assert sched.choose([0], 0, frozenset(), others, spilled,
                            now=100.0) is None
        assert sched.choose([0], 0, frozenset(), others, spilled,
                            now=104.9) is None
        # past the bound (counted from the first pass-over): stolen
        choice = sched.choose([0], 0, frozenset(), others, spilled, now=105.0)
        assert choice is not None
        assert choice.index == 0
        assert choice.local is False

    def test_hold_state_clears_once_chosen(self):
        sched = self.scheduler([blocks(0, ("a", 80))], wait_s=5.0)
        others = {1: frozenset({"a"})}
        spilled = frozenset({"a"})
        assert sched.choose([0], 0, frozenset(), others, spilled,
                            now=100.0) is None
        choice = sched.choose([0], 0, frozenset(), others, spilled, now=106.0)
        assert choice.index == 0
        # re-queued (retry): the hold timer starts over
        assert sched.choose([0], 0, frozenset(), others, spilled,
                            now=107.0) is None

    def test_covered_task_beats_held_and_fallback(self):
        sched = self.scheduler([blocks(0, ("a", 80)), blocks(1, ("b", 80)),
                                blocks(2, ("c", 80))], wait_s=0.0)
        others = {1: frozenset({"a"})}
        choice = sched.choose([0, 1, 2], 0, frozenset({"b"}), others,
                              frozenset({"a", "b"}), now=100.0)
        assert choice.index == 1

    def test_unknown_index_treated_as_spill_free(self):
        sched = self.scheduler([blocks(0, ("a", 80))])
        choice = sched.choose([7], 0, frozenset(), {}, frozenset({"a"}))
        assert choice == Placement(7, 0, True, 0, frozenset())

    def test_names_for(self):
        sched = self.scheduler([blocks(4, ("a", 80), ("b", 80))])
        assert sched.names_for(4) == frozenset({"a", "b"})
        assert sched.names_for(9) == frozenset()


# --------------------------------------------------------------------------- #
# satellite bugfix: even-count speculation median
# --------------------------------------------------------------------------- #
class TestSpeculationThreshold:
    def test_even_count_uses_midpoint_median(self):
        policy = FaultPolicy(speculation_factor=2.0, heartbeat_interval_s=0.05)
        # sorted[len//2] would pick 3.0 and yield 6.0, delaying
        # speculation; the true median of [1, 2, 3, 4] is 2.5
        assert _speculation_threshold([4.0, 1.0, 3.0, 2.0], policy) == 5.0

    def test_odd_count_unchanged(self):
        policy = FaultPolicy(speculation_factor=2.0, heartbeat_interval_s=0.05)
        assert _speculation_threshold([3.0, 1.0, 2.0], policy) == 4.0

    def test_heartbeat_floor_still_applies(self):
        policy = FaultPolicy(speculation_factor=3.0, heartbeat_interval_s=0.5)
        assert _speculation_threshold([0.001, 0.002], policy) == 1.5


# --------------------------------------------------------------------------- #
# satellite bugfix: prefetch hint drops are counted, siblings survive
# --------------------------------------------------------------------------- #
class TestPrefetchDrops:
    def test_full_queue_drops_only_the_full_hint(self, tmp_path, monkeypatch):
        # a one-slot queue with no drain thread: the first hint fills it,
        # the siblings behind it must still be attempted (and counted as
        # dropped) instead of being silently abandoned
        stub = queue.Queue(maxsize=1)
        monkeypatch.setattr(shm_mod, "_prefetch_queue", stub)
        spill = str(tmp_path)
        refs = [ref("pf-a", 80, spill), ref("pf-b", 80, spill),
                ref("pf-c", 80, spill)]
        before = prefetch_hints_dropped()
        hints = prefetch_refs(refs)
        assert hints == 1
        assert prefetch_hints_dropped() - before == 2

    def test_refs_without_spill_dir_are_not_hints(self):
        before = prefetch_hints_dropped()
        assert prefetch_refs([ref("no-spill", 80)]) == 0
        assert prefetch_hints_dropped() == before


# --------------------------------------------------------------------------- #
# resident-set transport and dead-lane invalidation
# --------------------------------------------------------------------------- #
class TestResidentSetReporting:
    def test_report_read_round_trip(self, tmp_path):
        hb_dir = str(tmp_path)
        report_resident_set(hb_dir)
        names = read_resident_set(hb_dir, os.getpid())
        assert names is not None
        assert isinstance(names, frozenset)

    def test_read_missing_pid_returns_none(self, tmp_path):
        assert read_resident_set(str(tmp_path), 1) is None

    def test_reap_removes_dead_pid_resident_sets(self, tmp_path):
        hb_dir = str(tmp_path)
        report_resident_set(hb_dir)
        own = os.path.join(hb_dir, f"{RESIDENT_PREFIX}{os.getpid()}")
        # forge a report from a pid that cannot be alive
        dead = os.path.join(hb_dir, f"{RESIDENT_PREFIX}999999999")
        with open(dead, "w") as fh:
            fh.write("stale-block\n")
        write_heartbeat(hb_dir)
        reap_dead_heartbeats(hb_dir)
        assert not os.path.exists(dead)
        assert os.path.exists(own)

    def test_rebuilt_lane_forgets_resident_set(self):
        lane = _WorkerLane(0)
        try:
            lane.resident = frozenset({"a", "b"})
            lane.pid = 12345
            lane.rebuild()
            assert lane.resident == frozenset()
            assert lane.pid is None
        finally:
            lane.pool.shutdown(wait=True)


# --------------------------------------------------------------------------- #
# engine accounting on deterministic single-lane runs
# --------------------------------------------------------------------------- #
class TestPlacementAccounting:
    def spilled_store(self, tmp_path):
        """A store where block A is deterministically on the disk tier."""
        a = np.arange(8192, dtype=np.float64)          # 64 KiB
        b = np.arange(8192, dtype=np.float64) + 1.0
        store = SharedMemoryStore(capacity_bytes=80 * 1024,
                                  spill_dir=str(tmp_path),
                                  spill_async=False)
        ref_a = store.put(a)
        ref_b = store.put(b)                            # evicts A (cold, largest)
        assert store.spilled_names() == frozenset({ref_a.segment})
        return store, ref_a, ref_b, a, b

    def test_exact_local_remote_split(self, tmp_path):
        store, ref_a, _, a, _ = self.spilled_store(tmp_path)
        ex = SharedMemoryExecutor(workers=1, store=store,
                                  fault_policy=FaultPolicy(locality=True))
        try:
            results = ex.map_tasks(block_sum, [ref_a, ref_a, ref_a, ref_a])
            assert results == [float(a.sum())] * 4
            # the first toucher pays the cold read; with one lane every
            # later task finds A resident there
            assert ex.total_tasks_remote == 1
            assert ex.total_tasks_local == 3
            assert ex.total_bytes_spill_reads_avoided == 3 * a.nbytes
            assert ex.last_hb_leftovers == []
        finally:
            ex.shutdown()
        store.cleanup()

    def test_spill_free_tasks_all_local(self, tmp_path):
        ex = SharedMemoryExecutor(workers=2,
                                  fault_policy=FaultPolicy(locality=True))
        try:
            arrays = [np.full(64, float(i)) for i in range(6)]
            results = ex.map_tasks(block_sum, arrays)
            assert results == [float(arr.sum()) for arr in arrays]
            assert ex.total_tasks_local == 6
            assert ex.total_tasks_remote == 0
            assert ex.total_bytes_spill_reads_avoided == 0
            assert ex.last_hb_leftovers == []
        finally:
            ex.shutdown()

    def test_locality_off_places_nothing(self):
        ex = SharedMemoryExecutor(workers=2, fault_policy=FaultPolicy())
        try:
            ex.map_tasks(block_sum, [np.full(64, 1.0), np.full(64, 2.0)])
            assert ex.total_tasks_local == 0
            assert ex.total_tasks_remote == 0
        finally:
            ex.shutdown()

    def test_dispatch_prefetch_drops_surface_in_totals(self, tmp_path,
                                                       monkeypatch):
        # driver-side prefetch at dispatch meets a full hint queue: the
        # drops must land in the executor totals (and thence RunMetrics)
        store, ref_a, _, a, _ = self.spilled_store(tmp_path)
        stub = queue.Queue(maxsize=1)
        stub.put_nowait(("x", "y"))
        monkeypatch.setattr(shm_mod, "_prefetch_queue", stub)
        ex = SharedMemoryExecutor(workers=1, store=store,
                                  fault_policy=FaultPolicy(locality=True))
        try:
            results = ex.map_tasks(block_sum, [ref_a, ref_a])
            assert results == [float(a.sum())] * 2
            assert ex.total_prefetch_hints_dropped >= 1
        finally:
            ex.shutdown()
        store.cleanup()


# --------------------------------------------------------------------------- #
# metrics plumbing
# --------------------------------------------------------------------------- #
class TestLocalityMetrics:
    def test_run_metrics_merge_and_dict_carry_placement_fields(self):
        one = RunMetrics(tasks_local=3, tasks_remote=1,
                         bytes_spill_reads_avoided=4096,
                         prefetch_hints_dropped=2)
        two = RunMetrics(tasks_local=1, tasks_remote=2,
                         bytes_spill_reads_avoided=1024,
                         prefetch_hints_dropped=1)
        merged = one.merge(two)
        assert merged.tasks_local == 4
        assert merged.tasks_remote == 3
        assert merged.bytes_spill_reads_avoided == 5120
        assert merged.prefetch_hints_dropped == 3
        view = merged.as_dict()
        assert view["tasks_local"] == 4
        assert view["tasks_remote"] == 3
        assert view["bytes_spill_reads_avoided"] == 5120
        assert view["prefetch_hints_dropped"] == 3

    def test_fault_counters_record_and_reset_placement_fields(self):
        counters = FaultCounters()
        counters.record(local=2, remote=1, bytes_avoided=512, hints_dropped=4)
        assert counters.tasks_local == 2
        assert counters.tasks_remote == 1
        assert counters.bytes_spill_reads_avoided == 512
        assert counters.prefetch_hints_dropped == 4
        counters.reset()
        assert counters.tasks_local == 0
        assert counters.prefetch_hints_dropped == 0

    def test_policy_knobs_validate(self):
        policy = FaultPolicy(locality=True, locality_wait_s=0.2)
        assert policy.locality is True
        with pytest.raises(ValueError):
            FaultPolicy(locality_wait_s=-1.0)


# --------------------------------------------------------------------------- #
# the correctness matrix: locality must never change results
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def locality_ensemble():
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=5, n_frames=8, n_atoms=16, n_clusters=2,
                     seed=42))


@pytest.fixture(scope="module")
def locality_reference(locality_ensemble):
    matrix, _ = psa(locality_ensemble, "dasklite", executor="serial")
    return matrix.values.copy()


class TestLocalityCorrectnessMatrix:
    @pytest.mark.parametrize("plane", ["pickle", "shm"])
    def test_psa_bit_identical_with_locality(self, plane, locality_ensemble,
                                             locality_reference, tmp_path):
        matrix, report = psa(
            locality_ensemble, "pilot", executor="shm", workers=2,
            data_plane=plane,
            store_capacity_bytes=48 * 1024,
            spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(locality=True, locality_wait_s=0.02))
        assert np.array_equal(matrix.values, locality_reference)
        placed = (report.metrics.tasks_local + report.metrics.tasks_remote)
        if plane == "shm":
            assert placed >= report.metrics.tasks_completed
        assert report.metrics.as_dict()["tasks_local"] == \
            report.metrics.tasks_local

    def test_psa_locality_with_speculation(self, locality_ensemble,
                                           locality_reference, tmp_path):
        # speculated duplicates bypass placement; results stay identical
        matrix, report = psa(
            locality_ensemble, "pilot", executor="shm", workers=2,
            data_plane="shm", spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(locality=True, locality_wait_s=0.02,
                                     speculation_factor=50.0,
                                     heartbeat_interval_s=0.05))
        assert np.array_equal(matrix.values, locality_reference)

    def test_leaflet_bit_identical_with_locality(self, tmp_path):
        positions, _ = make_bilayer(BilayerSpec(n_atoms=240, seed=9))
        reference, _ = leaflet_finder(positions, "dasklite",
                                      executor="serial",
                                      approach="tree-search", n_tasks=6)
        result, _ = leaflet_finder(
            positions, "pilot", executor="shm", workers=2, data_plane="shm",
            approach="tree-search", n_tasks=6,
            fault_policy=FaultPolicy(locality=True, locality_wait_s=0.02))
        assert result.sizes == reference.sizes
