"""Unit tests for the mpilite substrate (collectives, SPMD runtime, facade)."""

import numpy as np
import pytest

from repro.frameworks.mpilite import (
    Communicator,
    MPIFramework,
    ReduceOp,
    SPMDError,
    WorldContext,
    run_spmd,
)


class TestReduceOp:
    def test_sum_max_min(self):
        assert ReduceOp.apply(ReduceOp.SUM, [1, 2, 3]) == 6
        assert ReduceOp.apply(ReduceOp.MAX, [1, 5, 3]) == 5
        assert ReduceOp.apply(ReduceOp.MIN, [4, 2, 9]) == 2

    def test_concat(self):
        assert ReduceOp.apply(ReduceOp.CONCAT, [[1], [2, 3]]) == [1, 2, 3]

    def test_array_reduction(self):
        out = ReduceOp.apply(ReduceOp.MAX, [np.array([1, 5]), np.array([3, 2])])
        assert out.tolist() == [3, 5]

    def test_invalid(self):
        with pytest.raises(ValueError):
            ReduceOp.apply("prod", [1, 2])
        with pytest.raises(ValueError):
            ReduceOp.apply(ReduceOp.SUM, [])


class TestWorldContext:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            WorldContext(size=0)

    def test_rank_validation(self):
        ctx = WorldContext(size=2)
        with pytest.raises(ValueError):
            Communicator(5, ctx)

    def test_traffic_accounting(self):
        ctx = WorldContext(size=1)
        ctx.account("bcast", 100)
        ctx.account("gather", 50)
        assert ctx.bytes_communicated == 150
        assert ctx.collective_calls == 2
        assert ctx.traffic_log == [("bcast", 100), ("gather", 50)]


class TestCollectives:
    def test_bcast(self):
        def program(comm):
            data = {"x": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        results = run_spmd(program, 4)
        assert all(r == {"x": 42} for r in results)

    def test_scatter_gather(self):
        def program(comm):
            chunks = [[i, i] for i in range(comm.size)] if comm.rank == 0 else None
            local = comm.scatter(chunks, root=0)
            assert local == [comm.rank, comm.rank]
            gathered = comm.gather(sum(local), root=0)
            return gathered

        results = run_spmd(program, 3)
        assert results[0] == [0, 2, 4]
        assert results[1] is None and results[2] is None

    def test_scatter_requires_chunk_per_rank(self):
        def program(comm):
            chunks = [[1]] if comm.rank == 0 else None  # wrong length
            return comm.scatter(chunks, root=0)

        with pytest.raises(SPMDError):
            run_spmd(program, 2)

    def test_allgather_and_allreduce(self):
        def program(comm):
            return (comm.allgather(comm.rank), comm.allreduce(comm.rank + 1))

        results = run_spmd(program, 4)
        for gathered, total in results:
            assert gathered == [0, 1, 2, 3]
            assert total == 10

    def test_reduce_max(self):
        def program(comm):
            return comm.reduce(comm.rank * 2, op=ReduceOp.MAX, root=0)

        results = run_spmd(program, 3)
        assert results[0] == 4
        assert results[1] is None

    def test_numpy_bcast(self):
        def program(comm):
            data = np.arange(10.0) if comm.rank == 0 else None
            return comm.bcast(data, root=0).sum()

        assert run_spmd(program, 2) == [45.0, 45.0]

    def test_point_to_point(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        assert run_spmd(program, 2)[1] == "hello"

    def test_send_invalid_rank(self):
        def program(comm):
            comm.send("x", dest=5)

        with pytest.raises(SPMDError):
            run_spmd(program, 2)

    def test_bytes_accounted(self):
        ctx = WorldContext(size=2)

        def program(comm):
            comm.bcast(np.zeros(1000) if comm.rank == 0 else None, root=0)
            comm.allgather(comm.rank)
            return None

        run_spmd(program, 2, context=ctx)
        assert ctx.bytes_communicated >= 8000
        assert ctx.collective_calls >= 2

    def test_mpi4py_style_accessors(self):
        def program(comm):
            return (comm.Get_rank(), comm.Get_size())

        assert run_spmd(program, 3) == [(0, 3), (1, 3), (2, 3)]


class TestRunSpmd:
    def test_single_rank_fast_path(self):
        assert run_spmd(lambda comm: comm.rank, 1) == [0]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 0)

    def test_context_size_mismatch(self):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: None, 3, context=WorldContext(size=2))

    def test_rank_exception_aborts_all(self):
        def program(comm):
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            comm.barrier()  # would deadlock without barrier abort
            return comm.rank

        with pytest.raises(SPMDError) as excinfo:
            run_spmd(program, 3)
        assert any(isinstance(exc, RuntimeError) for _rank, exc in excinfo.value.failures)

    def test_extra_args_passed(self):
        assert run_spmd(lambda comm, a, b=0: comm.rank + a + b, 2, 10, b=5) == [15, 16]


class TestMPIFramework:
    def test_map_tasks_results_ordered(self):
        fw = MPIFramework(workers=3)
        assert fw.map_tasks(lambda x: x * x, list(range(11))) == [x * x for x in range(11)]
        assert fw.metrics.tasks_completed == 11
        assert fw.metrics.bytes_shuffled > 0  # the gather moved data
        fw.close()

    def test_map_tasks_fewer_items_than_ranks(self):
        fw = MPIFramework(ranks=8)
        assert fw.map_tasks(lambda x: x, [1, 2]) == [1, 2]
        fw.close()

    def test_map_tasks_empty(self):
        fw = MPIFramework(ranks=2)
        assert fw.map_tasks(lambda x: x, []) == []
        fw.close()

    def test_run_spmd_records_events(self):
        fw = MPIFramework(ranks=2)
        results = fw.run_spmd(lambda comm: comm.allreduce(1))
        assert results == [2, 2]
        assert any(label == "spmd" for label, _ in fw.metrics.events)
        fw.close()

    def test_broadcast_counts_per_rank_bytes(self):
        fw = MPIFramework(ranks=4)
        handle = fw.broadcast(np.zeros(100))
        assert handle.nbytes == 800 * 3  # size-1 copies
        fw.close()
