"""Unit tests for the synthetic trajectory and bilayer generators."""

import numpy as np
import pytest

from repro.analysis import hausdorff
from repro.trajectory import (
    PAPER_LEAFLET_SIZES,
    PAPER_PSA_SIZES,
    BilayerSpec,
    EnsembleSpec,
    make_bilayer,
    make_bilayer_universe,
    make_clustered_ensemble,
    make_ensemble,
    paper_leaflet_system,
    paper_psa_ensemble,
    random_walk_trajectory,
    transition_trajectory,
)


class TestRandomWalk:
    def test_shape(self):
        traj = random_walk_trajectory(10, 5, seed=1)
        assert traj.n_frames == 10
        assert traj.n_atoms == 5

    def test_deterministic(self):
        a = random_walk_trajectory(5, 3, seed=42)
        b = random_walk_trajectory(5, 3, seed=42)
        assert np.allclose(a.positions, b.positions)

    def test_different_seeds_differ(self):
        a = random_walk_trajectory(5, 3, seed=1)
        b = random_walk_trajectory(5, 3, seed=2)
        assert not np.allclose(a.positions, b.positions)

    def test_single_frame(self):
        assert random_walk_trajectory(1, 3).n_frames == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_walk_trajectory(0, 3)


class TestTransitionTrajectory:
    def test_endpoints(self):
        start = np.zeros((4, 3))
        end = np.full((4, 3), 5.0)
        traj = transition_trajectory(20, 4, start=start, end=end, noise=0.0)
        assert np.allclose(traj.positions[0], start)
        assert np.allclose(traj.positions[-1], end)

    def test_waypoint_detour(self):
        start = np.zeros((2, 3))
        end = np.full((2, 3), 10.0)
        way = np.full((2, 3), 50.0)
        straight = transition_trajectory(11, 2, start=start, end=end, noise=0.0)
        detour = transition_trajectory(11, 2, start=start, end=end, waypoint=way, noise=0.0)
        # the detour passes far from the straight path at the midpoint
        assert np.linalg.norm(detour.positions[5] - straight.positions[5]) > 5.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            transition_trajectory(1, 3)
        with pytest.raises(ValueError):
            transition_trajectory(5, 3, start=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            transition_trajectory(5, 3, waypoint=np.zeros((2, 3)))


class TestEnsembles:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            EnsembleSpec(n_trajectories=0).validate()
        with pytest.raises(ValueError):
            EnsembleSpec(n_frames=1).validate()
        with pytest.raises(ValueError):
            EnsembleSpec(n_clusters=10, n_trajectories=4).validate()

    def test_make_ensemble(self):
        ens = make_ensemble(EnsembleSpec(n_trajectories=5, n_frames=6, n_atoms=7))
        assert ens.n_trajectories == 5
        assert ens[0].n_atoms == 7

    def test_clustered_ensemble_structure(self):
        """Same-family trajectories must be closer (Hausdorff) than cross-family."""
        spec = EnsembleSpec(n_trajectories=6, n_frames=12, n_atoms=12,
                            n_clusters=2, seed=21)
        ens = make_clustered_ensemble(spec)
        arrays = ens.as_arrays()
        # members 0-2 are family 0, members 3-5 family 1 (even split)
        within = hausdorff(arrays[0], arrays[1])
        across = hausdorff(arrays[0], arrays[4])
        assert across > 2.0 * within

    def test_clustered_ensemble_deterministic(self):
        spec = EnsembleSpec(n_trajectories=4, n_frames=6, n_atoms=5, seed=3)
        a = make_clustered_ensemble(spec)
        b = make_clustered_ensemble(spec)
        assert np.allclose(a[2].positions, b[2].positions)

    def test_paper_psa_ensemble_sizes(self):
        ens = paper_psa_ensemble("small", 4, n_frames=5, scale=1.0)
        assert ens[0].n_atoms == PAPER_PSA_SIZES["small"]
        ens_scaled = paper_psa_ensemble("medium", 4, n_frames=5, scale=0.01)
        assert ens_scaled[0].n_atoms == round(PAPER_PSA_SIZES["medium"] * 0.01)

    def test_paper_psa_ensemble_invalid_size(self):
        with pytest.raises(ValueError):
            paper_psa_ensemble("huge", 4)


class TestBilayer:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BilayerSpec(n_atoms=1).validate()
        with pytest.raises(ValueError):
            BilayerSpec(spacing=-1.0).validate()
        with pytest.raises(ValueError):
            BilayerSpec(separation=0.0).validate()
        with pytest.raises(ValueError):
            BilayerSpec(jitter=-0.1).validate()

    def test_shapes_and_labels(self):
        positions, labels = make_bilayer(BilayerSpec(n_atoms=101, seed=2))
        assert positions.shape == (101, 3)
        assert labels.shape == (101,)
        assert set(np.unique(labels)) == {0, 1}
        # odd count: upper leaflet gets the extra atom
        assert int((labels == 1).sum()) == 51

    def test_leaflets_separated_in_z(self):
        spec = BilayerSpec(n_atoms=200, separation=40.0, jitter=0.1, seed=4)
        positions, labels = make_bilayer(spec)
        z_lower = positions[labels == 0, 2].mean()
        z_upper = positions[labels == 1, 2].mean()
        assert z_upper - z_lower == pytest.approx(40.0, abs=2.0)

    def test_min_gap_exceeds_default_cutoff(self):
        """The two leaflets must not connect at the default 15 A cutoff."""
        positions, labels = make_bilayer(BilayerSpec(n_atoms=300, seed=6))
        lower = positions[labels == 0]
        upper = positions[labels == 1]
        from scipy.spatial.distance import cdist
        assert cdist(lower, upper).min() > 15.0

    def test_deterministic(self):
        a, la = make_bilayer(BilayerSpec(n_atoms=64, seed=9))
        b, lb = make_bilayer(BilayerSpec(n_atoms=64, seed=9))
        assert np.allclose(a, b)
        assert np.array_equal(la, lb)

    def test_curvature_keeps_leaflets_distinct(self):
        spec = BilayerSpec(n_atoms=256, curvature_amplitude=5.0,
                           curvature_periods=2.0, seed=1)
        positions, labels = make_bilayer(spec)
        z = positions[:, 2]
        assert z[labels == 1].min() > z[labels == 0].max()

    def test_universe_wrapper(self):
        universe, labels = make_bilayer_universe(BilayerSpec(n_atoms=50, seed=3))
        assert universe.n_atoms == 50
        assert universe.select_atoms("name P").n_atoms == 50
        assert labels.shape == (50,)

    def test_paper_leaflet_system(self):
        positions, labels = paper_leaflet_system("131k", scale=0.001)
        assert positions.shape[0] == round(PAPER_LEAFLET_SIZES["131k"] * 0.001)
        with pytest.raises(ValueError):
            paper_leaflet_system("10M")
