"""Streaming ingestion suite: chunk files, ingest, and windowed analyses.

Covers the out-of-core layer end to end: the ``.fchunk`` on-disk format
round-trips bit-identically; :meth:`SharedMemoryStore.ingest` dedups
chunk blocks by fingerprint and counts ``bytes_ingested`` /
``peak_resident_bytes``; windowed PSA and streamed leaflet runs merge
per-window results *bit-identically* to their batch counterparts on all
four substrates; and a streamed run whose ensemble is four times the
store watermark completes with a bounded resident peak (the acceptance
criterion).  The fault cases unlink a spilled chunk block mid-run and
require the store to heal it from its registered source file.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.hausdorff import hausdorff_naive, window_minima
from repro.core.api import psa, stream_windows
from repro.core.leaflet import leaflet_serial, run_leaflet_stream
from repro.core.psa import run_psa_windows
from repro.frameworks import make_framework
from repro.frameworks.faults import FaultPolicy, FaultSpec
from repro.frameworks.shm import SharedMemoryStore
from repro.trajectory import (
    BilayerSpec,
    EnsembleSpec,
    FrameChunkReader,
    FrameChunkWriter,
    make_bilayer,
    make_clustered_ensemble,
    open_streaming_ensemble,
    write_frame_chunks,
    write_position_chunks,
)
from repro.trajectory.streaming import ChunkedPositions, ChunkSource

pytestmark = pytest.mark.streaming

FRAMEWORK_NAMES = ("sparklite", "dasklite", "pilot", "mpilite")


def shm_entries():
    """Current /dev/shm segment names (empty set if the dir is absent)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux fallback: nothing to compare
        return set()


@pytest.fixture(scope="module")
def ensemble():
    """A small PSA ensemble shared by the bit-identity tests."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=5, n_frames=16, n_atoms=24, seed=42))


@pytest.fixture(scope="module")
def arrays(ensemble):
    return [t.as_array() for t in ensemble]


@pytest.fixture()
def chunk_paths(tmp_path, ensemble, arrays):
    """The ensemble written as one ``.fchunk`` file per trajectory."""
    return [
        write_frame_chunks(array, str(tmp_path / f"{traj.name}.fchunk"),
                           frames_per_chunk=4, name=traj.name)
        for traj, array in zip(ensemble, arrays)
    ]


@pytest.fixture(scope="module")
def batch_matrix(ensemble):
    """The batch windowed-Hausdorff matrix every streamed run must match."""
    matrix, _ = psa(ensemble, "dasklite", executor="serial",
                    metric="hausdorff_windowed")
    return matrix.values.copy()


# --------------------------------------------------------------------------- #
# chunk file format
# --------------------------------------------------------------------------- #
class TestChunkFormat:
    def test_round_trip_bit_identical(self, tmp_path):
        rng = np.random.default_rng(0)
        frames = rng.random((13, 7, 3))  # uneven: 13 frames, 4 per chunk
        path = str(tmp_path / "traj.fchunk")
        write_frame_chunks(frames, path, frames_per_chunk=4, name="traj")
        reader = FrameChunkReader(path)
        assert reader.n_frames == 13
        assert reader.n_atoms == 7
        assert reader.n_chunks == 4
        assert reader.nbytes == frames.nbytes
        recovered = np.concatenate([reader.read_chunk(i)
                                    for i in range(reader.n_chunks)])
        assert np.array_equal(recovered, frames)

    def test_chunk_ranges_partition_the_file(self, tmp_path):
        frames = np.zeros((10, 2, 3))
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=3)
        reader = FrameChunkReader(path)
        ranges = [reader.chunk_range(i) for i in range(reader.n_chunks)]
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_read_frames_arbitrary_window(self, tmp_path):
        rng = np.random.default_rng(1)
        frames = rng.random((20, 5, 3))
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=6)
        reader = FrameChunkReader(path)
        assert np.array_equal(reader.read_frames(5, 17), frames[5:17])
        assert np.array_equal(reader.read_frames(0, 20), frames)

    def test_incremental_writer_appends(self, tmp_path):
        rng = np.random.default_rng(2)
        frames = rng.random((9, 4, 3))
        path = str(tmp_path / "t.fchunk")
        with FrameChunkWriter(path, n_atoms=4, frames_per_chunk=4) as writer:
            writer.append(frames[:2])
            writer.append(frames[2])      # single frame
            writer.append(frames[3:])
        reader = FrameChunkReader(path)
        assert reader.n_frames == 9
        assert np.array_equal(reader.read_frames(0, 9), frames)

    def test_magic_rejected_on_garbage(self, tmp_path):
        path = tmp_path / "bogus.fchunk"
        path.write_bytes(b"not a chunk file at all")
        with pytest.raises(ValueError, match="magic"):
            FrameChunkReader(str(path))

    def test_chunk_source_fingerprint_is_stable(self, tmp_path):
        frames = np.zeros((4, 2, 3))
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=2)
        a = ChunkSource(path, 0)
        b = ChunkSource(path, 0)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != ChunkSource(path, 1).fingerprint
        assert np.array_equal(a(), frames[:2])


# --------------------------------------------------------------------------- #
# store ingestion
# --------------------------------------------------------------------------- #
class TestIngest:
    def test_ingest_dedups_by_fingerprint(self, tmp_path):
        before = shm_entries()
        rng = np.random.default_rng(3)
        frames = rng.random((8, 6, 3))
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=4)
        store = SharedMemoryStore()
        try:
            src = ChunkSource(path, 0)
            ref1 = store.ingest(src.fingerprint, src)
            ref2 = store.ingest(src.fingerprint, src)
            assert ref1.segment == ref2.segment
            assert store.bytes_ingested == frames[:4].nbytes  # counted once
            assert store.peak_resident_bytes >= frames[:4].nbytes
            assert np.array_equal(ref1.resolve(), frames[:4])
        finally:
            store.cleanup()
        assert shm_entries() == before

    def test_window_refs_slice_zero_copy(self, tmp_path, ensemble, arrays,
                                         chunk_paths):
        streaming = open_streaming_ensemble(chunk_paths)
        store = SharedMemoryStore()
        try:
            member = streaming.members[0]
            refs = member.window_refs(store, 3, 13)  # crosses chunk edges
            window = np.concatenate([r.resolve() for r in refs])
            assert np.array_equal(window, arrays[0][3:13])
        finally:
            store.cleanup()

    def test_spilled_chunk_heals_from_source_file(self, tmp_path):
        rng = np.random.default_rng(4)
        frames = rng.random((16, 8, 3))
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=4)
        chunk_bytes = frames[:4].nbytes
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        store = SharedMemoryStore(capacity_bytes=chunk_bytes * 2,
                                  spill_dir=str(spill_dir), spill_async=False)
        try:
            refs = [store.ingest(ChunkSource(path, i).fingerprint,
                                 ChunkSource(path, i)) for i in range(4)]
            spilled = [r for r in refs
                       if (spill_dir / (r.segment + ".blk")).exists()]
            assert spilled, "two-chunk watermark must have spilled"
            victim = spilled[0]
            os.remove(spill_dir / (victim.segment + ".blk"))
            assert store.recover_spilled_block(victim.segment)
            idx = refs.index(victim)
            assert np.array_equal(victim.resolve(), frames[idx * 4:(idx + 1) * 4])
        finally:
            store.cleanup()

    def test_heal_fails_when_source_file_is_gone(self, tmp_path):
        frames = np.arange(4 * 2 * 3, dtype=float).reshape(4, 2, 3)
        path = write_frame_chunks(frames, str(tmp_path / "t.fchunk"),
                                  frames_per_chunk=2)
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        store = SharedMemoryStore(capacity_bytes=frames[:2].nbytes,
                                  spill_dir=str(spill_dir), spill_async=False)
        try:
            refs = [store.ingest(ChunkSource(path, i).fingerprint,
                                 ChunkSource(path, i)) for i in range(2)]
            spilled = [r for r in refs
                       if (spill_dir / (r.segment + ".blk")).exists()]
            assert spilled
            os.remove(spill_dir / (spilled[0].segment + ".blk"))
            os.remove(path)  # the source is gone too: nothing left to heal from
            assert not store.recover_spilled_block(spilled[0].segment)
        finally:
            store.cleanup()


# --------------------------------------------------------------------------- #
# windowed kernel
# --------------------------------------------------------------------------- #
class TestWindowedKernel:
    def test_window_minima_partition_independent(self):
        rng = np.random.default_rng(5)
        a, b = rng.random((11, 6, 3)), rng.random((9, 6, 3))
        whole_r, whole_c = window_minima(a, b)
        # merge per-window minima over a 3-way split of a and 2-way of b
        row = np.full(11, np.inf)
        col = np.full(9, np.inf)
        for alo, ahi in ((0, 4), (4, 8), (8, 11)):
            for blo, bhi in ((0, 5), (5, 9)):
                r, c = window_minima(a[alo:ahi], b[blo:bhi])
                row[alo:ahi] = np.minimum(row[alo:ahi], r)
                col[blo:bhi] = np.minimum(col[blo:bhi], c)
        assert np.array_equal(row, whole_r)
        assert np.array_equal(col, whole_c)

    def test_windowed_hausdorff_matches_naive(self):
        rng = np.random.default_rng(6)
        a, b = rng.random((10, 8, 3)), rng.random((12, 8, 3))
        row, col = window_minima(a, b)
        n_atoms = a.shape[1]
        value = float(np.sqrt(max(row.max(), col.max()) / n_atoms))
        assert value == hausdorff_naive(a, b)


# --------------------------------------------------------------------------- #
# windowed PSA: streamed == batch, bit for bit
# --------------------------------------------------------------------------- #
class TestWindowedPSA:
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_streamed_matches_batch_all_substrates(self, name, chunk_paths,
                                                   batch_matrix):
        before = shm_entries()
        streaming = open_streaming_ensemble(chunk_paths)
        fw = make_framework(name, executor="threads", workers=2,
                            data_plane="shm")
        try:
            matrix, report = run_psa_windows(streaming, fw, n_tasks=4)
        finally:
            fw.close()
        assert np.array_equal(matrix.values, batch_matrix)
        assert report.metrics.bytes_ingested == streaming.nbytes
        assert shm_entries() == before

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_in_memory_windows_match_batch(self, name, ensemble, batch_matrix):
        fw = make_framework(name, executor="threads", workers=2)
        try:
            matrix, _ = run_psa_windows(ensemble, fw, window_frames=5)
        finally:
            fw.close()
        assert np.array_equal(matrix.values, batch_matrix)

    def test_psa_window_argument(self, ensemble, arrays, chunk_paths):
        start, stop = 3, 13
        matrix, _ = psa(ensemble, "dasklite", executor="serial",
                        metric="hausdorff_windowed", window=(start, stop))
        n = len(arrays)
        expected = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                row, col = window_minima(arrays[i][start:stop],
                                         arrays[j][start:stop])
                expected[i, j] = expected[j, i] = float(
                    np.sqrt(max(row.max(), col.max()) / arrays[i].shape[1]))
        assert np.array_equal(matrix.values, expected)
        # the same window over the streamed ensemble gives the same matrix
        streaming = open_streaming_ensemble(chunk_paths)
        streamed, _ = psa(streaming, "dasklite", executor="serial",
                          metric="hausdorff_windowed", window=(start, stop),
                          data_plane="shm")
        assert np.array_equal(streamed.values, expected)

    def test_out_of_core_acceptance(self, chunk_paths, batch_matrix):
        """Ensemble 4x the watermark: bounded peak, bit-identical matrix."""
        streaming = open_streaming_ensemble(chunk_paths)
        total = streaming.nbytes
        matrix, report = stream_windows(streaming, "dasklite", workers=2,
                                        store_capacity_bytes=total // 4)
        assert np.array_equal(matrix.values, batch_matrix)
        assert report.metrics.bytes_ingested == total
        assert 0 < report.metrics.peak_resident_bytes < total
        assert report.metrics.bytes_spilled > 0

    def test_rejects_non_decomposable_metric(self, ensemble):
        fw = make_framework("dasklite", executor="serial")
        try:
            with pytest.raises(ValueError, match="hausdorff_windowed"):
                run_psa_windows(ensemble, fw, metric="frechet")
        finally:
            fw.close()


# --------------------------------------------------------------------------- #
# streamed leaflet
# --------------------------------------------------------------------------- #
class TestStreamedLeaflet:
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_streamed_components_match_serial(self, name, tmp_path):
        positions, _ = make_bilayer(BilayerSpec(n_atoms=400, seed=9))
        path = write_position_chunks(positions,
                                     str(tmp_path / "bilayer.fchunk"),
                                     atoms_per_chunk=120)
        reference = leaflet_serial(positions, 15.0)
        chunked = ChunkedPositions(path)
        fw = make_framework(name, executor="threads", workers=2,
                            data_plane="shm")
        try:
            result, report = run_leaflet_stream(chunked, 15.0, fw)
        finally:
            fw.close()
        canon = sorted(tuple(sorted(c)) for c in result.components)
        expected = sorted(tuple(sorted(c)) for c in reference.components)
        assert canon == expected
        assert report.metrics.bytes_ingested == positions.nbytes

    def test_stream_windows_leaflet_dispatch(self, tmp_path):
        positions, _ = make_bilayer(BilayerSpec(n_atoms=300, seed=10))
        path = write_position_chunks(positions,
                                     str(tmp_path / "bilayer.fchunk"),
                                     atoms_per_chunk=100)
        reference = leaflet_serial(positions, 15.0)
        result, _ = stream_windows(ChunkedPositions(path), "dasklite",
                                   analysis="leaflet", workers=2)
        canon = sorted(tuple(sorted(c)) for c in result.components)
        expected = sorted(tuple(sorted(c)) for c in reference.components)
        assert canon == expected


# --------------------------------------------------------------------------- #
# chaos: faults mid-ingest
# --------------------------------------------------------------------------- #
@pytest.mark.faults
class TestStreamingFaults:
    def test_unlinked_chunk_block_heals_from_file(self, chunk_paths,
                                                  batch_matrix, tmp_path):
        """A spilled chunk block unlinked mid-run heals from its source."""
        before = shm_entries()
        streaming = open_streaming_ensemble(chunk_paths)
        spill_dir = tmp_path / "spill"
        spill_dir.mkdir()
        # at_task=20 lands in wave 2, where the one-window watermark has
        # already spilled the window-0 chunk blocks that the wave's
        # cross-window pairs still need — the unlinked victim is an
        # input chunk, so the heal must come from its source file
        matrix, report = stream_windows(
            streaming, "dasklite", executor="serial",
            store_capacity_bytes=streaming.nbytes // 4,
            spill_dir=str(spill_dir),
            fault_policy=FaultPolicy(),
            faults=FaultSpec("unlink_block", at_task=20))
        assert np.array_equal(matrix.values, batch_matrix)
        assert report.metrics.tasks_retried >= 1
        assert shm_entries() == before
        assert os.listdir(spill_dir) == []

    def test_worker_killed_mid_ingest_run_completes(self, chunk_paths,
                                                    batch_matrix):
        """Kill a worker mid-wave: retries finish the run bit-identically."""
        before = shm_entries()
        streaming = open_streaming_ensemble(chunk_paths)
        matrix, report = stream_windows(
            streaming, "dasklite", workers=2,
            fault_policy=FaultPolicy(),
            faults=FaultSpec("kill_worker", at_task=2))
        assert np.array_equal(matrix.values, batch_matrix)
        assert report.metrics.tasks_retried >= 1
        assert report.metrics.tasks_lost >= 1
        assert shm_entries() == before
