"""Unit tests for cluster model, executors, serialization and the base framework."""

import time

import numpy as np
import pytest

from repro.frameworks.base import BroadcastHandle, RunMetrics, TaskFramework
from repro.frameworks.cluster import ClusterSpec, local_cluster
from repro.frameworks.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_worker_count,
    make_executor,
)
from repro.frameworks.serialization import (
    estimate_transfer_time,
    nbytes_of,
    serialized_size,
)


class TestClusterSpec:
    def test_totals(self):
        spec = ClusterSpec(nodes=3, cores_per_node=24, memory_per_node_gb=128,
                           hyperthreads_per_core=2, name="wrangler")
        assert spec.total_cores == 72
        assert spec.total_slots == 144
        assert spec.total_memory_gb == 384

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(memory_per_node_gb=0)
        with pytest.raises(ValueError):
            ClusterSpec(hyperthreads_per_core=0)

    def test_with_nodes(self):
        spec = ClusterSpec(nodes=1, cores_per_node=8)
        assert spec.with_nodes(4).total_cores == 32

    def test_for_cores_rounds_up_to_whole_nodes(self):
        spec = ClusterSpec(nodes=1, cores_per_node=24, hyperthreads_per_core=2)
        assert spec.for_cores(32).nodes == 1
        assert spec.for_cores(64).nodes == 2
        assert spec.for_cores(256).nodes == 6
        with pytest.raises(ValueError):
            spec.for_cores(0)

    def test_local_cluster(self):
        assert local_cluster(cores=8).total_cores == 8


class TestExecutors:
    @pytest.mark.parametrize("kind", ["serial", "threads"])
    def test_map_tasks_order_preserved(self, kind):
        ex = make_executor(kind, workers=3)
        results = ex.map_tasks(lambda x: x * 2, list(range(20)))
        assert results == [x * 2 for x in range(20)]
        assert len(ex.timings) == 20
        assert ex.total_task_time >= 0.0

    def test_serial_executor_single_worker(self):
        assert SerialExecutor().workers == 1

    def test_thread_executor_propagates_exceptions(self):
        ex = ThreadExecutor(workers=2)

        def boom(x):
            if x == 3:
                raise RuntimeError("task failed")
            return x

        with pytest.raises(RuntimeError, match="task failed"):
            ex.map_tasks(boom, list(range(5)))

    def test_thread_executor_empty_items(self):
        assert ThreadExecutor(2).map_tasks(lambda x: x, []) == []

    def test_thread_executor_parallelism(self):
        """Sleep-bound tasks should overlap on multiple threads."""
        ex = ThreadExecutor(workers=4)
        start = time.perf_counter()
        ex.map_tasks(lambda _x: time.sleep(0.05), list(range(4)))
        elapsed = time.perf_counter() - start
        assert elapsed < 0.05 * 4  # strictly less than serial time

    def test_map_with_args(self):
        ex = SerialExecutor()
        results = ex.map_with_args(lambda a, b: a + b, [(1, 2), (3, 4)])
        assert results == [3, 7]

    def test_make_executor_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_process_executor_with_picklable_fn(self):
        ex = ProcessExecutor(workers=2)
        results = ex.map_tasks(abs, [-1, -2, 3])
        assert results == [1, 2, 3]
        assert len(ex.timings) == 3


class TestSerialization:
    def test_serialized_size_positive(self):
        assert serialized_size({"a": list(range(100))}) > 100

    def test_nbytes_of_array(self):
        arr = np.zeros((100, 3))
        assert nbytes_of(arr) == 2400

    def test_nbytes_of_nested(self):
        data = [np.zeros(10), np.zeros(20)]
        assert nbytes_of(data) >= 30 * 8

    def test_nbytes_of_dict_and_bytes(self):
        assert nbytes_of({"k": b"12345"}) >= 5
        assert nbytes_of(b"1234") == 4

    def test_transfer_time_monotone_in_size(self):
        assert estimate_transfer_time(10**9) > estimate_transfer_time(10**6)
        with pytest.raises(ValueError):
            estimate_transfer_time(-1)
        with pytest.raises(ValueError):
            estimate_transfer_time(10, bandwidth_gbps=0)


class TestRunMetrics:
    def test_merge_adds_fields(self):
        a = RunMetrics(tasks_submitted=2, wall_time_s=1.0, bytes_broadcast=10)
        b = RunMetrics(tasks_submitted=3, wall_time_s=2.0, bytes_shuffled=5)
        merged = a.merge(b)
        assert merged.tasks_submitted == 5
        assert merged.wall_time_s == pytest.approx(3.0)
        assert merged.bytes_broadcast == 10
        assert merged.bytes_shuffled == 5

    def test_record_event_and_as_dict(self):
        m = RunMetrics()
        m.record_event("stage", {"id": 1})
        assert ("stage", {"id": 1}) in m.events
        assert "wall_time_s" in m.as_dict()


class TestTaskFrameworkBase:
    def test_map_tasks_and_metrics(self):
        fw = TaskFramework(executor="serial")
        results = fw.map_tasks(lambda x: x + 1, [1, 2, 3])
        assert results == [2, 3, 4]
        assert fw.metrics.tasks_submitted == 3
        assert fw.metrics.tasks_completed == 3
        assert fw.metrics.wall_time_s > 0.0

    def test_broadcast_accounts_bytes(self):
        fw = TaskFramework(executor="serial")
        handle = fw.broadcast(np.zeros(1000))
        assert isinstance(handle, BroadcastHandle)
        assert handle.nbytes == 8000
        assert fw.metrics.bytes_broadcast == 8000
        handle.unpersist()
        assert handle.value is None

    def test_cluster_defaults_to_executor_workers(self):
        fw = TaskFramework(executor="threads", workers=3)
        assert fw.cluster.total_cores == 3
