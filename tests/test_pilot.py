"""Unit tests for the pilot substrate (units, database, agent, managers, facade)."""

import pytest

from repro.frameworks.pilot import (
    ComputeUnit,
    ComputeUnitDescription,
    PilotDescription,
    PilotFramework,
    PilotManager,
    Session,
    StateDatabase,
    UnitManager,
    UnitState,
)


class TestComputeUnitDescription:
    def test_requires_payload(self):
        with pytest.raises(ValueError):
            ComputeUnitDescription().validate()

    def test_callable_payload(self):
        desc = ComputeUnitDescription(callable_=lambda x: x, args=(1,))
        desc.validate()

    def test_executable_payload(self):
        ComputeUnitDescription(executable="/bin/hostname").validate()

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            ComputeUnitDescription(executable="x", cores=0).validate()

    def test_non_callable_rejected(self):
        with pytest.raises(ValueError):
            ComputeUnitDescription(callable_=42).validate()


class TestComputeUnitStateModel:
    def test_forward_transitions(self):
        unit = ComputeUnit(ComputeUnitDescription(executable="x"))
        assert unit.state == UnitState.NEW
        unit.advance(UnitState.PENDING_INPUT_STAGING)
        unit.advance(UnitState.AGENT_SCHEDULING)
        unit.advance(UnitState.EXECUTING)
        unit.advance(UnitState.DONE)
        assert unit.is_done and unit.is_terminal
        assert unit.state_history[0] == UnitState.NEW
        assert unit.state_history[-1] == UnitState.DONE

    def test_backward_transition_rejected(self):
        unit = ComputeUnit(ComputeUnitDescription(executable="x"))
        unit.advance(UnitState.EXECUTING)
        with pytest.raises(RuntimeError):
            unit.advance(UnitState.AGENT_SCHEDULING)

    def test_terminal_state_is_final(self):
        unit = ComputeUnit(ComputeUnitDescription(executable="x"))
        unit.advance(UnitState.FAILED)
        with pytest.raises(RuntimeError):
            unit.advance(UnitState.DONE)

    def test_execute_payload_callable(self):
        unit = ComputeUnit(ComputeUnitDescription(callable_=lambda a, b: a + b, args=(2, 3)))
        assert unit.execute_payload() == 5

    def test_execute_payload_executable_is_noop(self):
        unit = ComputeUnit(ComputeUnitDescription(executable="/bin/hostname"))
        assert unit.execute_payload() == "/bin/hostname"

    def test_unique_uids(self):
        a = ComputeUnit(ComputeUnitDescription(executable="x"))
        b = ComputeUnit(ComputeUnitDescription(executable="x"))
        assert a.uid != b.uid


class TestStateDatabase:
    def test_insert_get_update(self):
        db = StateDatabase()
        db.insert("u1", {"state": "NEW"})
        assert db.get("u1")["state"] == "NEW"
        db.update("u1", {"state": "DONE"})
        assert db.get("u1")["state"] == "DONE"
        assert db.stats.inserts == 1
        assert db.stats.updates == 1
        assert db.stats.round_trips >= 3

    def test_duplicate_insert_raises(self):
        db = StateDatabase()
        db.insert("u1", {})
        with pytest.raises(KeyError):
            db.insert("u1", {})

    def test_unknown_document_raises(self):
        db = StateDatabase()
        with pytest.raises(KeyError):
            db.get("missing")
        with pytest.raises(KeyError):
            db.update("missing", {})

    def test_bulk_operations_single_round_trip(self):
        db = StateDatabase()
        db.insert_many({f"u{i}": {"state": "NEW"} for i in range(10)})
        assert db.stats.round_trips == 1
        db.update_many({f"u{i}": {"state": "DONE"} for i in range(10)})
        assert db.stats.round_trips == 2

    def test_pull_respects_batch_size(self):
        db = StateDatabase(batch_size=3)
        db.insert_many({f"u{i}": {"state": "PENDING"} for i in range(10)})
        batch = db.pull("state", "PENDING")
        assert len(batch) == 3

    def test_count_and_drop(self):
        db = StateDatabase()
        db.insert_many({"a": {"state": "X"}, "b": {"state": "Y"}})
        assert db.count() == 2
        assert db.count("state", "X") == 1
        db.drop()
        assert db.count() == 0

    def test_latency_accumulates(self):
        db = StateDatabase(latency_s=0.001)
        db.insert("u1", {})
        db.get("u1")
        assert db.stats.simulated_latency_s >= 0.002

    def test_validation(self):
        with pytest.raises(ValueError):
            StateDatabase(latency_s=-1)
        with pytest.raises(ValueError):
            StateDatabase(batch_size=0)


class TestPilotAndManagers:
    def test_pilot_description_validation(self):
        with pytest.raises(ValueError):
            PilotDescription(cores=0).validate()
        with pytest.raises(ValueError):
            PilotDescription(runtime_minutes=0).validate()

    def test_full_unit_lifecycle(self):
        session = Session()
        pmgr = PilotManager(session)
        pilot = pmgr.submit_pilots(PilotDescription(cores=2))[0]
        umgr = UnitManager(session)
        umgr.add_pilots(pilot)
        descriptions = [ComputeUnitDescription(callable_=lambda x=i: x * 10, name=f"t{i}")
                        for i in range(5)]
        units = umgr.submit_units(descriptions)
        finished = umgr.wait_units(units)
        assert all(u.is_done for u in finished)
        assert sorted(u.result for u in finished) == [0, 10, 20, 30, 40]
        assert pilot.agent.stats.units_executed == 5
        session.close()
        assert session.closed

    def test_wait_without_pilots_raises(self):
        session = Session()
        umgr = UnitManager(session)
        umgr.submit_units(ComputeUnitDescription(executable="x"))
        with pytest.raises(RuntimeError):
            umgr.wait_units()

    def test_failed_unit_recorded(self):
        session = Session()
        pilot = PilotManager(session).submit_pilots(PilotDescription(cores=1))[0]
        umgr = UnitManager(session)
        umgr.add_pilots(pilot)

        def boom():
            raise ValueError("unit exploded")

        units = umgr.submit_units(ComputeUnitDescription(callable_=boom))
        umgr.wait_units(units)
        assert units[0].state == UnitState.FAILED
        assert isinstance(units[0].exception, ValueError)


class TestPilotFramework:
    def test_map_tasks(self):
        fw = PilotFramework(executor="threads", workers=2)
        assert fw.map_tasks(lambda x: x + 1, list(range(10))) == list(range(1, 11))
        assert fw.metrics.tasks_completed == 10
        events = dict(fw.metrics.events)
        assert events["database"]["round_trips"] > 0
        fw.close()

    def test_map_tasks_failure_propagates(self):
        fw = PilotFramework(executor="serial")

        def maybe_fail(x):
            if x == 2:
                raise RuntimeError("bad unit")
            return x

        with pytest.raises(RuntimeError, match="bad unit"):
            fw.map_tasks(maybe_fail, [1, 2, 3])
        fw.close()

    def test_stage_data_roundtrip(self, tmp_path):
        fw = PilotFramework(executor="serial", staging_dir=str(tmp_path))
        payload = {"positions": [1, 2, 3]}
        path = fw.stage_data(payload, label="system")
        assert fw.load_staged(path) == payload
        assert fw.metrics.bytes_staged > 0
        fw.close()

    def test_broadcast_counts_as_staging(self, tmp_path):
        fw = PilotFramework(executor="serial", staging_dir=str(tmp_path))
        handle = fw.broadcast([1.0] * 100)
        assert handle.value == [1.0] * 100
        assert fw.metrics.bytes_staged > 0
        fw.close()

    def test_database_latency_slows_execution(self):
        fast = PilotFramework(executor="serial", database_latency_s=0.0)
        slow = PilotFramework(executor="serial", database_latency_s=0.002)
        items = list(range(20))
        fast.map_tasks(lambda x: x, items)
        slow.map_tasks(lambda x: x, items)
        assert slow.metrics.wall_time_s > fast.metrics.wall_time_s
        fast.close()
        slow.close()
