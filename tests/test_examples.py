"""Smoke tests for the example scripts (run with reduced problem sizes)."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    """Run one example script in a subprocess and return its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "psa_ensemble.py", "leaflet_membrane.py",
                "framework_comparison.py", "paper_scale_projection.py",
                "spill_tier.py", "streaming_psa.py"} <= names

    def test_psa_ensemble_small(self):
        out = run_example("psa_ensemble.py", "--trajectories", "6", "--frames", "10",
                          "--scale", "0.005", "--workers", "2")
        assert "mpilite" in out and "dasklite" in out
        assert "path families" in out

    def test_leaflet_membrane_small(self):
        out = run_example("leaflet_membrane.py", "--atoms", "600", "--tasks", "8",
                          "--workers", "2")
        assert "tree-search" in out
        assert "NO" not in out  # every approach agreed with the serial reference

    def test_framework_comparison(self):
        out = run_example("framework_comparison.py")
        assert "recommendations" in out
        assert "Spark" in out and "Dask" in out and "RADICAL-Pilot" in out

    def test_streaming_psa_small(self):
        out = run_example("streaming_psa.py", "--trajectories", "6", "--frames", "16",
                          "--atoms", "48", "--workers", "2")
        assert "bytes_ingested" in out
        assert "peak_resident_bytes" in out
        assert "bytes_spilled" in out
        assert "bit-identical" in out

    def test_spill_tier_small(self):
        out = run_example("spill_tier.py", "--trajectories", "6", "--frames", "12",
                          "--atoms", "64", "--workers", "2", "--tasks", "4")
        assert "bytes_spilled" in out
        assert "spill_hidden_seconds" in out
        assert "bit-identical distance matrices" in out
