"""Unit tests for Frame, Trajectory, LazyTrajectory and TrajectoryEnsemble."""

import numpy as np
import pytest

from repro.trajectory import (
    Frame,
    LazyTrajectory,
    Topology,
    Trajectory,
    TrajectoryEnsemble,
    write_npy,
)


def make_traj(n_frames=5, n_atoms=4, seed=0, name="t"):
    rng = np.random.default_rng(seed)
    return Trajectory(rng.normal(size=(n_frames, n_atoms, 3)), name=name)


class TestFrame:
    def test_basic(self):
        frame = Frame(np.zeros((3, 3)), time=2.0, index=1)
        assert frame.n_atoms == 3
        assert frame.time == 2.0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((3, 2)))

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            Frame(np.zeros((3, 3)), box=np.zeros((2,)))

    def test_centroid(self):
        frame = Frame(np.array([[0.0, 0, 0], [2.0, 0, 0]]))
        assert frame.centroid().tolist() == [1.0, 0.0, 0.0]

    def test_radius_of_gyration_unweighted(self):
        frame = Frame(np.array([[1.0, 0, 0], [-1.0, 0, 0]]))
        assert frame.radius_of_gyration() == pytest.approx(1.0)

    def test_radius_of_gyration_mass_weighted(self):
        frame = Frame(np.array([[1.0, 0, 0], [-1.0, 0, 0]]))
        rog = frame.radius_of_gyration(masses=np.array([3.0, 1.0]))
        assert 0.0 < rog < 1.5

    def test_radius_of_gyration_bad_masses(self):
        frame = Frame(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            frame.radius_of_gyration(masses=np.array([1.0]))

    def test_translated(self):
        frame = Frame(np.zeros((2, 3)))
        moved = frame.translated([1.0, 2.0, 3.0])
        assert np.allclose(moved.positions, [[1, 2, 3], [1, 2, 3]])
        assert np.allclose(frame.positions, 0.0)  # original untouched


class TestTrajectory:
    def test_shape_properties(self):
        traj = make_traj(6, 5)
        assert traj.n_frames == 6
        assert traj.n_atoms == 5
        assert len(traj) == 6
        assert traj.nbytes == 6 * 5 * 3 * 8

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((4, 3)))

    def test_topology_mismatch(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((2, 4, 3)), topology=Topology.uniform(5))

    def test_default_times_use_dt(self):
        traj = Trajectory(np.zeros((4, 2, 3)), dt=0.5)
        assert traj.times.tolist() == [0.0, 0.5, 1.0, 1.5]

    def test_times_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 2, 3)), times=np.zeros(2))

    def test_frame_access_and_negative_index(self):
        traj = make_traj(5, 3)
        assert traj.frame(0).index == 0
        assert traj.frame(-1).index == 4
        with pytest.raises(IndexError):
            traj.frame(5)

    def test_getitem_slice_returns_trajectory(self):
        traj = make_traj(10, 3)
        sub = traj[2:8:2]
        assert isinstance(sub, Trajectory)
        assert sub.n_frames == 3
        assert np.allclose(sub.positions[0], traj.positions[2])

    def test_iteration_yields_all_frames(self):
        traj = make_traj(4, 2)
        assert [f.index for f in traj] == [0, 1, 2, 3]

    def test_select_atoms_by_index(self):
        traj = make_traj(3, 6)
        sub = traj.select_atoms_by_index([0, 2, 4])
        assert sub.n_atoms == 3
        assert np.allclose(sub.positions[:, 1], traj.positions[:, 2])

    def test_as_paths_shape(self):
        traj = make_traj(3, 4)
        assert traj.as_paths().shape == (3, 12)

    def test_centered(self):
        traj = make_traj(4, 5, seed=3)
        centered = traj.centered()
        assert np.allclose(centered.positions.mean(axis=1), 0.0, atol=1e-12)

    def test_transformed(self):
        traj = make_traj(2, 3)
        doubled = traj.transformed(lambda xyz: xyz * 2.0)
        assert np.allclose(doubled.positions, traj.positions * 2.0)

    def test_concat_frames(self):
        a, b = make_traj(2, 3, seed=1), make_traj(3, 3, seed=2)
        merged = a.concat_frames(b)
        assert merged.n_frames == 5

    def test_concat_frames_mismatch(self):
        with pytest.raises(ValueError):
            make_traj(2, 3).concat_frames(make_traj(2, 4))

    def test_box_broadcasting(self):
        traj = Trajectory(np.zeros((3, 2, 3)), box=np.array([10.0, 10.0, 10.0]))
        assert traj.frame(1).box.shape == (3,)

    def test_box_validation(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((3, 2, 3)), box=np.zeros((2, 3)))


class TestLazyTrajectory:
    def test_roundtrip(self, tmp_path):
        traj = make_traj(8, 5, seed=9, name="lazy")
        path = tmp_path / "lazy.npy"
        write_npy(traj, path)
        lazy = LazyTrajectory(path)
        assert lazy.n_frames == 8
        assert lazy.n_atoms == 5
        assert len(lazy) == 8
        loaded = lazy.load()
        assert np.allclose(loaded.positions, traj.positions)

    def test_load_frames_range(self, tmp_path):
        traj = make_traj(10, 3)
        path = tmp_path / "t.npy"
        write_npy(traj, path)
        lazy = LazyTrajectory(path)
        chunk = lazy.load_frames(2, 5)
        assert chunk.n_frames == 3
        assert np.allclose(chunk.positions, traj.positions[2:5])
        with pytest.raises(IndexError):
            lazy.load_frames(5, 100)

    def test_single_frame(self, tmp_path):
        traj = make_traj(4, 3)
        path = tmp_path / "t.npy"
        write_npy(traj, path)
        lazy = LazyTrajectory(path)
        assert np.allclose(lazy.frame(-1).positions, traj.positions[-1])
        with pytest.raises(IndexError):
            lazy.frame(10)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            LazyTrajectory(tmp_path / "missing.npy")


class TestTrajectoryEnsemble:
    def test_basic(self):
        ens = TrajectoryEnsemble([make_traj(3, 4, name="a"), make_traj(3, 4, name="b")])
        assert ens.n_trajectories == 2
        assert len(ens) == 2
        assert ens.labels == ["a", "b"]
        assert ens.nbytes == 2 * 3 * 4 * 3 * 8

    def test_add_and_iterate(self):
        ens = TrajectoryEnsemble()
        ens.add(make_traj(2, 2, name="x"))
        assert [t.name for t in ens] == ["x"]
        assert ens[0].name == "x"

    def test_validate_consistent_atoms(self):
        ens = TrajectoryEnsemble([make_traj(3, 4), make_traj(5, 4)])
        assert ens.validate_consistent_atoms() == 4

    def test_validate_inconsistent_raises(self):
        ens = TrajectoryEnsemble([make_traj(3, 4), make_traj(3, 5)])
        with pytest.raises(ValueError):
            ens.validate_consistent_atoms()

    def test_validate_empty_raises(self):
        with pytest.raises(ValueError):
            TrajectoryEnsemble().validate_consistent_atoms()

    def test_as_arrays(self):
        ens = TrajectoryEnsemble([make_traj(3, 4)])
        arrays = ens.as_arrays()
        assert arrays[0].shape == (3, 4, 3)
