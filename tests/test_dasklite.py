"""Unit tests for the dasklite substrate (graphs, delayed, bag, client)."""

import numpy as np
import pytest

from repro.frameworks.dasklite import (
    Bag,
    DaskLiteClient,
    GraphError,
    KeyRef,
    SynchronousScheduler,
    TaskGraph,
    TaskSpec,
    ThreadedScheduler,
    compute,
    delayed,
    from_sequence,
    get_scheduler,
)


class TestTaskGraph:
    def test_literals_and_tasks(self):
        g = TaskGraph()
        g.add_literal("x", 10)
        g.add_task("y", TaskSpec(lambda v: v + 1, (KeyRef("x"),)))
        assert "x" in g and "y" in g
        assert len(g) == 2
        assert g.dependencies("y") == {"x"}
        assert g.dependencies("x") == set()

    def test_duplicate_key_raises(self):
        g = TaskGraph()
        g.add_literal("x", 1)
        with pytest.raises(GraphError):
            g.add_literal("x", 2)
        with pytest.raises(GraphError):
            g.add_task("x", TaskSpec(lambda: 1))

    def test_missing_dependency_raises(self):
        g = TaskGraph()
        g.add_task("y", TaskSpec(lambda v: v, (KeyRef("nope"),)))
        with pytest.raises(GraphError):
            g.dependencies("y")

    def test_nested_refs_found(self):
        g = TaskGraph()
        g.add_literal("a", 1)
        g.add_literal("b", 2)
        g.add_task("c", TaskSpec(lambda pair, m: pair[0] + pair[1] + m["k"],
                                 ([KeyRef("a"), KeyRef("b")],),
                                 {"m": {"k": KeyRef("a")}}))
        assert g.dependencies("c") == {"a", "b"}

    def test_topological_order_respects_deps(self):
        g = TaskGraph()
        g.add_literal("a", 1)
        g.add_task("b", TaskSpec(lambda v: v, (KeyRef("a"),)))
        g.add_task("c", TaskSpec(lambda v: v, (KeyRef("b"),)))
        order = g.topological_order(["c"])
        assert order.index("a") < order.index("b") < order.index("c")

    def test_culling(self):
        g = TaskGraph()
        g.add_literal("a", 1)
        g.add_task("b", TaskSpec(lambda v: v, (KeyRef("a"),)))
        g.add_task("unrelated", TaskSpec(lambda: 0))
        assert "unrelated" not in g.topological_order(["b"])

    def test_cycle_detection(self):
        g = TaskGraph()
        g.add_task("a", TaskSpec(lambda v: v, (KeyRef("b"),)))
        g.add_task("b", TaskSpec(lambda v: v, (KeyRef("a"),)))
        with pytest.raises(GraphError):
            g.topological_order(["a"])

    def test_non_callable_spec(self):
        with pytest.raises(TypeError):
            TaskSpec(42)


class TestSchedulers:
    def _diamond_graph(self):
        g = TaskGraph()
        g.add_literal("x", 2)
        g.add_task("left", TaskSpec(lambda v: v + 1, (KeyRef("x"),)))
        g.add_task("right", TaskSpec(lambda v: v * 10, (KeyRef("x"),)))
        g.add_task("top", TaskSpec(lambda a, b: a + b, (KeyRef("left"), KeyRef("right"))))
        return g

    @pytest.mark.parametrize("scheduler", [SynchronousScheduler(), ThreadedScheduler(3)])
    def test_diamond(self, scheduler):
        results = scheduler.execute(self._diamond_graph(), ["top"])
        assert results["top"] == 23
        assert scheduler.total_task_time >= 0.0

    def test_threaded_matches_sync_on_random_graphs(self):
        rng = np.random.default_rng(0)
        for trial in range(3):
            g = TaskGraph()
            g.add_literal("root", 1)
            keys = ["root"]
            for i in range(15):
                deps = rng.choice(keys, size=min(len(keys), 2), replace=False)
                key = f"n{trial}_{i}"
                g.add_task(key, TaskSpec(lambda *vs: sum(vs) + 1,
                                         tuple(KeyRef(d) for d in deps)))
                keys.append(key)
            targets = keys[-3:]
            sync = SynchronousScheduler().execute(g, targets)
            threaded = ThreadedScheduler(4).execute(g, targets)
            assert sync == threaded

    def test_get_scheduler(self):
        assert isinstance(get_scheduler("sync"), SynchronousScheduler)
        assert isinstance(get_scheduler("threads", 2), ThreadedScheduler)
        with pytest.raises(ValueError):
            get_scheduler("gpu")
        with pytest.raises(ValueError):
            ThreadedScheduler(0)


class TestDelayed:
    def test_simple_chain(self):
        inc = delayed(lambda x: x + 1, name="inc")
        assert inc(1).compute() == 2

    def test_nested_composition(self):
        inc = delayed(lambda x: x + 1)
        total = delayed(sum)([inc(1), inc(2), inc(3)])
        assert total.compute() == 9

    def test_kwargs_and_dict_args(self):
        f = delayed(lambda a, scale=1: a * scale)
        node = f(delayed(lambda: 5)(), scale=3)
        assert node.compute() == 15

    def test_compute_many_shares_graph(self):
        inc = delayed(lambda x: x + 1)
        a, b = inc(1), inc(2)
        assert compute(a, b) == (2, 3)
        assert compute() == ()

    def test_compute_rejects_non_delayed(self):
        with pytest.raises(TypeError):
            compute(42)

    def test_threaded_scheduler_through_compute(self):
        inc = delayed(lambda x: x + 1)
        nodes = [inc(i) for i in range(20)]
        assert compute(*nodes, scheduler="threads", workers=4) == tuple(range(1, 21))

    def test_visualize_keys(self):
        inc = delayed(lambda x: x + 1, name="incr")
        node = inc(inc(0))
        keys = node.visualize_keys()
        assert len(keys) == 2
        assert all("incr" in k for k in keys)


class TestBag:
    def test_from_sequence_and_compute(self):
        bag = from_sequence(range(10), npartitions=3)
        assert bag.npartitions == 3
        assert bag.compute() == list(range(10))

    def test_map_filter(self):
        bag = from_sequence(range(10), npartitions=4)
        assert bag.map(lambda x: x * 2).filter(lambda x: x > 10).compute() == [12, 14, 16, 18]

    def test_map_partitions_and_flatten(self):
        bag = from_sequence(range(6), npartitions=2)
        assert bag.map_partitions(lambda part: [sum(part)]).compute() == [3, 12]
        assert bag.map(lambda x: [x, x]).flatten().count() == 12

    def test_fold(self):
        bag = from_sequence(range(1, 11), npartitions=3)
        assert bag.fold(lambda a, b: a + b) == 55
        assert bag.fold(lambda a, b: a + b, initial=100) == 155

    def test_fold_empty(self):
        bag = from_sequence([1], npartitions=1).filter(lambda x: x > 5)
        assert bag.fold(lambda a, b: a + b, initial=0) == 0
        with pytest.raises(ValueError):
            bag.fold(lambda a, b: a + b)

    def test_frequencies_and_groupby(self):
        bag = from_sequence(["a", "b", "a", "c", "a"], npartitions=2)
        assert bag.frequencies() == {"a": 3, "b": 1, "c": 1}
        groups = bag.groupby(lambda s: s)
        assert sorted(groups["a"]) == ["a", "a", "a"]

    def test_empty_bag_rejected(self):
        with pytest.raises(ValueError):
            Bag(TaskGraph(), [])


class TestDaskLiteClient:
    def test_submit_and_gather(self):
        client = DaskLiteClient(executor="serial")
        futures = [client.submit(lambda x: x * 3, i) for i in range(4)]
        assert all(f.done() for f in futures)
        assert client.gather(futures) == [0, 3, 6, 9]

    def test_map_returns_futures(self):
        client = DaskLiteClient(executor="threads", workers=2)
        futures = client.map(lambda x: x + 1, range(5))
        assert [f.result() for f in futures] == [1, 2, 3, 4, 5]

    def test_scatter_list_splits_elementwise(self):
        client = DaskLiteClient(executor="serial")
        scattered = client.scatter([np.zeros(10), np.zeros(10)])
        assert scattered.broadcast is False
        assert len(scattered.pieces) == 2

    def test_scatter_broadcast_keeps_whole(self):
        client = DaskLiteClient(executor="serial")
        data = np.zeros((100, 3))
        scattered = client.scatter(data, broadcast=True)
        assert scattered.broadcast is True
        assert scattered.value is data
        assert client.metrics.bytes_broadcast >= data.nbytes

    def test_map_tasks_uniform_surface(self):
        client = DaskLiteClient(executor="threads", workers=2)
        assert client.map_tasks(lambda x: -x, [1, 2, 3]) == [-1, -2, -3]
        assert client.metrics.tasks_completed == 3
        assert client.map_tasks(lambda x: x, []) == []

    def test_delayed_and_bag_entry_points(self):
        client = DaskLiteClient(executor="serial")
        inc = client.delayed(lambda x: x + 1)
        assert client.compute(inc(1), inc(2)) == (2, 3)
        bag = client.bag_from_sequence(range(6), npartitions=2)
        assert client.compute_bag(bag.map(lambda x: x * 2)) == [0, 2, 4, 6, 8, 10]

    def test_unresolved_future_raises(self):
        from repro.frameworks.dasklite.distributed import Future
        with pytest.raises(RuntimeError):
            Future("pending").result()
