"""Unit and integration tests for task-parallel PSA."""

import numpy as np
import pytest

from repro.core.psa import (
    PSA_METRICS,
    execute_psa_block,
    make_psa_tasks,
    psa_serial,
    run_psa,
)
from repro.frameworks import make_framework
from repro.trajectory import write_ensemble


class TestMakePsaTasks:
    def test_task_count_matches_partitioning(self, small_ensemble):
        tasks = make_psa_tasks(small_ensemble, group_size=2)
        # 6 trajectories, chunks of 2 -> k=3 -> 6 upper-triangular blocks
        assert len(tasks) == 6

    def test_n_tasks_target(self, small_ensemble):
        tasks = make_psa_tasks(small_ensemble, n_tasks=3)
        assert 1 <= len(tasks) <= 8

    def test_group_size_and_n_tasks_exclusive(self, small_ensemble):
        with pytest.raises(ValueError):
            make_psa_tasks(small_ensemble, group_size=2, n_tasks=3)

    def test_unknown_metric(self, small_ensemble):
        with pytest.raises(ValueError):
            make_psa_tasks(small_ensemble, metric="euclid")

    def test_single_trajectory_rejected(self, small_ensemble):
        from repro.trajectory import TrajectoryEnsemble
        with pytest.raises(ValueError):
            make_psa_tasks(TrajectoryEnsemble([small_ensemble[0]]))

    def test_paths_must_match_count(self, small_ensemble):
        with pytest.raises(ValueError):
            make_psa_tasks(small_ensemble, paths=["only_one.npy"])

    def test_task_nbytes_positive(self, small_ensemble):
        tasks = make_psa_tasks(small_ensemble, group_size=3)
        assert all(t.nbytes > 0 for t in tasks)


class TestExecutePsaBlock:
    def test_covers_all_pairs_once(self, small_ensemble):
        tasks = make_psa_tasks(small_ensemble, group_size=2)
        seen = set()
        for task in tasks:
            for i, j, d in execute_psa_block(task):
                assert d >= 0.0
                assert (i, j) not in seen
                seen.add((i, j))
        n = small_ensemble.n_trajectories
        assert seen == {(i, j) for i in range(n) for j in range(i + 1, n)}


class TestPsaSerial:
    def test_matrix_properties(self, small_ensemble):
        dm = psa_serial(small_ensemble)
        assert dm.n == 6
        assert dm.is_symmetric()
        assert np.allclose(np.diag(dm.values), 0.0)
        assert np.all(dm.values >= 0.0)

    def test_recovers_cluster_structure(self, small_ensemble):
        """The clustered ensemble's two families must be recoverable."""
        dm = psa_serial(small_ensemble)
        # family 0 = members 0-2, family 1 = members 3-5
        within = max(dm[0, 1], dm[0, 2], dm[1, 2], dm[3, 4], dm[3, 5], dm[4, 5])
        across = min(dm[i, j] for i in range(3) for j in range(3, 6))
        assert across > within
        clusters = dm.cluster_by_threshold((within + across) / 2.0)
        assert sorted(tuple(c) for c in clusters) == [(0, 1, 2), (3, 4, 5)]

    def test_unknown_metric(self, small_ensemble):
        with pytest.raises(ValueError):
            psa_serial(small_ensemble, metric="bogus")

    @pytest.mark.parametrize("metric", sorted(PSA_METRICS))
    def test_all_metrics_run(self, small_ensemble, metric):
        dm = psa_serial(small_ensemble, metric=metric)
        assert dm.is_symmetric()


class TestRunPsa:
    def test_matches_serial_on_every_framework(self, small_ensemble, any_framework):
        reference = psa_serial(small_ensemble)
        matrix, report = run_psa(small_ensemble, any_framework, group_size=2)
        assert np.allclose(matrix.values, reference.values, atol=1e-9)
        assert report.framework == any_framework.name
        assert report.n_tasks == 6
        assert report.wall_time_s > 0.0

    def test_serial_executor_also_correct(self, small_ensemble, serial_framework):
        reference = psa_serial(small_ensemble)
        matrix, _report = run_psa(small_ensemble, serial_framework, n_tasks=4)
        assert np.allclose(matrix.values, reference.values, atol=1e-9)

    def test_from_files(self, small_ensemble, tmp_path):
        """Tasks that read their trajectories from disk give the same matrix."""
        paths = write_ensemble(small_ensemble, tmp_path / "ens", fmt="npy")
        fw = make_framework("dasklite", executor="threads", workers=2)
        matrix, report = run_psa(small_ensemble, fw, group_size=3, paths=paths)
        assert np.allclose(matrix.values, psa_serial(small_ensemble).values, atol=1e-9)
        fw.close()

    def test_earlybreak_metric_consistent(self, small_ensemble):
        fw = make_framework("mpilite", workers=2)
        fast, _ = run_psa(small_ensemble, fw, group_size=3, metric="hausdorff_earlybreak")
        assert np.allclose(fast.values, psa_serial(small_ensemble).values, atol=1e-9)
        fw.close()

    def test_report_parameters(self, small_ensemble):
        fw = make_framework("sparklite", executor="serial")
        _matrix, report = run_psa(small_ensemble, fw, group_size=2)
        assert report.parameters["n_trajectories"] == 6
        assert report.parameters["metric"] == "hausdorff"
        fw.close()
