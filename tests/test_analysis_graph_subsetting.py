"""Unit tests for graph kernels and sub-setting helpers."""

import numpy as np
import pytest

from repro.analysis.graph import (
    DisjointSet,
    components_to_labels,
    connected_components,
    connected_components_networkx,
    merge_component_sets,
    normalize_components,
)
from repro.analysis.subsetting import (
    stride_frames,
    subset_atoms,
    subset_ensemble,
    subset_frames,
    subset_trajectory,
    within_sphere,
)
from repro.trajectory import Topology, Trajectory, TrajectoryEnsemble


class TestDisjointSet:
    def test_initial_singletons(self):
        dsu = DisjointSet(4)
        assert len(dsu.groups()) == 4

    def test_union_and_find(self):
        dsu = DisjointSet(5)
        assert dsu.union(0, 1) is True
        assert dsu.union(1, 2) is True
        assert dsu.union(0, 2) is False  # already together
        assert dsu.find(0) == dsu.find(2)
        assert dsu.find(3) != dsu.find(0)

    def test_groups_partition_all_elements(self):
        dsu = DisjointSet(6)
        dsu.union(0, 5)
        dsu.union(2, 3)
        groups = dsu.groups()
        flat = sorted(int(x) for g in groups for x in g)
        assert flat == list(range(6))

    def test_negative_size(self):
        with pytest.raises(ValueError):
            DisjointSet(-1)

    def test_empty(self):
        assert DisjointSet(0).groups() == []


class TestConnectedComponents:
    def test_two_components_plus_singleton(self):
        edges = np.array([[0, 1], [1, 2], [3, 4]])
        comps = connected_components(edges, 6)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 3]

    def test_exclude_singletons(self):
        edges = np.array([[0, 1]])
        comps = connected_components(edges, 4, include_singletons=False)
        assert len(comps) == 1
        assert comps[0].tolist() == [0, 1]

    def test_no_edges(self):
        comps = connected_components(np.empty((0, 2)), 3)
        assert len(comps) == 3

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            connected_components(np.array([[0, 9]]), 5)

    def test_sorted_by_size_descending(self):
        edges = np.array([[0, 1], [2, 3], [3, 4], [4, 5]])
        comps = connected_components(edges, 6)
        assert [len(c) for c in comps] == [4, 2]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        edges = rng.integers(0, n, size=(60, 2))
        ours = connected_components(edges, n)
        theirs = connected_components_networkx(edges, n)
        assert [c.tolist() for c in ours] == [c.tolist() for c in theirs]


class TestComponentsToLabels:
    def test_basic(self):
        comps = [np.array([0, 1, 2]), np.array([4])]
        labels = components_to_labels(comps, 6)
        assert labels.tolist() == [0, 0, 0, -1, 1, -1]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            components_to_labels([np.array([10])], 5)


class TestNormalizeAndMerge:
    def test_normalize_orders_by_size(self):
        comps = normalize_components([[5], [1, 2, 2], [3, 4]])
        assert [c.tolist() for c in comps] == [[1, 2], [3, 4], [5]]

    def test_merge_joins_overlapping_partials(self):
        # task A found {0,1,2}; task B found {2,3}; task C found {5,6}
        merged = merge_component_sets([[[0, 1, 2]], [[2, 3]], [[5, 6]]])
        assert [c.tolist() for c in merged] == [[0, 1, 2, 3], [5, 6]]

    def test_merge_empty(self):
        assert merge_component_sets([]) == []
        assert merge_component_sets([[], []]) == []

    def test_merge_equals_global_components(self, rng):
        """Partial components per edge-block, merged, equal global components."""
        n = 60
        edges = rng.integers(0, n, size=(90, 2))
        expected = [c.tolist() for c in connected_components(edges, n,
                                                             include_singletons=False)]
        # split the edges into 4 blocks and compute partial components per block
        partial_sets = []
        for chunk in np.array_split(edges, 4):
            comps = connected_components(chunk, n, include_singletons=False)
            partial_sets.append([c.tolist() for c in comps])
        merged = [c.tolist() for c in merge_component_sets(partial_sets)]
        assert merged == expected


class TestSubsetting:
    @pytest.fixture()
    def positions(self, rng):
        return rng.normal(size=(6, 10, 3))

    def test_subset_atoms(self, positions):
        sub = subset_atoms(positions, [1, 3, 5])
        assert sub.shape == (6, 3, 3)
        assert np.allclose(sub[:, 1], positions[:, 3])

    def test_subset_atoms_out_of_range(self, positions):
        with pytest.raises(IndexError):
            subset_atoms(positions, [99])

    def test_subset_frames(self, positions):
        sub = subset_frames(positions, [0, 5])
        assert sub.shape == (2, 10, 3)

    def test_subset_frames_out_of_range(self, positions):
        with pytest.raises(IndexError):
            subset_frames(positions, [7])

    def test_stride(self, positions):
        assert stride_frames(positions, 2).shape[0] == 3
        assert stride_frames(positions, 2, offset=1).shape[0] == 3
        with pytest.raises(ValueError):
            stride_frames(positions, 0)

    def test_subset_trajectory_composition(self, rng):
        top = Topology.from_names(["P", "CA", "P", "CA"])
        traj = Trajectory(rng.normal(size=(8, 4, 3)), topology=top)
        sub = subset_trajectory(traj, selection="name P", frame_slice=slice(0, 6),
                                stride=2)
        assert sub.n_atoms == 2
        assert sub.n_frames == 3

    def test_subset_ensemble(self, rng):
        top = Topology.from_names(["P", "CA"])
        ens = TrajectoryEnsemble([
            Trajectory(rng.normal(size=(4, 2, 3)), topology=top, name=f"t{i}")
            for i in range(3)
        ])
        out = subset_ensemble(ens, selection="name P", stride=2)
        assert out.n_trajectories == 3
        assert out[0].n_atoms == 1
        assert out[0].n_frames == 2

    def test_within_sphere(self):
        positions = np.array([[0.0, 0, 0], [1.0, 0, 0], [10.0, 0, 0]])
        assert within_sphere(positions, [0, 0, 0], 2.0).tolist() == [0, 1]
        with pytest.raises(ValueError):
            within_sphere(positions, [0, 0, 0], 0.0)
