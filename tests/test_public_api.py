"""Tests for the top-level package surface and framework factory."""

import numpy as np
import pytest

import repro
from repro.frameworks import (
    FRAMEWORK_NAMES,
    DaskLiteClient,
    MPIFramework,
    PilotFramework,
    SparkLiteContext,
    make_framework,
)


class TestPackageSurface:
    def test_version_and_paper(self):
        assert repro.__version__ == "1.0.0"
        assert "ICPP 2018" in repro.PAPER

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_entry_points_exported(self):
        assert callable(repro.psa)
        assert callable(repro.leaflet_finder)
        assert callable(repro.recommend_framework)
        assert callable(repro.make_framework)


class TestMakeFramework:
    @pytest.mark.parametrize("alias,cls", [
        ("spark", SparkLiteContext),
        ("sparklite", SparkLiteContext),
        ("dask", DaskLiteClient),
        ("dasklite", DaskLiteClient),
        ("radical-pilot", PilotFramework),
        ("RP", PilotFramework),
        ("pilot", PilotFramework),
        ("mpi", MPIFramework),
        ("MPI4PY", MPIFramework),
        ("mpilite", MPIFramework),
    ])
    def test_aliases(self, alias, cls):
        fw = make_framework(alias, executor="serial")
        assert isinstance(fw, cls)
        fw.close()

    def test_unknown_framework(self):
        with pytest.raises(ValueError):
            make_framework("flink")

    def test_canonical_names_constant(self):
        assert set(FRAMEWORK_NAMES) == {"sparklite", "dasklite", "pilot", "mpilite"}

    def test_every_framework_has_unique_name(self):
        names = set()
        for canonical in FRAMEWORK_NAMES:
            fw = make_framework(canonical, executor="serial")
            names.add(fw.name)
            fw.close()
        assert len(names) == 4

    def test_workers_forwarded(self):
        fw = make_framework("dask", executor="threads", workers=3)
        assert fw.executor.workers == 3
        fw.close()


class TestEndToEndViaTopLevelImports:
    def test_docstring_quickstart_pattern(self):
        ensemble = repro.paper_psa_ensemble("small", 6, n_frames=8, scale=0.005)
        matrix, report = repro.psa(ensemble, framework="dask", workers=2, n_tasks=4)
        assert matrix.n == 6
        assert report.framework == "dasklite"

    def test_leaflet_pattern(self):
        from repro.trajectory import BilayerSpec
        universe, truth = repro.make_bilayer_universe(BilayerSpec(n_atoms=200, seed=9))
        result, _report = repro.leaflet_finder(universe, framework="mpi", workers=2,
                                               approach="parallel-cc", n_tasks=4)
        assert result.agreement_with(truth) == 1.0

    def test_paper_leaflet_system_shapes(self):
        positions, labels = repro.paper_leaflet_system("262k", scale=0.001)
        assert positions.shape[0] == labels.shape[0] == 262
        assert positions.shape[1] == 3
        assert set(np.unique(labels)) == {0, 1}
