"""Chaos suite: injected faults across every substrate and data plane.

The resilience layer's acceptance criteria live here.  For each of the
four substrates × both data planes, a worker is killed (really, for the
process pools; simulated as :class:`WorkerLost` for in-process
executors) or a kernel made to raise mid-run, and the run must finish
with results *bit-identical* to a fault-free run, exact
``tasks_retried`` / ``tasks_lost`` metrics, and no ``/dev/shm`` or
spill-file leaks.  The pool executors additionally cover the real
failure machinery: SIGKILL mid-task and between publish and adoption
(the orphan-segment sweep), hung workers reaped by the heartbeat
monitor, unresolvable result blocks re-executed, and spilled payload
blocks unlinked or corrupted under a live run and healed from their
registered sources.

The spill-writer failure tests reproduce (and pin the fix for) the
latent leak where an eviction waiting on backpressure when the writer
died would enqueue its victim into a queue nobody drains — leaving the
block name in the registry's ``enqueued`` state forever with residency
accounting already discounted.

Everything here is deterministic: faults are claimed at first-attempt
dispatch in dispatch order and consumed when they fire, so a recovered
run continues fault-free and re-runs are reproducible.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import leaflet_finder, psa
from repro.frameworks import make_framework
from repro.frameworks.checkpoint import StaleJournal
from repro.frameworks.executors import ProcessExecutor, SharedMemoryExecutor
from repro.frameworks.faults import (
    BlockLost,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    InjectedFault,
    WorkerLost,
    as_injector,
    clear_heartbeat,
    live_heartbeat_pids,
    reap_dead_heartbeats,
    stale_worker_pids,
    write_heartbeat,
)
from repro.frameworks.shm import (
    PUBLISH_PREFIX,
    SharedMemoryStore,
    sweep_orphan_segments,
)
from repro.trajectory import BilayerSpec, EnsembleSpec, make_bilayer, make_clustered_ensemble

pytestmark = pytest.mark.faults

FRAMEWORK_NAMES = ("sparklite", "dasklite", "pilot", "mpilite")
DATA_PLANES = ("pickle", "shm")


def shm_entries():
    """Current /dev/shm segment names (empty set if the dir is absent)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-Linux fallback: nothing to compare
        return set()


@pytest.fixture(scope="module")
def chaos_ensemble():
    """A tiny PSA ensemble: enough tasks for mid-run faults, fast to run."""
    return make_clustered_ensemble(
        EnsembleSpec(n_trajectories=5, n_frames=8, n_atoms=16, n_clusters=2, seed=42)
    )


@pytest.fixture(scope="module")
def reference_matrix(chaos_ensemble):
    """The fault-free PSA matrix every chaos run must reproduce exactly."""
    matrix, _ = psa(chaos_ensemble, "dasklite", executor="serial")
    return matrix.values.copy()


@pytest.fixture(scope="module")
def chaos_bilayer():
    """A small bilayer plus its fault-free leaflet component sizes."""
    positions, _ = make_bilayer(BilayerSpec(n_atoms=240, seed=9))
    result, _ = leaflet_finder(positions, "dasklite", executor="serial",
                               approach="tree-search", n_tasks=6)
    return positions, result.sizes


def square(x):
    return x * x


def slow_square(x):
    """A task long enough for the speculation median to be meaningful."""
    time.sleep(0.05)
    return x * x


def make_block(x):
    """A task returning an ndarray (rides the result plane on shm)."""
    return np.full((12, 12), float(x))


def scale_block(a):
    """A task over an ndarray payload (rides the shm plane both ways)."""
    return a * 2.0


def flaky_once(marker_dir):
    """A task function that fails its first invocation per marker dir."""
    def task(x):
        marker = os.path.join(marker_dir, "fired")
        if not os.path.exists(marker):
            with open(marker, "w") as fh:
                fh.write("x")
            raise OSError("transient failure")
        return x * x
    return task


# --------------------------------------------------------------------------- #
# fault-spec / injector / policy plumbing
# --------------------------------------------------------------------------- #
class TestFaultPlumbing:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode")
        with pytest.raises(ValueError, match="at_task"):
            FaultSpec("raise", at_task=-1)
        with pytest.raises(ValueError, match="when"):
            FaultSpec("kill_worker", when="later")
        with pytest.raises(ValueError, match="target"):
            FaultSpec("unlink_block", target="everything")
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("delay", delay_s=-1.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(on_lost_block="ignore")

    def test_policy_backoff_is_deterministic(self):
        policy = FaultPolicy(backoff_s=0.5, backoff_factor=3.0)
        assert policy.backoff_for(0) == 0.5
        assert policy.backoff_for(1) == 1.5
        assert policy.backoff_for(2) == 4.5
        assert FaultPolicy().backoff_for(5) == 0.0

    def test_policy_should_retry_taxonomy(self):
        policy = FaultPolicy(max_retries=1, retry_on=(OSError,))
        assert policy.should_retry(WorkerLost("x"), 0)          # always transient
        assert policy.should_retry(OSError("x"), 0)
        assert not policy.should_retry(ValueError("x"), 0)      # not in retry_on
        assert not policy.should_retry(OSError("x"), 1)         # budget exhausted
        assert policy.should_retry(BlockLost("seg"), 0)
        strict = FaultPolicy(on_lost_block="raise")
        assert not strict.should_retry(BlockLost("seg"), 0)

    def test_injector_claims_first_attempts_in_dispatch_order(self):
        injector = FaultInjector(FaultSpec("raise", at_task=2),
                                 FaultSpec("delay", at_task=0))
        assert injector.claim(0).kind == "delay"       # dispatch 0
        assert injector.claim(1) is None               # retries never claim
        assert injector.claim(0) is None               # dispatch 1
        assert injector.claim(0).kind == "raise"       # dispatch 2
        assert injector.claim(0) is None               # consumed
        assert [s.kind for s in injector.fired] == ["delay", "raise"]
        injector.reset()
        assert len(injector.pending) == 2

    def test_unclaim_rolls_back_a_dispatch(self):
        injector = FaultInjector(FaultSpec("raise", at_task=1))
        assert injector.claim(0) is None                  # dispatch 0
        spec = injector.claim(0)                          # dispatch 1 fires
        assert spec is not None
        injector.unclaim(spec)                            # dispatch never ran
        assert injector.fired == []
        assert injector.claim(0).kind == "raise"          # dispatch 1, again
        # rolling back a no-fault claim only rewinds the counter
        injector2 = FaultInjector(FaultSpec("raise", at_task=1))
        assert injector2.claim(0) is None
        injector2.unclaim(None)
        assert injector2.claim(0) is None                 # still dispatch 0
        assert injector2.claim(0).kind == "raise"

    def test_framework_preserves_prebuilt_executor_config(self):
        from repro.frameworks.executors import SerialExecutor

        ex = SerialExecutor(fault_policy=FaultPolicy(max_retries=5))
        fw = make_framework("dasklite", executor=ex,
                            faults=FaultSpec("raise", at_task=0))
        try:
            # the executor's policy survives a framework that only added
            # an injector — and reaches the framework's own retry wrapper
            assert ex.fault_policy is not None
            assert ex.fault_policy.max_retries == 5
            assert fw.fault_policy is ex.fault_policy
            results = fw.map_tasks(square, list(range(3)))
            assert results == [0, 1, 4]
            assert fw.metrics.tasks_retried == 1
        finally:
            fw.close()

    def test_as_injector_coercions(self):
        assert as_injector(None) is None
        spec = FaultSpec("raise")
        assert as_injector(spec).pending == (spec,)
        injector = FaultInjector(spec)
        assert as_injector(injector) is injector
        assert len(as_injector([spec, FaultSpec("delay", at_task=1)]).pending) == 2
        with pytest.raises(TypeError):
            FaultInjector("raise")


# --------------------------------------------------------------------------- #
# the substrate x plane chaos matrix (acceptance criterion)
# --------------------------------------------------------------------------- #
class TestChaosMatrix:
    """One injected fault per run; results bit-identical, metrics exact."""

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_worker_kill_mid_psa(self, name, plane, chaos_ensemble,
                                 reference_matrix, tmp_path):
        before = shm_entries()
        matrix, report = psa(
            chaos_ensemble, name, executor="serial", data_plane=plane,
            spill_dir=str(tmp_path), fault_policy=FaultPolicy(),
            faults=FaultSpec("kill_worker", at_task=2))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried == 1
        assert report.metrics.tasks_lost == 1
        assert shm_entries() == before
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_kernel_raise_mid_psa(self, name, plane, chaos_ensemble,
                                  reference_matrix, tmp_path):
        before = shm_entries()
        matrix, report = psa(
            chaos_ensemble, name, executor="serial", data_plane=plane,
            spill_dir=str(tmp_path), fault_policy=FaultPolicy(),
            faults=FaultSpec("raise", at_task=1))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried == 1
        assert report.metrics.tasks_lost == 0    # an in-task raise is not a loss
        assert shm_entries() == before
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_spilled_block_unlinked_under_live_run(self, name, chaos_ensemble,
                                                   reference_matrix, tmp_path):
        """Unlink a spilled payload .blk mid-run: healed from its source."""
        before = shm_entries()
        matrix, report = psa(
            chaos_ensemble, name, executor="serial", data_plane="shm",
            store_capacity_bytes=4096, spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(),
            faults=FaultSpec("unlink_block", at_task=0))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried >= 1
        assert report.metrics.tasks_lost >= 1
        assert shm_entries() == before
        assert os.listdir(tmp_path) == []

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_worker_kill_mid_leaflet(self, name, plane, chaos_bilayer):
        positions, expected_sizes = chaos_bilayer
        before = shm_entries()
        result, report = leaflet_finder(
            positions, name, executor="serial", data_plane=plane,
            approach="tree-search", n_tasks=6, fault_policy=FaultPolicy(),
            faults=FaultSpec("kill_worker", at_task=3))
        assert result.sizes == expected_sizes
        assert report.metrics.tasks_retried >= 1
        assert report.metrics.tasks_lost >= 1
        assert shm_entries() == before

    def test_fault_free_run_reports_zero_retries(self, chaos_ensemble,
                                                 reference_matrix):
        matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                             fault_policy=FaultPolicy())
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried == 0
        assert report.metrics.tasks_lost == 0
        assert report.metrics.recovery_seconds == 0.0


# --------------------------------------------------------------------------- #
# policy gating
# --------------------------------------------------------------------------- #
class TestPolicyGating:
    def test_without_policy_faults_are_fatal(self):
        fw = make_framework("dasklite", executor="serial",
                            faults=FaultSpec("raise", at_task=1))
        try:
            with pytest.raises(InjectedFault):
                fw.map_tasks(square, list(range(4)))
        finally:
            fw.close()

    def test_retry_on_excludes_the_exception(self):
        fw = make_framework("dasklite", executor="serial",
                            fault_policy=FaultPolicy(retry_on=(OSError,)),
                            faults=FaultSpec("raise", at_task=0))
        try:
            with pytest.raises(InjectedFault):
                fw.map_tasks(square, list(range(3)))
        finally:
            fw.close()

    def test_exhausted_budget_surfaces_the_failure(self, tmp_path):
        fw = make_framework("mpilite", executor="serial",
                            fault_policy=FaultPolicy(max_retries=0),
                            faults=FaultSpec("kill_worker", at_task=0))
        try:
            with pytest.raises(Exception) as info:
                fw.map_tasks(square, list(range(3)))
        finally:
            fw.close()
        assert "injected worker kill" in str(info.value)

    def test_user_code_failures_retry_on_every_substrate(self, tmp_path):
        """A genuinely flaky task (no injector) recovers everywhere."""
        for name in FRAMEWORK_NAMES:
            marker = tmp_path / name
            marker.mkdir()
            fw = make_framework(name, executor="serial",
                                fault_policy=FaultPolicy(retry_on=(OSError,)))
            try:
                results = fw.map_tasks(flaky_once(str(marker)), list(range(4)))
                assert results == [0, 1, 4, 9]
                assert fw.metrics.tasks_retried == 1
                assert fw.metrics.tasks_lost == 0
            finally:
                fw.close()

    def test_deterministic_backoff_lands_in_recovery_seconds(self):
        fw = make_framework("dasklite", executor="serial",
                            fault_policy=FaultPolicy(backoff_s=0.05),
                            faults=FaultSpec("raise", at_task=0))
        try:
            fw.map_tasks(square, list(range(2)))
            assert fw.metrics.recovery_seconds >= 0.05
        finally:
            fw.close()


# --------------------------------------------------------------------------- #
# real process-pool failures
# --------------------------------------------------------------------------- #
class TestRealWorkerDeath:
    def test_process_pool_sigkill_recovers_exactly(self):
        ex = ProcessExecutor(workers=1, fault_policy=FaultPolicy(),
                             fault_injector=FaultInjector(
                                 FaultSpec("kill_worker", at_task=2)))
        try:
            results = ex.map_tasks(square, list(range(6)))
            assert results == [0, 1, 4, 9, 16, 25]
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
            assert ex.total_recovery_seconds > 0.0
        finally:
            ex.shutdown()

    def test_process_pool_sigkill_with_spare_workers(self):
        ex = ProcessExecutor(workers=2, fault_policy=FaultPolicy(),
                             fault_injector=FaultInjector(
                                 FaultSpec("kill_worker", at_task=3)))
        try:
            results = ex.map_tasks(square, list(range(10)))
            assert results == [x * x for x in range(10)]
            assert ex.total_tasks_lost >= 1
            assert ex.total_tasks_retried >= 1
        finally:
            ex.shutdown()

    def test_unrecoverable_worker_death_raises_worker_lost(self):
        ex = ProcessExecutor(workers=1, fault_policy=FaultPolicy(max_retries=0),
                             fault_injector=FaultInjector(
                                 FaultSpec("kill_worker", at_task=1)))
        try:
            with pytest.raises(WorkerLost):
                ex.map_tasks(square, list(range(4)))
        finally:
            ex.shutdown()

    def test_shm_pool_kill_before_task(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=1, fault_policy=FaultPolicy(),
                                  fault_injector=FaultInjector(
                                      FaultSpec("kill_worker", at_task=1)))
        try:
            results = ex.map_tasks(make_block, list(range(4)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_lost == 1
        finally:
            ex.shutdown()
        assert shm_entries() == before

    def test_shm_pool_kill_between_publish_and_adoption(self):
        """The crash window SIGKILL leaves: pid-keyed orphans get swept."""
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=1, fault_policy=FaultPolicy(),
                                  fault_injector=FaultInjector(
                                      FaultSpec("kill_worker", at_task=1,
                                                when="after_publish")))
        try:
            results = ex.map_tasks(make_block, list(range(4)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
        finally:
            ex.shutdown()
        leaked = {name for name in shm_entries() - before
                  if name.startswith(PUBLISH_PREFIX)}
        assert not leaked
        assert shm_entries() == before

    def test_heartbeat_monitor_reaps_hung_worker(self):
        start = time.monotonic()
        ex = SharedMemoryExecutor(
            workers=1,
            fault_policy=FaultPolicy(heartbeat_timeout_s=0.5,
                                     heartbeat_interval_s=0.05),
            fault_injector=FaultInjector(
                FaultSpec("delay", at_task=1, delay_s=60.0)))
        try:
            results = ex.map_tasks(square, list(range(3)))
            assert results == [0, 1, 4]
            assert ex.total_tasks_lost == 1
            assert time.monotonic() - start < 30.0  # nowhere near the 60s hang
        finally:
            ex.shutdown()

    def test_psa_on_shm_executor_survives_sigkill(self, chaos_ensemble,
                                                  reference_matrix):
        # pilot physically executes its units on the pool (sparklite and
        # dasklite schedule on closures that do not pickle into workers)
        before = shm_entries()
        matrix, report = psa(chaos_ensemble, "pilot", executor="shm",
                             workers=2, data_plane="shm",
                             fault_policy=FaultPolicy(),
                             faults=FaultSpec("kill_worker", at_task=2))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried >= 1
        assert report.metrics.tasks_lost >= 1
        assert shm_entries() == before


# --------------------------------------------------------------------------- #
# lost and corrupted blocks
# --------------------------------------------------------------------------- #
class TestLostBlocks:
    def test_lost_result_segment_reexecutes_task(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=1, fault_policy=FaultPolicy(),
                                  fault_injector=FaultInjector(
                                      FaultSpec("unlink_block", at_task=1,
                                                target="result")))
        try:
            results = ex.map_tasks(make_block, list(range(3)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
        finally:
            ex.shutdown()
        assert shm_entries() == before

    def test_corrupted_spill_file_heals_from_source(self, chaos_ensemble,
                                                    reference_matrix, tmp_path):
        before = shm_entries()
        matrix, report = psa(
            chaos_ensemble, "dasklite", executor="serial", data_plane="shm",
            store_capacity_bytes=4096, spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(),
            faults=FaultSpec("corrupt_block", at_task=0))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_retried >= 1
        assert shm_entries() == before
        assert os.listdir(tmp_path) == []

    def test_on_lost_block_raise_propagates(self, chaos_ensemble, tmp_path):
        with pytest.raises(BlockLost):
            psa(chaos_ensemble, "dasklite", executor="serial", data_plane="shm",
                store_capacity_bytes=4096, spill_dir=str(tmp_path),
                fault_policy=FaultPolicy(on_lost_block="raise"),
                faults=FaultSpec("unlink_block", at_task=0))

    def test_recover_spilled_block_contract(self, tmp_path):
        rng = np.random.default_rng(3)
        store = SharedMemoryStore(capacity_bytes=4000, spill_dir=str(tmp_path),
                                  spill_async=False)
        try:
            arrays = [rng.random((25, 20)) for _ in range(3)]  # 4000 bytes each
            refs = [store.put(a) for a in arrays]
            spilled = [r for r in refs
                       if os.path.exists(os.path.join(str(tmp_path),
                                                      r.segment + ".blk"))]
            assert spilled, "capacity 4000 must have spilled at least one block"
            victim = spilled[0]
            os.remove(os.path.join(str(tmp_path), victim.segment + ".blk"))
            assert store.recover_spilled_block(victim.segment)
            expected = arrays[refs.index(victim)]
            assert np.array_equal(victim.resolve(), expected)
            # unknown or resident names cannot be healed
            assert not store.recover_spilled_block("no-such-block")
            resident = [r for r in refs if r not in spilled]
            if resident:
                assert not store.recover_spilled_block(resident[0].segment)
        finally:
            store.cleanup()

    def test_block_lost_error_pickles_with_context(self):
        import pickle

        err = BlockLost("seg-1", "/tmp/spill")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.segment == "seg-1"
        assert clone.spill_dir == "/tmp/spill"
        assert isinstance(clone, FileNotFoundError)


# --------------------------------------------------------------------------- #
# the spill-writer backpressure leak (latent bug, now fixed)
# --------------------------------------------------------------------------- #
class TestSpillWriterFailure:
    def _failing_store(self, tmp_path, release, entered):
        """A write-behind store whose first spill write blocks, then fails."""
        store = SharedMemoryStore(capacity_bytes=4000, spill_dir=str(tmp_path),
                                  spill_async=True, spill_queue_depth=1)

        def broken_write(name, segment):
            entered.set()
            release.wait(timeout=30.0)
            raise OSError("spill device gone")

        store._write_block = broken_write
        return store

    def test_backpressure_eviction_does_not_leak_into_dead_queue(self, tmp_path):
        """The reproduced leak: an eviction that was waiting on backpressure
        when the writer died must reinstate its victim, not enqueue it."""
        release = threading.Event()
        entered = threading.Event()
        store = self._failing_store(tmp_path, release, entered)
        rng = np.random.default_rng(11)
        arrays = [rng.random((25, 20)) for _ in range(5)]  # 4000 bytes each
        refs = []
        errors = []

        def put_all():
            try:
                for a in arrays:
                    refs.append(store.put(a))
            except RuntimeError as exc:
                errors.append(exc)

        try:
            putter = threading.Thread(target=put_all)
            putter.start()
            assert entered.wait(timeout=10.0)  # writer is busy dying
            time.sleep(0.2)                    # let a put block on backpressure
            release.set()                      # writer now fails
            putter.join(timeout=10.0)
            assert not putter.is_alive()
            # the evicting put surfaced the sticky writer failure...
            assert errors and "spill writer" in str(errors[0])
            # ...and nothing lingers in the enqueued/spilling states
            # (pre-fix: the waiting evictor appended its victim to the
            # dead queue, leaking the name with residency discounted)
            with store._lock:
                assert store._spilling == {}
                assert list(store._spill_queue) == []
                resident = sum(store._sizes.values())
                assert store.bytes_resident == resident
            # every block that made it into the store still resolves
            for ref, array in zip(refs, arrays):
                assert np.array_equal(ref.resolve(), array)
        finally:
            store.cleanup()
        assert os.listdir(tmp_path) == []

    def test_flush_spill_reinstates_after_writer_death(self, tmp_path):
        release = threading.Event()
        entered = threading.Event()
        store = self._failing_store(tmp_path, release, entered)
        rng = np.random.default_rng(12)
        arrays = [rng.random((25, 20)) for _ in range(3)]
        try:
            refs = [store.put(a) for a in arrays]
            assert entered.wait(timeout=10.0)
            release.set()
            with pytest.raises(RuntimeError, match="spill writer"):
                store.flush_spill()
            # the failed write's block is resident again and resolvable
            with store._lock:
                assert store._spilling == {}
            for ref, array in zip(refs, arrays):
                assert np.array_equal(ref.resolve(), array)
            # later evictions keep surfacing the sticky error instead of
            # silently queueing to a dead writer
            with pytest.raises(RuntimeError, match="spill writer"):
                store.put(rng.random((25, 20)))
        finally:
            store.cleanup()
        assert os.listdir(tmp_path) == []

    def test_pool_recovery_tolerates_dead_spill_writer(self, tmp_path):
        """BrokenProcessPool recovery flushes the spill pipeline; a dead
        writer must not abort the recovery (blocks are reinstated)."""
        store = SharedMemoryStore(capacity_bytes=1 << 20, spill_dir=str(tmp_path))
        ex = SharedMemoryExecutor(
            workers=1, store=store, fault_policy=FaultPolicy(),
            fault_injector=FaultInjector(FaultSpec("kill_worker", at_task=1)))
        # poison the writer exactly like a vanished spill device would
        store._spill_error = OSError("spill device gone")
        try:
            results = ex.map_tasks(make_block, list(range(3)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_lost == 1
        finally:
            ex.shutdown()
            store.cleanup()


# --------------------------------------------------------------------------- #
# metrics plumbing
# --------------------------------------------------------------------------- #
class TestResilienceMetrics:
    def test_exact_counts_for_multiple_faults(self):
        fw = make_framework("dasklite", executor="serial",
                            fault_policy=FaultPolicy(),
                            faults=[FaultSpec("raise", at_task=1),
                                    FaultSpec("raise", at_task=3),
                                    FaultSpec("kill_worker", at_task=5)])
        try:
            results = fw.map_tasks(square, list(range(8)))
            assert results == [x * x for x in range(8)]
            assert fw.metrics.tasks_retried == 3
            assert fw.metrics.tasks_lost == 1
        finally:
            fw.close()

    def test_metrics_merge_and_dict_carry_resilience_fields(self):
        from repro.frameworks.base import RunMetrics

        a = RunMetrics(tasks_retried=2, tasks_lost=1, recovery_seconds=0.25)
        b = RunMetrics(tasks_retried=1, tasks_lost=0, recovery_seconds=0.5)
        merged = a.merge(b)
        assert merged.tasks_retried == 3
        assert merged.tasks_lost == 1
        assert merged.recovery_seconds == 0.75
        for key in ("tasks_retried", "tasks_lost", "recovery_seconds"):
            assert key in merged.as_dict()

    def test_orphan_sweep_is_a_noop_without_orphans(self):
        assert sweep_orphan_segments() == 0

    def test_timings_carry_retry_attribution(self):
        ex = ProcessExecutor(workers=1, fault_policy=FaultPolicy(),
                             fault_injector=FaultInjector(
                                 FaultSpec("kill_worker", at_task=1)))
        try:
            ex.map_tasks(square, list(range(3)))
            timing = ex.timings[1]
            assert timing.retries == 1
            assert timing.lost == 1
            assert timing.recovery_seconds > 0.0
            assert ex.timings[0].retries == 0
        finally:
            ex.shutdown()

    def test_metrics_carry_checkpoint_and_speculation_fields(self):
        from repro.frameworks.base import RunMetrics

        a = RunMetrics(tasks_speculated=1, speculation_wins=1,
                       tasks_restored=4, restore_seconds=0.1)
        b = RunMetrics(tasks_speculated=2, speculation_wins=0,
                       tasks_restored=1, restore_seconds=0.2)
        merged = a.merge(b)
        assert merged.tasks_speculated == 3
        assert merged.speculation_wins == 1
        assert merged.tasks_restored == 5
        assert merged.restore_seconds == pytest.approx(0.3)
        for key in ("tasks_speculated", "speculation_wins",
                    "tasks_restored", "restore_seconds"):
            assert key in merged.as_dict()


# --------------------------------------------------------------------------- #
# checkpoint/restart of whole runs
# --------------------------------------------------------------------------- #
class TestCheckpointResume:
    """Driver-kill → resume: bit-identical output, only missing blocks run."""

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_killed_run_resumes_bit_identical(self, name, plane, chaos_ensemble,
                                              reference_matrix, tmp_path):
        ckpt = tmp_path / "journal"
        # a fatal fault (no policy) at dispatch 2: tasks 0 and 1 are
        # journalled before the driver dies (mpilite wraps the injected
        # fault in its SPMDError, so match by message)
        with pytest.raises(Exception, match="injected fault"):
            psa(chaos_ensemble, name, executor="serial", data_plane=plane,
                checkpoint_dir=str(ckpt), faults=FaultSpec("raise", at_task=2))
        assert len(list(ckpt.glob("e-*.json"))) == 2
        matrix, report = psa(chaos_ensemble, name, executor="serial",
                             data_plane=plane, checkpoint_dir=str(ckpt))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_restored == 2
        assert report.metrics.restore_seconds > 0.0

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_killed_leaflet_run_resumes(self, name, plane, chaos_bilayer,
                                        tmp_path):
        positions, expected_sizes = chaos_bilayer
        ckpt = tmp_path / "journal"
        with pytest.raises(Exception, match="injected fault"):
            leaflet_finder(positions, name, executor="serial", data_plane=plane,
                           approach="tree-search", n_tasks=6,
                           checkpoint_dir=str(ckpt),
                           faults=FaultSpec("raise", at_task=2))
        assert len(list(ckpt.glob("e-*.json"))) == 2
        result, report = leaflet_finder(positions, name, executor="serial",
                                        data_plane=plane,
                                        approach="tree-search", n_tasks=6,
                                        checkpoint_dir=str(ckpt))
        assert result.sizes == expected_sizes
        assert report.metrics.tasks_restored == 2

    def test_completed_run_restores_everything(self, chaos_ensemble,
                                               reference_matrix, tmp_path):
        ckpt = str(tmp_path / "journal")
        _, first = psa(chaos_ensemble, "dasklite", executor="serial",
                       checkpoint_dir=ckpt)
        assert first.metrics.tasks_restored == 0
        matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                             checkpoint_dir=ckpt)
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_restored == first.n_tasks
        assert report.metrics.tasks_submitted == 0

    def test_stale_journal_rejected_not_reused(self, chaos_ensemble, tmp_path):
        ckpt = str(tmp_path / "journal")
        psa(chaos_ensemble, "dasklite", executor="serial", checkpoint_dir=ckpt)
        # a different metric is a different run: loud rejection
        with pytest.raises(StaleJournal):
            psa(chaos_ensemble, "dasklite", executor="serial",
                metric="frechet", checkpoint_dir=ckpt)
        # so is a different ensemble under the same parameters
        other = make_clustered_ensemble(EnsembleSpec(
            n_trajectories=5, n_frames=8, n_atoms=16, n_clusters=2, seed=43))
        with pytest.raises(StaleJournal):
            psa(other, "dasklite", executor="serial", checkpoint_dir=ckpt)
        # and a different substrate or plane
        with pytest.raises(StaleJournal):
            psa(chaos_ensemble, "mpilite", executor="serial",
                checkpoint_dir=ckpt)
        with pytest.raises(StaleJournal):
            psa(chaos_ensemble, "dasklite", executor="serial",
                data_plane="shm", checkpoint_dir=ckpt)

    def test_corrupt_entry_is_recomputed(self, chaos_ensemble,
                                         reference_matrix, tmp_path):
        ckpt = tmp_path / "journal"
        psa(chaos_ensemble, "dasklite", executor="serial",
            checkpoint_dir=str(ckpt))
        blocks = sorted(ckpt.glob("e-*.blk"))
        n_entries = len(blocks)
        blocks[0].write_bytes(b"\x00garbage\x00")
        matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                             checkpoint_dir=str(ckpt))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_restored == n_entries - 1
        # the recomputed entry was re-journalled
        assert len(list(ckpt.glob("e-*.json"))) == n_entries

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(crash_at=st.integers(min_value=0, max_value=5))
    def test_resume_after_crash_at_any_index(self, crash_at, chaos_ensemble,
                                             reference_matrix):
        # group_size=2 over 5 trajectories -> exactly 6 block tasks
        with tempfile.TemporaryDirectory() as d:
            ckpt = os.path.join(d, "journal")
            with pytest.raises(InjectedFault):
                psa(chaos_ensemble, "dasklite", executor="serial",
                    group_size=2, checkpoint_dir=ckpt,
                    faults=FaultSpec("raise", at_task=crash_at))
            matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                                 group_size=2, checkpoint_dir=ckpt)
            assert np.array_equal(matrix.values, reference_matrix)
            assert report.metrics.tasks_restored == crash_at

    def test_checkpoint_interval_thins_the_journal(self, chaos_ensemble,
                                                   reference_matrix, tmp_path):
        ckpt = tmp_path / "journal"
        psa(chaos_ensemble, "dasklite", executor="serial", group_size=2,
            fault_policy=FaultPolicy(checkpoint_interval_tasks=2),
            checkpoint_dir=str(ckpt))
        n_entries = len(list(ckpt.glob("e-*.json")))
        assert 0 < n_entries < 6  # every 2nd of the 6 completions
        matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                             group_size=2, checkpoint_dir=str(ckpt))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_restored == n_entries

    def test_faulted_task_is_not_journalled(self, chaos_ensemble, tmp_path):
        """A task that dies mid-run must not leave a journal entry: the
        journal records completions, so resume counts stay exact."""
        ckpt = tmp_path / "journal"
        matrix, report = psa(chaos_ensemble, "dasklite", executor="serial",
                             group_size=2, checkpoint_dir=str(ckpt),
                             fault_policy=FaultPolicy(),
                             faults=FaultSpec("raise", at_task=1))
        assert report.metrics.tasks_retried == 1
        # all six completed (one after retry): all six journalled
        assert len(list(ckpt.glob("e-*.json"))) == 6


# --------------------------------------------------------------------------- #
# heartbeat-driven speculative re-execution
# --------------------------------------------------------------------------- #
class TestSpeculation:
    """A straggler triggers exactly one duplicate; first result wins."""

    def test_new_policy_knobs_validate(self):
        with pytest.raises(ValueError, match="speculation_factor"):
            FaultPolicy(speculation_factor=0.0)
        with pytest.raises(ValueError, match="speculation_factor"):
            FaultPolicy(speculation_factor=-1.0)
        with pytest.raises(ValueError, match="checkpoint_interval_tasks"):
            FaultPolicy(checkpoint_interval_tasks=0)
        assert FaultPolicy().speculation_factor is None
        assert FaultPolicy().checkpoint_interval_tasks == 1

    @pytest.mark.parametrize("plane", DATA_PLANES)
    @pytest.mark.parametrize("name", FRAMEWORK_NAMES)
    def test_straggler_speculated_exactly_once(self, name, plane,
                                               chaos_ensemble,
                                               reference_matrix, tmp_path):
        start = time.monotonic()
        matrix, report = psa(
            chaos_ensemble, name, executor="serial", data_plane=plane,
            spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(speculation_factor=2.0),
            faults=FaultSpec("delay", at_task=2, delay_s=60.0))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_speculated == 1
        assert report.metrics.speculation_wins == 1
        assert time.monotonic() - start < 30.0  # nowhere near the 60s straggle

    def test_fault_free_run_speculates_nothing(self, chaos_ensemble):
        _, report = psa(chaos_ensemble, "dasklite", executor="serial",
                        fault_policy=FaultPolicy(speculation_factor=2.0))
        assert report.metrics.tasks_speculated == 0
        assert report.metrics.speculation_wins == 0

    @pytest.mark.parametrize("cls", [ProcessExecutor, SharedMemoryExecutor])
    def test_real_pool_duplicate_beats_straggler(self, cls):
        """The pooled engine launches one duplicate on a free worker, takes
        its result, and SIGKILLs the beaten straggler."""
        start = time.monotonic()
        ex = cls(workers=2,
                 fault_policy=FaultPolicy(speculation_factor=3.0),
                 fault_injector=FaultInjector(
                     FaultSpec("delay", at_task=1, delay_s=60.0)))
        try:
            results = ex.map_tasks(slow_square, list(range(6)))
            assert results == [x * x for x in range(6)]
            assert ex.total_tasks_speculated == 1
            assert ex.total_speculation_wins == 1
            assert time.monotonic() - start < 30.0
            assert ex.last_hb_leftovers == []  # straggler's heartbeat reaped
        finally:
            ex.shutdown()

    def test_shm_pool_speculation_leaks_no_segments(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(
            workers=2, fault_policy=FaultPolicy(speculation_factor=3.0),
            fault_injector=FaultInjector(
                FaultSpec("delay", at_task=1, delay_s=60.0)))
        try:
            results = ex.map_tasks(make_block, list(range(6)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_speculated == 1
        finally:
            ex.shutdown()
        assert shm_entries() == before


# --------------------------------------------------------------------------- #
# heartbeat hygiene and the pid-reuse race
# --------------------------------------------------------------------------- #
class TestHeartbeatHygiene:
    def test_hb_dir_empty_after_clean_run(self):
        ex = SharedMemoryExecutor(
            workers=2, fault_policy=FaultPolicy(heartbeat_timeout_s=5.0))
        try:
            assert ex.map_tasks(square, list(range(8))) == \
                [x * x for x in range(8)]
            assert ex.last_hb_leftovers == []
        finally:
            ex.shutdown()

    def test_live_heartbeat_round_trip(self, tmp_path):
        write_heartbeat(str(tmp_path))
        assert live_heartbeat_pids(str(tmp_path)) == [os.getpid()]
        assert reap_dead_heartbeats(str(tmp_path)) == [str(os.getpid())]
        clear_heartbeat(str(tmp_path))
        assert live_heartbeat_pids(str(tmp_path)) == []
        assert os.listdir(tmp_path) == []

    def test_recycled_pid_is_never_signalled(self, tmp_path):
        """The pid-reuse race: a heartbeat file whose recorded process
        start time does not match the pid's current incarnation marks a
        dead worker whose pid was recycled — it must be skipped (never
        SIGKILLed) and its file removed."""
        pid = os.getpid()
        path = tmp_path / str(pid)
        # ticks=1 is ~10ms after boot: no live process matches it
        path.write_text("1.0 1")
        old = time.time() - 3600
        os.utime(path, (old, old))
        assert stale_worker_pids(str(tmp_path), timeout_s=1.0) == []
        assert not path.exists()

    def test_dead_pid_heartbeat_is_reaped(self, tmp_path):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=int)
        proc.start()
        dead_pid = proc.pid
        proc.join()
        path = tmp_path / str(dead_pid)
        path.write_text("1.0 123")
        assert reap_dead_heartbeats(str(tmp_path)) == []
        assert not path.exists()
        assert stale_worker_pids(str(tmp_path), timeout_s=0.0) == []

    def test_own_heartbeat_survives_verification(self, tmp_path):
        """A live worker with matching start ticks is reported stale when
        old enough — the verification only filters recycled/dead pids."""
        write_heartbeat(str(tmp_path))
        path = tmp_path / str(os.getpid())
        old = time.time() - 3600
        os.utime(path, (old, old))
        try:
            assert stale_worker_pids(str(tmp_path), timeout_s=60.0) == \
                [os.getpid()]
        finally:
            clear_heartbeat(str(tmp_path))


# --------------------------------------------------------------------------- #
# per-lane failure domains: one dead worker must cost exactly one task
# --------------------------------------------------------------------------- #
class TestLaneFailureDomain:
    """Worker lanes shrink the blast radius of a SIGKILL to one task.

    The old single shared pool marked *every* in-flight task lost when
    any worker died; with single-slot lanes only the dead lane's task
    is, so the counts below are exact even with spare workers — and
    tasks queued or running on the healthy lanes must be untouched.
    """

    def test_single_lane_kill_loses_exactly_one_task(self):
        ex = ProcessExecutor(workers=3, fault_policy=FaultPolicy(),
                             fault_injector=FaultInjector(
                                 FaultSpec("kill_worker", at_task=4)))
        try:
            results = ex.map_tasks(square, list(range(12)))
            assert results == [x * x for x in range(12)]
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
        finally:
            ex.shutdown()

    def test_shm_lane_kill_mid_wave_is_bit_identical(self):
        before = shm_entries()
        ex = SharedMemoryExecutor(workers=3, fault_policy=FaultPolicy(),
                                  fault_injector=FaultInjector(
                                      FaultSpec("kill_worker", at_task=4)))
        try:
            results = ex.map_tasks(make_block, list(range(12)))
            for i, block in enumerate(results):
                assert np.array_equal(block, make_block(i))
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
        finally:
            ex.shutdown()
        assert shm_entries() == before

    def test_lane_kill_under_locality_keeps_exact_accounting(self, tmp_path):
        """A killed lane under locality placement: results identical,
        exactly one task lost, and every completed task still carries a
        placement flag (the rebuilt lane's resident set starts empty, so
        routing never trusts the dead worker's blocks)."""
        before = shm_entries()
        blocks = [np.full((64, 64), float(i)) for i in range(12)]   # 32 KiB each
        ex = SharedMemoryExecutor(
            workers=3,
            store_capacity_bytes=64 * 1024,
            spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(locality=True, locality_wait_s=0.02),
            fault_injector=FaultInjector(
                FaultSpec("kill_worker", at_task=4)))
        try:
            results = ex.map_tasks(scale_block, blocks)
            for i, block in enumerate(results):
                assert np.array_equal(block, blocks[i] * 2.0)
            assert ex.total_tasks_lost == 1
            assert ex.total_tasks_retried == 1
            assert (ex.total_tasks_local + ex.total_tasks_remote) == 12
            assert ex.last_hb_leftovers == []
        finally:
            ex.shutdown()
        assert shm_entries() == before

    def test_psa_lane_kill_under_locality(self, chaos_ensemble,
                                          reference_matrix, tmp_path):
        matrix, report = psa(
            chaos_ensemble, "pilot", executor="shm", workers=3,
            data_plane="shm", spill_dir=str(tmp_path),
            fault_policy=FaultPolicy(locality=True, locality_wait_s=0.02),
            faults=FaultSpec("kill_worker", at_task=2))
        assert np.array_equal(matrix.values, reference_matrix)
        assert report.metrics.tasks_lost == 1
        assert report.metrics.tasks_retried == 1
