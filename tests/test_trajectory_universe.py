"""Unit tests for Universe and AtomGroup."""

import numpy as np
import pytest

from repro.trajectory import Topology, Trajectory, Universe


@pytest.fixture()
def universe():
    """A 6-atom, 3-frame universe with two atom names."""
    top = Topology.from_names(["P", "P", "CA", "CA", "OW", "OW"],
                              resids=[1, 2, 3, 4, 5, 6],
                              resnames=["LIP", "LIP", "PRO", "PRO", "SOL", "SOL"],
                              segids=["M", "M", "P", "P", "W", "W"])
    rng = np.random.default_rng(0)
    positions = rng.normal(size=(3, 6, 3))
    return Universe(top, Trajectory(positions, topology=top))


class TestUniverse:
    def test_shape(self, universe):
        assert universe.n_atoms == 6
        assert universe.n_frames == 3

    def test_topology_trajectory_mismatch(self):
        with pytest.raises(ValueError):
            Universe(Topology.uniform(3), Trajectory(np.zeros((1, 4, 3))))

    def test_from_positions_single_frame(self):
        u = Universe.from_positions(np.zeros((5, 3)))
        assert u.n_atoms == 5
        assert u.n_frames == 1

    def test_from_positions_multi_frame(self):
        u = Universe.from_positions(np.zeros((2, 5, 3)))
        assert u.n_frames == 2

    def test_goto_frame_updates_current(self, universe):
        universe.goto_frame(2)
        assert universe.frame_index == 2
        assert np.allclose(universe.current_frame.positions,
                           universe.trajectory.positions[2])

    def test_iter_frames(self, universe):
        indices = [f.index for f in universe.iter_frames()]
        assert indices == [0, 1, 2]
        assert universe.frame_index == 2

    def test_select_atoms(self, universe):
        group = universe.select_atoms("name P")
        assert group.n_atoms == 2
        assert group.indices.tolist() == [0, 1]

    def test_atoms_selects_everything(self, universe):
        assert universe.atoms().n_atoms == 6


class TestAtomGroup:
    def test_positions_follow_current_frame(self, universe):
        group = universe.select_atoms("name CA")
        pos0 = group.positions.copy()
        universe.goto_frame(1)
        assert not np.allclose(group.positions, pos0)

    def test_attributes(self, universe):
        group = universe.select_atoms("name P")
        assert list(group.names) == ["P", "P"]
        assert list(group.resnames) == ["LIP", "LIP"]
        assert group.masses.shape == (2,)
        assert len(group) == 2

    def test_out_of_range_indices(self, universe):
        from repro.trajectory.universe import AtomGroup
        with pytest.raises(IndexError):
            AtomGroup(universe, [99])

    def test_center_of_geometry_and_mass(self, universe):
        group = universe.atoms()
        cog = group.center_of_geometry()
        com = group.center_of_mass()
        assert cog.shape == (3,)
        assert com.shape == (3,)

    def test_center_of_empty_group_raises(self, universe):
        group = universe.select_atoms("none")
        with pytest.raises(ValueError):
            group.center_of_geometry()
        with pytest.raises(ValueError):
            group.center_of_mass()

    def test_nested_selection(self, universe):
        group = universe.select_atoms("segid M or segid P")
        sub = group.select_atoms("name CA")
        assert sub.indices.tolist() == [2, 3]

    def test_getitem(self, universe):
        group = universe.atoms()
        assert group[0].n_atoms == 1
        assert group[1:4].n_atoms == 3

    def test_union(self, universe):
        a = universe.select_atoms("name P")
        b = universe.select_atoms("name CA")
        combined = a.union(b)
        assert combined.indices.tolist() == [0, 1, 2, 3]
        # duplicates removed
        assert a.union(a).n_atoms == 2

    def test_union_different_universe_raises(self, universe):
        other = Universe.from_positions(np.zeros((6, 3)))
        with pytest.raises(ValueError):
            universe.atoms().union(other.atoms())

    def test_trajectory_slice(self, universe):
        group = universe.select_atoms("name OW")
        sliced = group.trajectory_slice()
        assert sliced.n_atoms == 2
        assert sliced.n_frames == 3
        assert np.allclose(sliced.positions, universe.trajectory.positions[:, [4, 5], :])

    def test_topology_property(self, universe):
        group = universe.select_atoms("name P")
        assert group.topology.n_atoms == 2
