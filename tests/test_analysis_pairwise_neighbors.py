"""Unit tests for pairwise-distance edge discovery and neighbor search."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.analysis.neighbors import (
    BallTree,
    GridNeighborSearch,
    brute_force_radius,
    radius_edges,
)
from repro.analysis.pairwise import (
    edges_from_block,
    edges_within_cutoff,
    estimate_pairwise_memory,
    iter_distance_blocks,
    pairwise_distances,
    self_edges_within_cutoff,
)


@pytest.fixture()
def cloud(rng):
    return rng.uniform(0.0, 50.0, size=(120, 3))


def reference_edges(points, cutoff):
    """Brute-force reference: all (i < j) pairs within cutoff."""
    dist = cdist(points, points)
    out = set()
    n = len(points)
    for i in range(n):
        for j in range(i + 1, n):
            if dist[i, j] <= cutoff:
                out.add((i, j))
    return out


class TestPairwiseDistances:
    def test_matches_cdist(self, rng):
        a, b = rng.normal(size=(10, 3)), rng.normal(size=(7, 3))
        assert np.allclose(pairwise_distances(a, b), cdist(a, b))

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((4, 2)), np.zeros((4, 3)))


class TestEdgesFromBlock:
    def test_simple_pair(self):
        a = np.array([[0.0, 0, 0], [10.0, 0, 0]])
        edges = self_edges_within_cutoff(a, 1.0)
        assert edges.shape == (0, 2)
        edges = self_edges_within_cutoff(a, 15.0)
        assert edges.tolist() == [[0, 1]]

    def test_offsets_applied(self):
        a = np.zeros((2, 3))
        b = np.zeros((3, 3))
        edges = edges_within_cutoff(a, b, 1.0, offset_a=10, offset_b=20)
        assert set(map(tuple, edges)) == {(10, 20), (10, 21), (10, 22),
                                          (11, 20), (11, 21), (11, 22)}

    def test_self_block_excludes_diagonal_and_mirrors(self, rng):
        points = rng.uniform(0, 10, size=(20, 3))
        edges = self_edges_within_cutoff(points, 4.0)
        assert all(i < j for i, j in edges)
        assert len(set(map(tuple, edges))) == len(edges)

    def test_exclude_self_requires_square(self):
        with pytest.raises(ValueError):
            edges_from_block(np.zeros((2, 3)), np.zeros((3, 3)), 1.0, exclude_self=True)

    def test_cutoff_validation(self):
        with pytest.raises(ValueError):
            edges_from_block(np.zeros((2, 3)), np.zeros((2, 3)), 0.0)

    def test_block_decomposition_equals_global(self, cloud):
        """Union of 2-D block edges == edges of the whole system."""
        cutoff = 8.0
        expected = reference_edges(cloud, cutoff)
        found = set()
        for r0, c0, rows, cols in iter_distance_blocks(cloud, block_size=37):
            if r0 == c0:
                block_edges = edges_from_block(rows, cols, cutoff, r0, c0, exclude_self=True)
            else:
                block_edges = edges_from_block(rows, cols, cutoff, r0, c0)
            found.update(map(tuple, block_edges))
        assert found == expected


class TestIterDistanceBlocks:
    def test_covers_upper_triangle_only(self):
        points = np.zeros((10, 3))
        blocks = list(iter_distance_blocks(points, 4))
        coords = [(r, c) for r, c, _, _ in blocks]
        assert coords == [(0, 0), (0, 4), (0, 8), (4, 4), (4, 8), (8, 8)]

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iter_distance_blocks(np.zeros((5, 2)), 2))
        with pytest.raises(ValueError):
            list(iter_distance_blocks(np.zeros((5, 3)), 0))


class TestMemoryEstimate:
    def test_double_precision_block(self):
        assert estimate_pairwise_memory(1000, 1000) == 8_000_000

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            estimate_pairwise_memory(-1, 10)


class TestBallTree:
    def test_matches_brute_force(self, cloud):
        tree = BallTree(cloud, leaf_size=8)
        queries = cloud[:25]
        expected = brute_force_radius(cloud, queries, 9.0)
        got = tree.query_radius(queries, 9.0)
        for e, g in zip(expected, got):
            assert np.array_equal(np.sort(e), np.sort(g))

    def test_single_query_vector(self, cloud):
        tree = BallTree(cloud)
        result = tree.query_radius(cloud[0], 5.0)
        assert len(result) == 1
        assert 0 in result[0]

    def test_count_within(self, cloud):
        tree = BallTree(cloud)
        counts = tree.count_within(cloud[:5], 6.0)
        brute = brute_force_radius(cloud, cloud[:5], 6.0)
        assert counts.tolist() == [len(b) for b in brute]

    def test_empty_tree(self):
        tree = BallTree(np.empty((0, 3)))
        assert tree.query_radius(np.zeros((1, 3)), 1.0)[0].size == 0

    def test_duplicate_points(self):
        points = np.zeros((50, 3))
        tree = BallTree(points, leaf_size=4)
        hits = tree.query_radius(np.zeros((1, 3)), 0.5)[0]
        assert hits.size == 50

    def test_validation(self, cloud):
        with pytest.raises(ValueError):
            BallTree(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            BallTree(cloud, leaf_size=0)
        tree = BallTree(cloud)
        with pytest.raises(ValueError):
            tree.query_radius(cloud[:2], -1.0)
        with pytest.raises(ValueError):
            tree.query_radius(np.zeros((2, 4)), 1.0)


class TestGridNeighborSearch:
    def test_matches_brute_force(self, cloud):
        grid = GridNeighborSearch(cloud, cell_size=7.0)
        queries = cloud[:20]
        expected = brute_force_radius(cloud, queries, 7.0)
        got = grid.query_radius(queries, 7.0)
        for e, g in zip(expected, got):
            assert np.array_equal(np.sort(e), np.sort(g))

    def test_radius_larger_than_cell(self, cloud):
        grid = GridNeighborSearch(cloud, cell_size=3.0)
        expected = brute_force_radius(cloud, cloud[:10], 8.0)
        got = grid.query_radius(cloud[:10], 8.0)
        for e, g in zip(expected, got):
            assert np.array_equal(np.sort(e), np.sort(g))

    def test_validation(self):
        with pytest.raises(ValueError):
            GridNeighborSearch(np.zeros((3, 3)), cell_size=0.0)


class TestRadiusEdges:
    @pytest.mark.parametrize("method", ["balltree", "grid", "brute"])
    def test_all_methods_agree_with_reference(self, cloud, method):
        cutoff = 8.0
        expected = reference_edges(cloud, cutoff)
        edges = radius_edges(cloud, cutoff, method=method)
        assert set(map(tuple, edges)) == expected

    def test_query_subset(self, cloud):
        cutoff = 8.0
        edges = radius_edges(cloud, cutoff, query_indices=np.arange(10))
        # only edges whose smaller endpoint is < 10 can be discovered this way
        expected = {(i, j) for i, j in reference_edges(cloud, cutoff) if i < 10}
        assert set(map(tuple, edges)) == expected

    def test_unknown_method(self, cloud):
        with pytest.raises(ValueError):
            radius_edges(cloud, 5.0, method="quadtree")

    def test_no_edges(self):
        points = np.array([[0.0, 0, 0], [100.0, 0, 0]])
        assert radius_edges(points, 1.0).shape == (0, 2)
