#!/usr/bin/env python
"""Project laptop-scale measurements to the paper's scale with the perf model.

Workflow:

1. calibrate the kernel rates on this machine (micro-benchmarks of the
   2D-RMSD GEMM, cdist, BallTree and union-find kernels),
2. regenerate the paper-scale series for every figure with those rates, and
3. print a compact summary of each figure's headline findings.

Run with::

    python examples/paper_scale_projection.py
"""

from __future__ import annotations

from repro.experiments import report as report_module
from repro.perfmodel import (
    WRANGLER,
    calibrate_kernels,
    model_leaflet_runtime,
    model_psa_runtime,
    model_throughput,
)


def main() -> None:
    print("== calibrating kernel rates on this machine ==")
    calibration = calibrate_kernels()
    print(calibration.summary())
    rates = calibration.rates

    print("\n== figure 2/3: task throughput (modeled, 1 node / 4 nodes) ==")
    for fw in ("dask", "spark", "pilot"):
        one = model_throughput(fw, 16_384, nodes=1)
        four = model_throughput(fw, 16_384, nodes=4)
        print(f"  {fw:<6} {one:>8.0f} tasks/s on 1 node   {four:>8.0f} tasks/s on 4 nodes")

    print("\n== figure 4: PSA, 128 small trajectories on Wrangler (calibrated rates) ==")
    for fw in ("mpi", "spark", "dask", "pilot"):
        r16 = model_psa_runtime(fw, WRANGLER, cores=16, rates=rates)
        r256 = model_psa_runtime(fw, WRANGLER, cores=256, rates=rates)
        print(f"  {fw:<6} 16 cores: {r16:>8.1f} s   256 cores: {r256:>8.1f} s   "
              f"speedup {r16 / r256:.1f}x")

    print("\n== figure 7: Leaflet Finder, 524k atoms, 256 cores (calibrated rates) ==")
    for approach in ("broadcast-1d", "task-2d", "parallel-cc", "tree-search"):
        row = "  " + f"{approach:<14}"
        for fw in ("spark", "dask", "mpi"):
            runtime = model_leaflet_runtime(fw, approach, cores=256,
                                            n_atoms=524_288, rates=rates)
            row += f" {fw}: {runtime:>7.1f} s "
        print(row)

    print("\n== full modeled report (row counts per figure) ==")
    for figure, rows in report_module.all_modeled().items():
        print(f"  {figure}: {len(rows)} modeled configurations")
    print("\nRun `python -m repro.experiments.report --live` for the complete")
    print("tables, including the laptop-scale live measurements.")


if __name__ == "__main__":
    main()
