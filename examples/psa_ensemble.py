#!/usr/bin/env python
"""PSA over a trajectory ensemble stored on disk, compared across frameworks.

Mirrors the paper's Figure 4/5 workflow at laptop scale:

* generate an ensemble of transition trajectories (several path families),
* write one file per trajectory (the on-disk layout the paper's tasks read),
* run the task-parallel PSA on all four substrates and verify they agree,
* report per-framework wall times and overheads, and
* cluster the distance matrix to recover the path families.

Run with::

    python examples/psa_ensemble.py [--trajectories 24] [--workers 4]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro import make_framework, psa_serial
from repro.core import run_psa
from repro.trajectory import load_ensemble, paper_psa_ensemble, write_ensemble


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectories", type=int, default=24)
    parser.add_argument("--frames", type=int, default=32)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="atom-count scale relative to the paper's 'small' dataset")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--metric", default="hausdorff",
                        choices=["hausdorff", "hausdorff_earlybreak", "frechet"])
    args = parser.parse_args()

    ensemble = paper_psa_ensemble("small", args.trajectories, n_frames=args.frames,
                                  scale=args.scale, n_clusters=4)
    print(f"ensemble: {ensemble.n_trajectories} trajectories x "
          f"{ensemble[0].n_frames} frames x {ensemble[0].n_atoms} atoms "
          f"({ensemble.nbytes / 1e6:.1f} MB)")

    with tempfile.TemporaryDirectory(prefix="repro_psa_") as tmpdir:
        paths = write_ensemble(ensemble, tmpdir, fmt="npy")
        reloaded = load_ensemble(paths)

        reference = psa_serial(reloaded, metric=args.metric)
        print(f"\nserial reference computed ({reference.n}x{reference.n} matrix)")

        print(f"\n{'framework':<12} {'tasks':>6} {'wall (s)':>10} {'overhead (s)':>13}")
        for name in ("mpilite", "sparklite", "dasklite", "pilot"):
            fw = make_framework(name, executor="threads", workers=args.workers)
            matrix, report = run_psa(reloaded, fw, n_tasks=args.workers * 2,
                                     metric=args.metric, paths=paths)
            assert np.allclose(matrix.values, reference.values, atol=1e-9), name
            print(f"{name:<12} {report.n_tasks:>6} {report.wall_time_s:>10.3f} "
                  f"{report.metrics.overhead_s:>13.3f}")
            fw.close()

    # cluster the trajectories from the reference matrix; within-family
    # distances are the small tail of the distribution, so cut at its 20th
    # percentile rather than the median
    threshold = float(np.percentile(reference.condensed(), 20))
    clusters = reference.cluster_by_threshold(threshold)
    families = [c for c in clusters if len(c) > 1]
    print(f"\nrecovered {len(families)} path families "
          f"with sizes {[len(c) for c in families]} (threshold {threshold:.2f})")


if __name__ == "__main__":
    main()
