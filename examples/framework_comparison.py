#!/usr/bin/env python
"""Choose a framework: measured task throughput + the paper's decision framework.

Reproduces the reasoning of section 4.4 ("Conceptual Framework and
Discussion"): measure what you can (task throughput on this machine, via
the live substrates), model what you cannot (paper-scale scaling, via the
calibrated cost models), and combine it with the qualitative decision
framework (Table 3) to pick a framework for a given workload profile.

Run with::

    python examples/framework_comparison.py
"""

from __future__ import annotations

import time

from repro import make_framework, recommend_framework
from repro.core.characterization import decision_framework_table
from repro.perfmodel import model_throughput


def measured_throughput(name: str, n_tasks: int = 1024, workers: int = 4) -> float:
    """Tasks/second for zero-workload tasks on the live substrate."""
    fw = make_framework(name, executor="threads", workers=workers)
    start = time.perf_counter()
    fw.map_tasks(lambda _x: 0, list(range(n_tasks)))
    elapsed = time.perf_counter() - start
    fw.close()
    return n_tasks / elapsed


def main() -> None:
    print("== measured task throughput on this machine (1024 zero-workload tasks) ==")
    for name in ("sparklite", "dasklite", "pilot", "mpilite"):
        print(f"  {name:<10} {measured_throughput(name):>10.0f} tasks/s")

    print("\n== modeled paper-scale throughput (one Wrangler node, 16k tasks) ==")
    for name in ("spark", "dask", "pilot"):
        print(f"  {name:<10} {model_throughput(name, 16_384):>10.0f} tasks/s")

    print("\n== decision framework (Table 3) ==")
    print(decision_framework_table())

    print("\n== recommendations ==")
    profiles = {
        "PSA-like: coarse-grained, Python-native, embarrassingly parallel": {
            "python_native_code": 1.0, "task_api": 1.0, "mpi_hpc_tasks": 0.5,
        },
        "LeafletFinder-like: fine-grained, shuffle and broadcast heavy": {
            "shuffle": 1.0, "broadcast": 1.0, "large_number_of_tasks": 1.0,
            "higher_level_abstraction": 0.5,
        },
        "iterative ML over a cached dataset": {
            "caching": 1.0, "higher_level_abstraction": 1.0, "shuffle": 0.5,
        },
        "ensemble of MPI simulations with in-situ analysis": {
            "mpi_hpc_tasks": 1.0, "python_native_code": 0.5,
        },
    }
    for label, weights in profiles.items():
        ranking = recommend_framework(weights)
        ranked = ", ".join(f"{fw} ({score:.2f})" for fw, score in ranking)
        print(f"  {label}:\n      {ranked}")


if __name__ == "__main__":
    main()
