#!/usr/bin/env python
"""Streaming PSA walkthrough: analyse an ensemble 4x the store capacity.

Writes each trajectory to a chunked on-disk file, then runs PSA twice:

1. the *materialized* baseline loads every trajectory into memory and
   runs the batch path (``psa``) with the ``hausdorff_windowed`` metric;
2. the *streamed* run opens the chunk files as a
   :class:`~repro.trajectory.streaming.StreamingEnsemble` and drives
   :func:`~repro.core.api.stream_windows` with a shared-memory store
   capped at a quarter of the ensemble — the inputs can never all be
   resident, so chunks are ingested window by window, evicted under the
   LRU watermark, and healed from their source files when needed.

The streamed distance matrix must be bit-identical to the batch one:
``hausdorff_windowed`` merges per-window frame minima with a
partition-independent kernel, so chunking is invisible to the result.

Run with::

    python examples/streaming_psa.py
    python examples/streaming_psa.py --trajectories 12 --frames 48 --capacity-divisor 8
"""

from __future__ import annotations

import argparse
import os
import tempfile

import numpy as np

from repro.core.api import psa, stream_windows
from repro.trajectory import (
    EnsembleSpec,
    make_clustered_ensemble,
    open_streaming_ensemble,
    write_frame_chunks,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectories", type=int, default=8)
    parser.add_argument("--frames", type=int, default=32)
    parser.add_argument("--atoms", type=int, default=128)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--frames-per-chunk", type=int, default=8)
    parser.add_argument("--capacity-divisor", type=int, default=4,
                        help="store capacity = ensemble bytes / this")
    args = parser.parse_args()

    ensemble = make_clustered_ensemble(
        EnsembleSpec(n_trajectories=args.trajectories, n_frames=args.frames,
                     n_atoms=args.atoms, seed=7))
    arrays = [t.as_array() for t in ensemble]
    total = sum(a.nbytes for a in arrays)
    capacity = total // args.capacity_divisor
    print("== streaming PSA: ensemble larger than the configured store ==")
    print(f"ensemble: {args.trajectories} trajectories, {total} bytes; "
          f"store capacity: {capacity} bytes (1/{args.capacity_divisor})")

    baseline, _ = psa(ensemble, "dasklite", metric="hausdorff_windowed",
                      workers=args.workers)

    with tempfile.TemporaryDirectory(prefix="repro-streaming-psa-") as tmp:
        paths = [
            write_frame_chunks(array, os.path.join(tmp, f"{traj.name}.fchunk"),
                               frames_per_chunk=args.frames_per_chunk,
                               name=traj.name)
            for traj, array in zip(ensemble, arrays)
        ]
        streaming = open_streaming_ensemble(paths)
        matrix, report = stream_windows(streaming, "dasklite",
                                        workers=args.workers,
                                        store_capacity_bytes=capacity)

    assert np.array_equal(matrix.values, baseline.values), \
        "streamed matrix must be bit-identical to the materialized baseline"

    metrics = report.metrics
    print(f"\nwindows processed: {report.parameters['n_windows']} "
          f"({report.parameters['n_waves']} waves)")
    print(f"bytes_ingested:      {metrics.bytes_ingested:>12} "
          "(chunk bytes read from disk into the store)")
    print(f"peak_resident_bytes: {metrics.peak_resident_bytes:>12} "
          f"(high-water mark; ensemble is {total})")
    print(f"bytes_spilled:       {metrics.bytes_spilled:>12} "
          "(evicted to the disk tier under the watermark)")
    reduction = total / metrics.peak_resident_bytes
    print(f"\nstreamed PSA touched all {total} ensemble bytes while holding at "
          f"most {metrics.peak_resident_bytes} resident ({reduction:.1f}x "
          "smaller than the ensemble), and the distance matrix is "
          "bit-identical to the materialized run.")


if __name__ == "__main__":
    main()
