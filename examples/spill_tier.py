#!/usr/bin/env python
"""Spill tier walkthrough: an ensemble larger than the store completes.

Configures the shm data plane with a store capacity deliberately far
smaller than the ensemble, runs PSA end-to-end, and shows what the
write-behind spill pipeline did:

1. the run completes (and matches the serial reference bit-for-bit)
   even though the working set never fits in the configured capacity;
2. ``bytes_spilled`` reports how much of it went through the disk tier;
3. the async-vs-sync comparison shows where the spill time lands —
   ``spill_wait_seconds`` stalls the put path, ``spill_hidden_seconds``
   runs behind it on the spill-writer thread.

Run with::

    python examples/spill_tier.py
    python examples/spill_tier.py --trajectories 12 --frames 24 --capacity-divisor 8
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.api import psa
from repro.core.psa import psa_serial
from repro.trajectory import EnsembleSpec, make_clustered_ensemble


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectories", type=int, default=8)
    parser.add_argument("--frames", type=int, default=32)
    parser.add_argument("--atoms", type=int, default=256,
                        help="block size matters: spill writes of toy-sized "
                        "blocks cost less than the enqueue bookkeeping")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--tasks", type=int, default=8)
    parser.add_argument("--capacity-divisor", type=int, default=4,
                        help="store capacity = ensemble bytes / this")
    parser.add_argument("--queue-depth", type=int, default=8,
                        help="write-behind queue bound before backpressure")
    args = parser.parse_args()

    ensemble = make_clustered_ensemble(
        EnsembleSpec(n_trajectories=args.trajectories, n_frames=args.frames,
                     n_atoms=args.atoms, seed=3))
    total = sum(t.as_array().nbytes for t in ensemble)
    capacity = total // args.capacity_divisor
    print("== spill tier: ensemble larger than the configured store ==")
    print(f"ensemble: {args.trajectories} trajectories, {total} bytes; "
          f"store capacity: {capacity} bytes (1/{args.capacity_divisor})")

    reference = psa_serial(ensemble).values

    rows = []
    for spill_async in (False, True):
        matrix, report = psa(ensemble, "dasklite", workers=args.workers,
                             n_tasks=args.tasks, data_plane="shm",
                             store_capacity_bytes=capacity,
                             spill_async=spill_async,
                             spill_queue_depth=args.queue_depth)
        assert np.array_equal(matrix.values, reference), "results must be bit-identical"
        rows.append((spill_async, report.metrics))

    print(f"\n{'mode':<14} {'bytes_spilled':>14} {'spill_wait_seconds':>20} "
          f"{'spill_hidden_seconds':>22}")
    for spill_async, metrics in rows:
        mode = "write-behind" if spill_async else "synchronous"
        print(f"{mode:<14} {metrics.bytes_spilled:>14} "
              f"{metrics.spill_wait_seconds:>20.6f} "
              f"{metrics.spill_hidden_seconds:>22.6f}")

    sync_metrics = dict(rows)[False]
    async_metrics = dict(rows)[True]
    print(f"\nboth runs spilled {async_metrics.bytes_spilled} bytes and "
          "produced bit-identical distance matrices.")
    print("synchronous spill stalls the put path for every file write; "
          "write-behind hides the writes on the spill-writer thread "
          f"(stall {sync_metrics.spill_wait_seconds:.6f}s -> "
          f"{async_metrics.spill_wait_seconds:.6f}s).")


if __name__ == "__main__":
    main()
