#!/usr/bin/env python
"""Quickstart: run both of the paper's algorithms in a few lines.

1. Generate a small synthetic ensemble of transition trajectories and
   compute the PSA (Hausdorff) distance matrix on the Dask-style substrate.
2. Generate a small lipid bilayer and run the Leaflet Finder (tree-search
   approach) on the Spark-style substrate.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    leaflet_finder,
    make_bilayer_universe,
    paper_psa_ensemble,
    psa,
)
from repro.trajectory import BilayerSpec


def main() -> None:
    # ------------------------------------------------------------------ #
    # Path Similarity Analysis
    # ------------------------------------------------------------------ #
    print("== PSA (Hausdorff) quickstart ==")
    # 16 trajectories shaped like the paper's 'small' dataset, scaled down
    # so this runs in seconds on a laptop; 4 path families.
    ensemble = paper_psa_ensemble("small", n_trajectories=16, n_frames=24,
                                  scale=0.02, n_clusters=4)
    matrix, report = psa(ensemble, framework="dask", workers=4, n_tasks=8)
    print(f"frameworks: {report.framework}, tasks: {report.n_tasks}, "
          f"wall time: {report.wall_time_s:.3f} s")
    print(f"distance matrix: {matrix.n} x {matrix.n}, "
          f"symmetric: {matrix.is_symmetric()}")
    # within-family distances are the small tail of the distribution: cut there
    threshold = float(np.percentile(matrix.condensed(), 20))
    clusters = matrix.cluster_by_threshold(threshold)
    print(f"recovered path families: {[len(c) for c in clusters if len(c) > 1]}")

    # ------------------------------------------------------------------ #
    # Leaflet Finder
    # ------------------------------------------------------------------ #
    print("\n== Leaflet Finder quickstart ==")
    universe, true_labels = make_bilayer_universe(BilayerSpec(n_atoms=2000, seed=1))
    result, report = leaflet_finder(universe, framework="spark", workers=4,
                                    selection="name P", cutoff=15.0,
                                    approach="tree-search", n_tasks=16)
    print(f"framework: {report.framework}, approach: tree-search, "
          f"wall time: {report.wall_time_s:.3f} s")
    print(f"leaflet sizes: {result.sizes[:2]}, "
          f"agreement with ground truth: {result.agreement_with(true_labels):.3f}")


if __name__ == "__main__":
    main()
