#!/usr/bin/env python
"""Leaflet Finder on a synthetic membrane: all four architectural approaches.

Mirrors the paper's Figure 7/8 workflow at laptop scale: build a curved
bilayer, select the phosphorus head groups with the selection language, and
run every architectural approach on one framework, reporting wall time,
broadcast volume and shuffle volume — the quantities whose trade-offs
section 4.3 of the paper analyses.

Run with::

    python examples/leaflet_membrane.py [--atoms 4000] [--framework dask]
"""

from __future__ import annotations

import argparse

from repro import make_framework
from repro.core import LEAFLET_APPROACHES, leaflet_serial, run_leaflet_finder
from repro.trajectory import BilayerSpec, make_bilayer_universe


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--atoms", type=int, default=4000)
    parser.add_argument("--cutoff", type=float, default=15.0)
    parser.add_argument("--framework", default="dask",
                        choices=["spark", "dask", "pilot", "mpi"])
    parser.add_argument("--tasks", type=int, default=32)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--curvature", type=float, default=4.0,
                        help="amplitude of the membrane undulation (Angstrom)")
    args = parser.parse_args()

    spec = BilayerSpec(n_atoms=args.atoms, seed=7,
                       curvature_amplitude=args.curvature, curvature_periods=1.5)
    universe, true_labels = make_bilayer_universe(spec)
    head_groups = universe.select_atoms("name P")
    print(f"membrane: {universe.n_atoms} particles, selection 'name P' -> "
          f"{head_groups.n_atoms} head groups")

    serial = leaflet_serial(head_groups.positions, args.cutoff)
    print(f"serial reference: {serial.n_edges} edges, "
          f"leaflet sizes {serial.sizes[:2]}, "
          f"agreement {serial.agreement_with(true_labels):.3f}")

    fw = make_framework(args.framework, executor="threads", workers=args.workers)
    print(f"\nframework: {fw.name} ({args.workers} workers, {args.tasks} tasks)")
    print(f"{'approach':<14} {'wall (s)':>9} {'broadcast (B)':>14} {'shuffle (B)':>12} {'ok':>4}")
    for approach in LEAFLET_APPROACHES:
        result, report = run_leaflet_finder(head_groups.positions, args.cutoff, fw,
                                            approach=approach, n_tasks=args.tasks)
        ok = result.sizes[:2] == serial.sizes[:2]
        print(f"{approach:<14} {report.wall_time_s:>9.3f} "
              f"{report.metrics.bytes_broadcast:>14d} "
              f"{report.metrics.bytes_shuffled:>12d} {'yes' if ok else 'NO':>4}")
    fw.close()

    print("\nNote the paper's two findings visible even at this scale: the")
    print("broadcast approach ships the whole system to every task, and the")
    print("parallel-connected-components approaches shuffle far fewer bytes")
    print("than the edge-list approaches.")


if __name__ == "__main__":
    main()
