"""Setuptools shim.

Kept so the package can be installed editable in environments without the
``wheel`` package (``pip install -e . --no-build-isolation`` falls back to
the legacy ``setup.py develop`` path).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
