"""Distribution-aware benchmark measurement subsystem.

Every perf number this repo reports — and every floor CI enforces —
flows through this package: :class:`Sampler` captures duration
*distributions* (explicit warm/cold phases, sequential execution,
calibrated overhead subtraction), :class:`RegressionGate` turns them
into variance-aware pass/fail verdicts (median ± k·MAD instead of raw
floors), and :class:`BenchHistory` persists the per-PR trajectory to
``BENCH_history.jsonl`` so regressions surface as trends.

The statistical core (:mod:`repro.bench.stats`, :mod:`repro.bench.gate`)
is pure functions over sample sequences: no wall clock anywhere, so the
gate logic is exactly unit-testable on synthetic samples.
"""

from .gate import (
    DEFAULT_K,
    GateVerdict,
    RegressionGate,
    distinguishable,
    gate_regression,
    gate_speedup,
    speedup_samples,
)
from .history import HISTORY_FILENAME, BenchHistory
from .sampler import DEFAULT_SAMPLES, DEFAULT_WARMUP, Sampler
from .stats import Distribution, iqr, mad, median, quantile, subtract_overhead

__all__ = [
    "Distribution",
    "median",
    "mad",
    "iqr",
    "quantile",
    "subtract_overhead",
    "Sampler",
    "DEFAULT_SAMPLES",
    "DEFAULT_WARMUP",
    "GateVerdict",
    "RegressionGate",
    "DEFAULT_K",
    "speedup_samples",
    "gate_speedup",
    "gate_regression",
    "distinguishable",
    "BenchHistory",
    "HISTORY_FILENAME",
]
