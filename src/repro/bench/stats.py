"""Robust sample statistics for benchmark distributions.

Small-kernel timings are not Gaussian: they are a tight mode (the real
cost) plus a heavy right tail of scheduler preemptions, cache misses and
allocator stalls.  Means and standard deviations are dragged around by
that tail, so every statistic this module exposes is rank-based — the
median locates the mode, the MAD (median absolute deviation) measures
its width, and the IQR brackets the bulk of the mass.  A single 100x
spike moves the mean by orders of magnitude and these three barely at
all, which is what makes them safe to gate CI on.

Everything here is a pure function of its sample sequence (no clocks,
no I/O), so the whole layer is unit-testable on synthetic data; the
:class:`Distribution` record bundles the raw samples with their summary
so persisted benchmark rows stay re-analyzable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

__all__ = [
    "median",
    "mad",
    "quantile",
    "iqr",
    "subtract_overhead",
    "Distribution",
]


def _sorted_samples(samples: Sequence[float]) -> Tuple[float, ...]:
    values = tuple(float(s) for s in samples)
    if not values:
        raise ValueError("need at least one sample")
    if any(math.isnan(v) for v in values):
        raise ValueError("samples must not contain NaN")
    return tuple(sorted(values))


def median(samples: Sequence[float]) -> float:
    """Median of ``samples`` (midpoint average for even counts).

    Parameters
    ----------
    samples : sequence of float
        Non-empty sample sequence, in any order.

    Returns
    -------
    float
        The 0.5 quantile.
    """
    ordered = _sorted_samples(samples)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(samples: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation from ``center`` (default: the median).

    The robust analogue of the standard deviation: the median of the
    absolute residuals.  Unlike the standard deviation it has a
    breakdown point of 50% — up to half the samples can be arbitrary
    outliers without moving it.

    Parameters
    ----------
    samples : sequence of float
        Non-empty sample sequence.
    center : float, optional
        Deviation reference point; the sample median when omitted.

    Returns
    -------
    float
        ``median(|x - center|)``.
    """
    if center is None:
        center = median(samples)
    return median([abs(float(s) - center) for s in samples])


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q`` quantile of ``samples`` with linear interpolation.

    Uses the same convention as ``numpy.quantile``'s default
    (``linear``): the quantile sits at rank ``q * (n - 1)`` of the
    sorted samples, interpolating between neighbors.

    Parameters
    ----------
    samples : sequence of float
        Non-empty sample sequence.
    q : float
        Quantile in ``[0, 1]``.

    Returns
    -------
    float
        The interpolated quantile value.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = _sorted_samples(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def iqr(samples: Sequence[float]) -> float:
    """Interquartile range: ``q75 - q25``.

    Parameters
    ----------
    samples : sequence of float
        Non-empty sample sequence.

    Returns
    -------
    float
        Width of the central 50% of the mass.
    """
    return quantile(samples, 0.75) - quantile(samples, 0.25)


def subtract_overhead(samples: Iterable[float], overhead: float) -> Tuple[float, ...]:
    """Subtract a calibrated measurement overhead, clamped at zero.

    Timer resolution plus dispatch cost is measured once (see
    :meth:`repro.bench.sampler.Sampler.calibrate_overhead`) and removed
    from every sample so that sub-millisecond kernels are not reported
    as slower than they are.  A sample can never go negative: a run
    that finished inside the calibrated overhead clamps to ``0.0``
    rather than producing a nonsense negative duration.

    Parameters
    ----------
    samples : iterable of float
        Raw timed durations in seconds.
    overhead : float
        Calibrated per-call overhead to remove (must be ``>= 0``).

    Returns
    -------
    tuple of float
        ``max(0.0, s - overhead)`` for each sample, original order.
    """
    if overhead < 0.0:
        raise ValueError("overhead must be non-negative")
    return tuple(max(0.0, float(s) - overhead) for s in samples)


@dataclass(frozen=True)
class Distribution:
    """A measured sample distribution plus its provenance.

    The unit of benchmark truth in this repo: instead of one float per
    workload, every measurement carries its raw warm-phase samples (so
    any future statistic can be recomputed), the cold/warmup samples
    that were deliberately excluded, and the calibrated per-call
    overhead that was already subtracted from each sample.

    Attributes
    ----------
    samples : tuple of float
        Warm-phase samples, overhead already subtracted, in run order.
    cold_samples : tuple of float
        Warmup/cold-phase samples excluded from the statistics (first
        touches of code and data: allocator growth, cache fill, JIT-ish
        NumPy setup).  Kept for the record.
    overhead_s : float
        Calibrated per-call timer+dispatch overhead subtracted from
        every sample.
    label : str
        Human-readable workload label.
    phase : str
        ``"warm"`` (statistics describe the steady state, the default)
        or ``"cold"`` (each sample was taken on deliberately cold
        state).
    """

    samples: Tuple[float, ...]
    cold_samples: Tuple[float, ...] = ()
    overhead_s: float = 0.0
    label: str = ""
    phase: str = "warm"
    _stats: Dict[str, float] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        if not self.samples:
            raise ValueError("a Distribution needs at least one sample")
        object.__setattr__(self, "samples", tuple(float(s) for s in self.samples))
        object.__setattr__(self, "cold_samples",
                           tuple(float(s) for s in self.cold_samples))

    # -------------------------------------------------------------- #
    @property
    def n(self) -> int:
        """Number of warm samples."""
        return len(self.samples)

    @property
    def median(self) -> float:
        """Median of the warm samples — the headline number."""
        return self._cached("median", lambda: median(self.samples))

    @property
    def mad(self) -> float:
        """Median absolute deviation of the warm samples."""
        return self._cached("mad", lambda: mad(self.samples))

    @property
    def iqr(self) -> float:
        """Interquartile range of the warm samples."""
        return self._cached("iqr", lambda: iqr(self.samples))

    @property
    def q25(self) -> float:
        """First quartile."""
        return self._cached("q25", lambda: quantile(self.samples, 0.25))

    @property
    def q75(self) -> float:
        """Third quartile."""
        return self._cached("q75", lambda: quantile(self.samples, 0.75))

    @property
    def min(self) -> float:
        """Fastest warm sample (the least-perturbed run)."""
        return min(self.samples)

    @property
    def max(self) -> float:
        """Slowest warm sample (tail indicator, never gated on)."""
        return max(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean — reported for contrast, never gated on."""
        return sum(self.samples) / len(self.samples)

    def _cached(self, key, compute):
        if key not in self._stats:
            self._stats[key] = compute()
        return self._stats[key]

    # -------------------------------------------------------------- #
    def to_dict(self) -> dict:
        """Serialize to a JSON-friendly record (raw samples + summary)."""
        return {
            "label": self.label,
            "phase": self.phase,
            "n": self.n,
            "median_s": self.median,
            "mad_s": self.mad,
            "iqr_s": self.iqr,
            "q25_s": self.q25,
            "q75_s": self.q75,
            "min_s": self.min,
            "max_s": self.max,
            "mean_s": self.mean,
            "overhead_s": self.overhead_s,
            "samples_s": list(self.samples),
            "cold_samples_s": list(self.cold_samples),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Distribution":
        """Rebuild a :class:`Distribution` from :meth:`to_dict` output.

        Only the raw samples and provenance are read; the summary
        statistics are recomputed, so a hand-edited summary cannot
        disagree with the samples it claims to describe.
        """
        return cls(
            samples=tuple(record["samples_s"]),
            cold_samples=tuple(record.get("cold_samples_s", ())),
            overhead_s=float(record.get("overhead_s", 0.0)),
            label=record.get("label", ""),
            phase=record.get("phase", "warm"),
        )
