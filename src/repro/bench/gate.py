"""Variance-gated pass/fail decisions over benchmark distributions.

A raw floor assert (``speedup >= 1.1``) on a noisy microbenchmark is a
coin flip: it passes on quiet machines and fails on loaded ones without
any code change.  The gates here demand that the *worst plausible*
value clears the floor — the median shifted down by ``k`` MADs — so a
verdict only flips when the underlying distribution actually moves.

The decision core is pure functions over sample sequences (no clocks,
no I/O, no global state), which is what makes gate logic unit-testable
on synthetic samples with exact boundary cases.  :class:`RegressionGate`
is the thin object wrapper that applies one ``k`` policy to
:class:`~repro.bench.stats.Distribution` records and baselines loaded
from the bench history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .stats import Distribution, mad, median

__all__ = [
    "GateVerdict",
    "speedup_samples",
    "gate_speedup",
    "distinguishable",
    "gate_regression",
    "RegressionGate",
    "DEFAULT_K",
]

#: default MAD multiplier: ~equivalent to 2 sigma for Gaussian noise
#: (MAD ~= 0.674 sigma), deliberately conservative for heavy tails
DEFAULT_K = 3.0


@dataclass(frozen=True)
class GateVerdict:
    """Outcome of one gate decision.

    Attributes
    ----------
    passed : bool
        Whether the gate held.
    margin : float
        Distance between the variance-adjusted statistic and its
        threshold (positive = passed with room; negative = failed by
        that much).  Same units as the gated quantity.
    reason : str
        Human-readable decision trace (statistic, threshold, k).
    gating : bool
        ``False`` for informational rows: the verdict is recorded but
        must never fail a test or a CI job.
    """

    passed: bool
    margin: float
    reason: str
    gating: bool = True


def speedup_samples(reference: Sequence[float],
                    candidate: Sequence[float]) -> Tuple[float, ...]:
    """All pairwise ratios ``reference_i / candidate_j``.

    The Hodges–Lehmann-style construction: the median of pairwise
    ratios is a robust speedup estimator, and their spread reflects
    variance on *both* sides of the comparison (a noisy reference can
    fake a speedup as easily as a noisy candidate).  Zero candidate
    samples (a run faster than the calibrated overhead) are clamped to
    the smallest positive candidate sample so ratios stay finite; if
    every candidate sample is zero the ratio set is a single ``inf``.

    Parameters
    ----------
    reference : sequence of float
        Duration samples of the baseline implementation.
    candidate : sequence of float
        Duration samples of the implementation under test.

    Returns
    -------
    tuple of float
        ``len(reference) * len(candidate)`` ratios.
    """
    if not reference or not candidate:
        raise ValueError("speedup_samples needs non-empty sample sets")
    positive = [c for c in candidate if c > 0.0]
    if not positive:
        return (float("inf"),)
    floor_value = min(positive)
    clamped = [c if c > 0.0 else floor_value for c in candidate]
    return tuple(r / c for r in reference for c in clamped)


def gate_speedup(speedups: Sequence[float], floor: float,
                 k: float = DEFAULT_K, gating: bool = True) -> GateVerdict:
    """Pass iff the variance-adjusted speedup clears ``floor``.

    The gated statistic is ``median(speedups) - k * MAD(speedups)``:
    the speedup we would still believe if the measurement were having a
    moderately bad day.  Strictly greater than ``floor`` is required —
    sitting exactly on the floor fails.

    Parameters
    ----------
    speedups : sequence of float
        Speedup ratio samples (see :func:`speedup_samples`).
    floor : float
        Minimum acceptable speedup.
    k : float, optional
        MAD multiplier (default :data:`DEFAULT_K`).
    gating : bool, optional
        Stamped onto the verdict; ``False`` marks an informational row.

    Returns
    -------
    GateVerdict
        ``passed``, the margin over the floor, and a decision trace.
    """
    if k < 0.0:
        raise ValueError("k must be non-negative")
    med = median(speedups)
    spread = mad(speedups)
    adjusted = med - k * spread
    margin = adjusted - floor
    verdict = GateVerdict(
        passed=margin > 0.0,
        margin=margin,
        reason=(f"median {med:.4g} - {k:g}*MAD {spread:.4g} = {adjusted:.4g} "
                f"vs floor {floor:g}"),
        gating=gating,
    )
    return verdict


def distinguishable(speedups: Sequence[float], baseline: float = 1.0,
                    k: float = DEFAULT_K) -> bool:
    """Whether a speedup distribution is statistically distinct from ``baseline``.

    ``True`` when the whole ``median ± k*MAD`` band sits on one side of
    ``baseline``.  A kernel whose advantage is *not* distinguishable
    from 1x must be demoted to an informational row — gating on it
    would gate on noise.

    Parameters
    ----------
    speedups : sequence of float
        Speedup ratio samples.
    baseline : float, optional
        The null value (default ``1.0`` — no speedup).
    k : float, optional
        MAD multiplier.

    Returns
    -------
    bool
        ``True`` iff ``median - k*MAD > baseline`` or
        ``median + k*MAD < baseline``.
    """
    med = median(speedups)
    spread = mad(speedups)
    return med - k * spread > baseline or med + k * spread < baseline


def gate_regression(candidate: Sequence[float],
                    baseline: Optional[Sequence[float]],
                    k: float = DEFAULT_K,
                    tolerance: float = 0.0) -> GateVerdict:
    """Pass unless ``candidate`` is credibly slower than ``baseline``.

    The regression threshold is
    ``baseline_median + k * max(baseline_MAD, candidate_MAD)
    + tolerance * baseline_median``: the candidate median must exceed
    the baseline median by more than the larger of the two spreads
    (scaled by ``k``) plus an optional deliberate allowance before the
    gate fails.  Using the larger MAD means a degenerately quiet
    baseline cannot flag an ordinary noisy candidate, and vice versa.

    Parameters
    ----------
    candidate : sequence of float
        Duration samples of the run under test (lower is better).
    baseline : sequence of float or None
        Stored baseline samples.  ``None`` or empty passes trivially —
        there is nothing to regress against (first run of a new
        workload).
    k : float, optional
        MAD multiplier.
    tolerance : float, optional
        Additional allowed slowdown as a fraction of the baseline
        median (e.g. ``0.05`` tolerates 5% drift).

    Returns
    -------
    GateVerdict
        ``passed`` is ``False`` only for a credible regression; the
        margin is ``threshold - candidate_median`` in seconds.
    """
    if k < 0.0:
        raise ValueError("k must be non-negative")
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    if not baseline:
        return GateVerdict(passed=True, margin=float("inf"),
                           reason="no baseline: first record for this workload")
    cand_med = median(candidate)
    base_med = median(baseline)
    spread = max(mad(baseline), mad(candidate))
    threshold = base_med + k * spread + tolerance * base_med
    margin = threshold - cand_med
    return GateVerdict(
        passed=margin > 0.0,
        margin=margin,
        reason=(f"candidate median {cand_med:.4g} vs baseline {base_med:.4g} "
                f"+ {k:g}*MAD {spread:.4g} + tol {tolerance:g} "
                f"= threshold {threshold:.4g}"),
    )


class RegressionGate:
    """One ``k`` policy applied to distribution records and baselines.

    Parameters
    ----------
    k : float, optional
        MAD multiplier used by every check (default :data:`DEFAULT_K`).
    tolerance : float, optional
        Baseline-relative slowdown allowance for
        :meth:`check_baseline` (default ``0.0``).
    """

    def __init__(self, k: float = DEFAULT_K, tolerance: float = 0.0) -> None:
        if k < 0.0:
            raise ValueError("k must be non-negative")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        self.k = k
        self.tolerance = tolerance

    def check_speedup(self, reference: Distribution, candidate: Distribution,
                      floor: float, gating: bool = True) -> GateVerdict:
        """Gate ``reference``-over-``candidate`` speedup against ``floor``.

        Parameters
        ----------
        reference : Distribution
            Baseline-implementation duration distribution.
        candidate : Distribution
            Candidate-implementation duration distribution.
        floor : float
            Minimum variance-adjusted speedup.
        gating : bool, optional
            ``False`` records the verdict as informational.

        Returns
        -------
        GateVerdict
        """
        ratios = speedup_samples(reference.samples, candidate.samples)
        return gate_speedup(ratios, floor, k=self.k, gating=gating)

    def check_baseline(self, candidate: Distribution,
                       baseline: Optional[Distribution]) -> GateVerdict:
        """Gate ``candidate`` against a stored baseline distribution.

        Parameters
        ----------
        candidate : Distribution
            The run under test.
        baseline : Distribution or None
            The stored baseline (``None`` passes trivially).

        Returns
        -------
        GateVerdict
        """
        return gate_regression(
            candidate.samples,
            baseline.samples if baseline is not None else None,
            k=self.k, tolerance=self.tolerance)

    def speedup_stats(self, reference: Distribution,
                      candidate: Distribution) -> dict:
        """Summary statistics of the pairwise speedup distribution.

        Returns
        -------
        dict
            ``median``, ``mad`` and the variance-adjusted
            ``median - k*MAD`` lower bound, JSON-ready.
        """
        ratios = speedup_samples(reference.samples, candidate.samples)
        med = median(ratios)
        spread = mad(ratios)
        return {
            "speedup_median": med,
            "speedup_mad": spread,
            "speedup_lower_bound": med - self.k * spread,
            "k": self.k,
        }
