"""Distribution-capturing workload sampler with overhead calibration.

The measurement discipline (after the CORTEX small-kernel noise-analysis
methodology) is:

1. **Distributions, not points.**  Each workload runs ``n_samples``
   times and the full sample vector is kept; every downstream consumer
   works on medians/MADs of that vector.
2. **Explicit warm/cold phases.**  The first ``warmup`` runs are timed
   but excluded from the statistics — they measure cache fill and
   allocator growth, not the steady state.  A cold-phase sampler
   (``phase="cold"``) inverts this: a caller-supplied ``reset`` runs
   before every sample so each one observes deliberately cold state.
3. **Sequential, non-interleaved execution.**  One sample finishes
   before the next starts, and nothing else from the harness runs in
   between; interleaving two workloads would let one pollute the
   other's cache state (the benchmark conftest pins this at the pytest
   level too).
4. **Overhead subtraction.**  The cost of the timer pair plus the
   function dispatch is calibrated on an empty callable and removed
   from every sample, clamped at zero.

The timer is injectable so the whole pipeline is testable with a fake
clock — tier-1 tests of this module never sleep and never race.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from .stats import Distribution, median, subtract_overhead

__all__ = ["Sampler", "DEFAULT_SAMPLES", "DEFAULT_WARMUP"]

#: default warm-phase sample count; override with REPRO_BENCH_SAMPLES
DEFAULT_SAMPLES = 20
#: default warmup (cold, excluded) runs; override with REPRO_BENCH_WARMUP
DEFAULT_WARMUP = 2

#: empty-callable timings used to calibrate per-call overhead
_CALIBRATION_REPS = 64


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class Sampler:
    """Runs workloads repeatedly and emits :class:`~repro.bench.stats.Distribution` records.

    Parameters
    ----------
    n_samples : int, optional
        Warm-phase samples per workload.  Defaults to the
        ``REPRO_BENCH_SAMPLES`` environment variable, else
        :data:`DEFAULT_SAMPLES` — CI smoke jobs lower the variable to
        keep wall time bounded while the committed records use the
        full count.
    warmup : int, optional
        Cold runs before the warm phase (timed, recorded, excluded
        from statistics).  Defaults to ``REPRO_BENCH_WARMUP``, else
        :data:`DEFAULT_WARMUP`.
    timer : callable, optional
        Zero-argument monotonic clock returning seconds
        (``time.perf_counter`` by default).  Injectable for
        deterministic tests.
    calibrate : bool, optional
        Measure and subtract per-call overhead (default ``True``).
        The calibration runs once, lazily, per sampler.
    """

    def __init__(self, n_samples: Optional[int] = None, warmup: Optional[int] = None,
                 timer: Callable[[], float] = time.perf_counter,
                 calibrate: bool = True) -> None:
        self.n_samples = (n_samples if n_samples is not None
                          else _env_int("REPRO_BENCH_SAMPLES", DEFAULT_SAMPLES))
        self.warmup = (warmup if warmup is not None
                       else _env_int("REPRO_BENCH_WARMUP", DEFAULT_WARMUP))
        if self.n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.timer = timer
        self._calibrate = calibrate
        self._overhead: Optional[float] = None

    # -------------------------------------------------------------- #
    def calibrate_overhead(self) -> float:
        """Median cost of timing an empty callable (timer pair + dispatch).

        Cached after the first call; subtracted from every subsequent
        sample so sub-millisecond kernels are not inflated by harness
        cost.

        Returns
        -------
        float
            Calibrated per-call overhead in seconds (``0.0`` when the
            sampler was built with ``calibrate=False``).
        """
        if not self._calibrate:
            return 0.0
        if self._overhead is None:
            def nothing():
                return None
            costs = []
            for _ in range(_CALIBRATION_REPS):
                start = self.timer()
                nothing()
                costs.append(self.timer() - start)
            self._overhead = max(0.0, median(costs))
        return self._overhead

    # -------------------------------------------------------------- #
    def sample(self, fn: Callable[[], object], *, label: str = "",
               reset: Optional[Callable[[], None]] = None,
               phase: str = "warm") -> Distribution:
        """Measure ``fn`` and return its duration distribution.

        Parameters
        ----------
        fn : callable
            Zero-argument workload; its return value is discarded.
        label : str, optional
            Workload label stored on the distribution.
        reset : callable, optional
            State-reset hook.  In the warm phase it is ignored; in the
            cold phase it runs (untimed) before *every* sample so each
            one observes cold state.
        phase : str, optional
            ``"warm"`` (default): ``warmup`` priming runs are recorded
            as cold samples, then ``n_samples`` steady-state samples
            are taken.  ``"cold"``: no priming; ``reset`` runs before
            each of the ``n_samples`` samples.

        Returns
        -------
        Distribution
            Overhead-subtracted warm samples plus the excluded cold
            samples and the calibrated overhead.
        """
        if phase not in ("warm", "cold"):
            raise ValueError(f"unknown phase {phase!r}")
        overhead = self.calibrate_overhead()

        def timed_call() -> float:
            start = self.timer()
            fn()
            return self.timer() - start

        cold: list = []
        if phase == "warm":
            for _ in range(self.warmup):
                cold.append(timed_call())
        raw: list = []
        for _ in range(self.n_samples):
            if phase == "cold" and reset is not None:
                reset()
            raw.append(timed_call())
        return Distribution(
            samples=subtract_overhead(raw, overhead),
            cold_samples=subtract_overhead(cold, overhead),
            overhead_s=overhead,
            label=label,
            phase=phase,
        )

    # -------------------------------------------------------------- #
    def sample_values(self, fn: Callable[[], float], *, label: str = "",
                      phase: str = "warm") -> Distribution:
        """Collect a distribution of values ``fn`` measures internally.

        For workloads whose quantity of interest is not their own wall
        time — e.g. a store's internally-accounted stall seconds — the
        sampler still provides the protocol (sequential runs, explicit
        warmup exclusion) but records ``fn``'s float return values
        verbatim; no timer is involved and no overhead is subtracted.

        Parameters
        ----------
        fn : callable
            Zero-argument workload returning the measured float.
        label : str, optional
            Workload label stored on the distribution.
        phase : str, optional
            Recorded on the distribution; warmup runs are excluded
            either way.

        Returns
        -------
        Distribution
            ``n_samples`` returned values, warmup returns kept as cold
            samples.
        """
        cold = [float(fn()) for _ in range(self.warmup)]
        values = [float(fn()) for _ in range(self.n_samples)]
        return Distribution(samples=tuple(values), cold_samples=tuple(cold),
                            overhead_s=0.0, label=label, phase=phase)
