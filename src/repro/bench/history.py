"""Append-mode benchmark history: the cross-PR perf trajectory.

One JSON record per line (``BENCH_history.jsonl`` at the repo root):
append-only, so every PR's distributions remain visible and a slow
30%-per-quarter drift shows up as a trend even when each individual
step hides inside the gate's noise band.  Each record carries the full
raw-sample distributions (via
:meth:`repro.bench.stats.Distribution.to_dict`), the suite/kernel/
workload identity, a wall-clock timestamp and the commit SHA when CI
provides one — enough to re-run any statistical question later without
re-running the benchmark.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from .stats import Distribution

__all__ = ["BenchHistory", "HISTORY_FILENAME"]

#: canonical history file name at the repo root
HISTORY_FILENAME = "BENCH_history.jsonl"


class BenchHistory:
    """Append-mode JSONL store of benchmark distribution records.

    Parameters
    ----------
    path : str or Path
        The ``.jsonl`` file; created on first append.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    # -------------------------------------------------------------- #
    def append(self, suite: str, kernel: str, workload: str,
               distributions: Dict[str, Distribution],
               stats: Optional[dict] = None,
               meta: Optional[dict] = None) -> dict:
        """Append one record and return it.

        Parameters
        ----------
        suite : str
            Benchmark suite name (e.g. ``"kernels"``, ``"spill"``).
        kernel : str
            Workload identity within the suite; baselines are looked
            up by ``(suite, kernel)``.
        workload : str
            Human-readable workload description.
        distributions : dict of str to Distribution
            Named roles (e.g. ``"reference"``/``"vectorized"``, or
            ``"candidate"``) mapped to their measured distributions.
        stats : dict, optional
            Derived statistics (speedup summaries, gate verdicts).
        meta : dict, optional
            Free-form provenance merged into the record.

        Returns
        -------
        dict
            The record as written (one JSON line).
        """
        record = {
            "suite": suite,
            "kernel": kernel,
            "workload": workload,
            "timestamp": time.time(),
            "sha": os.environ.get("GITHUB_SHA"),
            "distributions": {name: dist.to_dict()
                              for name, dist in distributions.items()},
        }
        if stats:
            record["stats"] = stats
        if meta:
            record["meta"] = meta
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        return record

    # -------------------------------------------------------------- #
    def load(self) -> List[dict]:
        """All records in append order (empty list when no file yet).

        Malformed lines (e.g. a truncated final line from a killed CI
        job) are skipped rather than poisoning every future read of
        the history.
        """
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    def records(self, suite: Optional[str] = None,
                kernel: Optional[str] = None) -> List[dict]:
        """Records filtered by suite and/or kernel, append order.

        Parameters
        ----------
        suite : str, optional
            Keep only this suite.
        kernel : str, optional
            Keep only this kernel.

        Returns
        -------
        list of dict
        """
        out = self.load()
        if suite is not None:
            out = [r for r in out if r.get("suite") == suite]
        if kernel is not None:
            out = [r for r in out if r.get("kernel") == kernel]
        return out

    def baseline(self, suite: str, kernel: str,
                 role: str = "candidate") -> Optional[Distribution]:
        """Latest stored distribution for ``(suite, kernel, role)``.

        The regression gate compares a fresh candidate distribution
        against this; ``None`` (no history yet) makes the gate pass
        trivially.

        Parameters
        ----------
        suite : str
            Suite name.
        kernel : str
            Kernel/workload identity.
        role : str, optional
            Which named distribution of the record to return
            (default ``"candidate"``).

        Returns
        -------
        Distribution or None
        """
        for record in reversed(self.records(suite, kernel)):
            dists = record.get("distributions", {})
            if role in dists:
                try:
                    return Distribution.from_dict(dists[role])
                except (KeyError, ValueError, TypeError):
                    continue
        return None
