"""Universe and AtomGroup: the user-facing system objects.

These mirror the MDAnalysis ``Universe``/``AtomGroup`` pattern used
throughout the paper: the user builds a ``Universe`` from topology +
trajectory, selects an ``AtomGroup`` with a selection string (for example
the phosphorus head groups of a bilayer), and hands the group's positions
to an analysis algorithm.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .selections import select
from .topology import Topology
from .trajectory import Frame, Trajectory

__all__ = ["Universe", "AtomGroup"]


class AtomGroup:
    """An ordered set of atoms belonging to a :class:`Universe`.

    The group is defined by integer indices into the universe's topology;
    positions are always read from the universe's *current frame*, so
    iterating the universe's trajectory updates what
    :attr:`positions` returns — the same semantics MDAnalysis users rely
    on when analyzing a trajectory frame by frame.
    """

    def __init__(self, universe: "Universe", indices: Sequence[int]) -> None:
        self._universe = universe
        self._indices = np.asarray(indices, dtype=np.int64)
        if self._indices.size and (
            self._indices.min() < 0 or self._indices.max() >= universe.n_atoms
        ):
            raise IndexError("atom indices out of range for universe")

    # ------------------------------------------------------------------ #
    @property
    def universe(self) -> "Universe":
        """The parent universe."""
        return self._universe

    @property
    def indices(self) -> np.ndarray:
        """Indices of the member atoms into the universe."""
        return self._indices

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the group."""
        return int(self._indices.size)

    def __len__(self) -> int:
        return self.n_atoms

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AtomGroup with {self.n_atoms} atoms>"

    # ------------------------------------------------------------------ #
    @property
    def positions(self) -> np.ndarray:
        """Positions of the member atoms in the universe's current frame."""
        return self._universe.current_frame.positions[self._indices]

    @property
    def names(self) -> np.ndarray:
        """Atom names of the member atoms."""
        return self._universe.topology.names[self._indices]

    @property
    def resids(self) -> np.ndarray:
        """Residue ids of the member atoms."""
        return self._universe.topology.resids[self._indices]

    @property
    def resnames(self) -> np.ndarray:
        """Residue names of the member atoms."""
        return self._universe.topology.resnames[self._indices]

    @property
    def masses(self) -> np.ndarray:
        """Masses of the member atoms."""
        return self._universe.topology.masses[self._indices]

    @property
    def topology(self) -> Topology:
        """A topology restricted to this group."""
        return self._universe.topology.subset(self._indices)

    # ------------------------------------------------------------------ #
    def center_of_geometry(self) -> np.ndarray:
        """Centroid of the member atoms in the current frame."""
        if self.n_atoms == 0:
            raise ValueError("cannot compute the center of an empty AtomGroup")
        return self.positions.mean(axis=0)

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted center of the member atoms in the current frame."""
        if self.n_atoms == 0:
            raise ValueError("cannot compute the center of an empty AtomGroup")
        masses = self.masses
        total = masses.sum()
        if total <= 0:
            return self.center_of_geometry()
        return (self.positions * masses[:, None]).sum(axis=0) / total

    def select_atoms(self, selection: str) -> "AtomGroup":
        """Refine this group with another selection string."""
        sub = select(selection, self.topology, self.positions)
        return AtomGroup(self._universe, self._indices[sub])

    def trajectory_slice(self) -> Trajectory:
        """Extract the full trajectory restricted to this group's atoms."""
        return self._universe.trajectory.select_atoms_by_index(self._indices)

    def __getitem__(self, item) -> "AtomGroup":
        if isinstance(item, (int, np.integer)):
            return AtomGroup(self._universe, [self._indices[int(item)]])
        return AtomGroup(self._universe, self._indices[item])

    def union(self, other: "AtomGroup") -> "AtomGroup":
        """Union of two groups (order preserving, duplicates removed)."""
        if other.universe is not self._universe:
            raise ValueError("cannot combine AtomGroups from different universes")
        combined = np.concatenate([self._indices, other._indices])
        _, first = np.unique(combined, return_index=True)
        return AtomGroup(self._universe, combined[np.sort(first)])


class Universe:
    """Topology + trajectory, the top-level analysis object.

    Parameters
    ----------
    topology:
        The system topology.
    trajectory:
        The trajectory; its atom count must match the topology.
    """

    def __init__(self, topology: Topology, trajectory: Trajectory) -> None:
        if topology.n_atoms != trajectory.n_atoms:
            raise ValueError(
                f"topology ({topology.n_atoms} atoms) does not match trajectory "
                f"({trajectory.n_atoms} atoms)"
            )
        self.topology = topology
        self.trajectory = trajectory
        self._frame_index = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_positions(cls, positions: np.ndarray,
                       topology: Topology | None = None) -> "Universe":
        """Build a universe from a raw position array.

        ``positions`` may be ``(n_atoms, 3)`` (single frame) or
        ``(n_frames, n_atoms, 3)``.
        """
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim == 2:
            positions = positions[None, :, :]
        traj = Trajectory(positions, topology=topology)
        return cls(traj.topology, traj)

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the system."""
        return self.topology.n_atoms

    @property
    def n_frames(self) -> int:
        """Number of frames in the trajectory."""
        return self.trajectory.n_frames

    # ------------------------------------------------------------------ #
    @property
    def current_frame(self) -> Frame:
        """The currently active frame (set by :meth:`goto_frame` / iteration)."""
        return self.trajectory.frame(self._frame_index)

    @property
    def frame_index(self) -> int:
        """Index of the currently active frame."""
        return self._frame_index

    def goto_frame(self, index: int) -> Frame:
        """Make ``index`` the active frame and return it."""
        frame = self.trajectory.frame(index)
        self._frame_index = frame.index
        return frame

    def iter_frames(self) -> Iterator[Frame]:
        """Iterate over frames, updating the active frame as we go."""
        for i in range(self.n_frames):
            yield self.goto_frame(i)

    # ------------------------------------------------------------------ #
    def select_atoms(self, selection: str) -> AtomGroup:
        """Select atoms with the mini selection language.

        Examples
        --------
        >>> u.select_atoms("name P")            # doctest: +SKIP
        >>> u.select_atoms("resname POPC and prop z > 50")  # doctest: +SKIP
        """
        indices = select(selection, self.topology, self.current_frame.positions)
        return AtomGroup(self, indices)

    def atoms(self) -> AtomGroup:
        """An AtomGroup containing every atom."""
        return AtomGroup(self, np.arange(self.n_atoms, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Universe: {self.n_atoms} atoms, {self.n_frames} frames>"
