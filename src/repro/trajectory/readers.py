"""Trajectory readers.

The paper's workflows read trajectory files (DCD/XTC through MDAnalysis,
NetCDF through CPPTraj) from a parallel filesystem inside every task.  We
provide three self-contained formats that preserve the same access
patterns without external format libraries:

``.npy``
    a raw ``(n_frames, n_atoms, 3)`` array — dense, memory-mappable;
    this is the format the parallel PSA tasks read out-of-core.
``.npz``
    positions plus topology, times and box metadata in one archive.
``.xyz``
    the standard plain-text XYZ multi-frame format, for interoperability
    with external viewers and for small human-readable fixtures.
"""

from __future__ import annotations

import json
import os
from typing import List

import numpy as np

from .topology import Topology
from .trajectory import LazyTrajectory, Trajectory, TrajectoryEnsemble

__all__ = [
    "read_npy",
    "read_npz",
    "read_xyz",
    "read_trajectory",
    "load_ensemble",
    "open_lazy",
]


def read_npy(path: str | os.PathLike, topology: Topology | None = None,
             name: str | None = None) -> Trajectory:
    """Read a dense ``(n_frames, n_atoms, 3)`` ``.npy`` file."""
    path = os.fspath(path)
    positions = np.load(path)
    if positions.ndim == 2:
        positions = positions[None, :, :]
    return Trajectory(positions, topology=topology,
                      name=name or os.path.splitext(os.path.basename(path))[0])


def read_npz(path: str | os.PathLike) -> Trajectory:
    """Read a ``.npz`` archive written by :func:`repro.trajectory.writers.write_npz`."""
    path = os.fspath(path)
    with np.load(path, allow_pickle=False) as data:
        positions = data["positions"]
        times = data["times"] if "times" in data else None
        box = data["box"] if "box" in data else None
        topology = None
        if "topology_json" in data:
            top_dict = json.loads(str(data["topology_json"]))
            topology = Topology.from_dict(top_dict)
        name = str(data["name"]) if "name" in data else None
    return Trajectory(positions, topology=topology, times=times, box=box,
                      name=name or os.path.splitext(os.path.basename(path))[0])


def read_xyz(path: str | os.PathLike, name: str | None = None) -> Trajectory:
    """Read a multi-frame XYZ text file.

    The XYZ format repeats, per frame::

        <n_atoms>
        <comment line>
        <element> <x> <y> <z>
        ...
    """
    path = os.fspath(path)
    frames: List[np.ndarray] = []
    elements: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.rstrip("\n") for ln in fh]
    i = 0
    first_frame = True
    while i < len(lines):
        header = lines[i].strip()
        if not header:
            i += 1
            continue
        try:
            n_atoms = int(header)
        except ValueError as exc:
            raise ValueError(f"invalid XYZ atom-count line {i + 1}: {header!r}") from exc
        if i + 1 + n_atoms >= len(lines) + 1 and n_atoms > 0 and i + 1 + n_atoms > len(lines):
            raise ValueError(f"truncated XYZ frame starting at line {i + 1}")
        coords = np.empty((n_atoms, 3), dtype=np.float64)
        for j in range(n_atoms):
            parts = lines[i + 2 + j].split()
            if len(parts) < 4:
                raise ValueError(f"invalid XYZ atom line {i + 3 + j}: {lines[i + 2 + j]!r}")
            if first_frame:
                elements.append(parts[0])
            coords[j] = [float(parts[1]), float(parts[2]), float(parts[3])]
        frames.append(coords)
        first_frame = False
        i += 2 + n_atoms
    if not frames:
        raise ValueError(f"no frames found in XYZ file {path}")
    positions = np.stack(frames)
    topology = Topology.from_names(elements)
    return Trajectory(positions, topology=topology,
                      name=name or os.path.splitext(os.path.basename(path))[0])


_READERS = {".npy": read_npy, ".npz": lambda p, **kw: read_npz(p), ".xyz": read_xyz}


def read_trajectory(path: str | os.PathLike, **kwargs) -> Trajectory:
    """Dispatch on file extension (.npy / .npz / .xyz)."""
    ext = os.path.splitext(os.fspath(path))[1].lower()
    try:
        reader = _READERS[ext]
    except KeyError as exc:
        raise ValueError(
            f"unsupported trajectory format {ext!r}; supported: {sorted(_READERS)}"
        ) from exc
    return reader(path, **kwargs)


def open_lazy(path: str | os.PathLike, topology: Topology | None = None) -> LazyTrajectory:
    """Open a ``.npy`` trajectory lazily (memory-mapped)."""
    return LazyTrajectory(path, topology=topology)


def load_ensemble(paths: List[str | os.PathLike]) -> TrajectoryEnsemble:
    """Load several trajectory files into an ensemble (PSA input)."""
    ensemble = TrajectoryEnsemble()
    for path in paths:
        ensemble.add(read_trajectory(path))
    return ensemble
