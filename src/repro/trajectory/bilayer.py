"""Synthetic lipid-bilayer generator for the Leaflet Finder experiments.

The paper's Leaflet Finder experiments use membrane systems of 131k, 262k,
524k and 4M atoms whose neighbor graphs contain 896k, 1.75M, 3.52M and
44.6M edges respectively.  Those systems come from production biomolecular
simulations; this module builds geometrically equivalent synthetic
bilayers:

* two planar sheets ("leaflets") of head-group particles separated in ``z``
  by more than the cutoff, so the connected-components step must find
  exactly two components,
* particles placed on a jittered 2-D lattice inside each sheet, with the
  lattice spacing chosen so that the neighbor graph's edge density matches
  the paper's datasets (≈ 6.8–11 edges per particle at the default
  cutoff), and
* optional curvature (a gentle sinusoidal undulation), which keeps the two
  sheets "curved but locally approximately parallel" exactly as the paper
  describes the real systems.

Everything is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .topology import Topology
from .universe import Universe
from .trajectory import Trajectory

__all__ = [
    "BilayerSpec",
    "PAPER_LEAFLET_SIZES",
    "make_bilayer",
    "make_bilayer_universe",
    "paper_leaflet_system",
]

#: Atom counts of the Leaflet Finder datasets in the paper (section 4.3).
PAPER_LEAFLET_SIZES = {
    "131k": 131_072,
    "262k": 262_144,
    "524k": 524_288,
    "4M": 4_194_304,
}


@dataclass(frozen=True)
class BilayerSpec:
    """Specification of a synthetic bilayer.

    Attributes
    ----------
    n_atoms:
        Total number of head-group particles (split evenly over the two
        leaflets; odd counts put the extra particle in the upper leaflet).
    spacing:
        Mean in-plane lattice spacing between neighboring particles
        (Angstrom).  With the default cutoff of 15 A this yields an edge
        density comparable to the paper's systems.
    separation:
        Distance in ``z`` between the two leaflets (must exceed the cutoff
        used for the analysis for the two components to be distinct).
    jitter:
        Standard deviation of the in-plane and out-of-plane Gaussian noise
        added to lattice positions.
    curvature_amplitude / curvature_periods:
        Amplitude (Angstrom) and number of periods of a sinusoidal
        undulation applied to both leaflets, emulating membrane curvature.
    seed:
        RNG seed.
    """

    n_atoms: int = 1024
    spacing: float = 8.0
    separation: float = 35.0
    jitter: float = 0.6
    curvature_amplitude: float = 0.0
    curvature_periods: float = 1.0
    seed: int = 42

    def validate(self) -> None:
        """Raise :class:`ValueError` for non-sensical specifications."""
        if self.n_atoms < 2:
            raise ValueError("a bilayer needs at least 2 particles")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        if self.separation <= 0:
            raise ValueError("separation must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


def _leaflet_sheet(n: int, spacing: float, jitter: float, z0: float,
                   amplitude: float, periods: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Build one leaflet: ``n`` particles on a jittered square lattice at ``z0``."""
    side = int(np.ceil(np.sqrt(n)))
    # lattice coordinates, then keep the first n (row-major) positions
    ix, iy = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    xy = np.stack([ix.ravel(), iy.ravel()], axis=1)[:n].astype(np.float64) * spacing
    extent = max(side * spacing, 1.0)
    z = np.full(n, z0)
    if amplitude != 0.0:
        # gentle undulation shared by both leaflets keeps them locally parallel
        z = z + amplitude * np.sin(2.0 * np.pi * periods * xy[:, 0] / extent) \
              * np.cos(2.0 * np.pi * periods * xy[:, 1] / extent)
    positions = np.column_stack([xy[:, 0], xy[:, 1], z])
    if jitter > 0:
        positions = positions + rng.normal(scale=jitter, size=positions.shape)
    return positions


def make_bilayer(spec: BilayerSpec) -> tuple[np.ndarray, np.ndarray]:
    """Generate bilayer positions and ground-truth leaflet labels.

    Returns
    -------
    positions:
        ``(n_atoms, 3)`` array of head-group particle positions.
    labels:
        ``(n_atoms,)`` integer array; 0 for the lower leaflet, 1 for the
        upper leaflet.  This is the ground truth the Leaflet Finder must
        recover (up to component relabeling).
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    n_upper = spec.n_atoms // 2 + spec.n_atoms % 2
    n_lower = spec.n_atoms // 2
    upper = _leaflet_sheet(n_upper, spec.spacing, spec.jitter, spec.separation,
                           spec.curvature_amplitude, spec.curvature_periods, rng)
    lower = _leaflet_sheet(n_lower, spec.spacing, spec.jitter, 0.0,
                           spec.curvature_amplitude, spec.curvature_periods, rng)
    positions = np.concatenate([lower, upper], axis=0)
    labels = np.concatenate([
        np.zeros(n_lower, dtype=np.int64),
        np.ones(n_upper, dtype=np.int64),
    ])
    # shuffle atoms so that leaflet membership is not trivially contiguous —
    # real topologies interleave lipids from both leaflets.
    order = rng.permutation(spec.n_atoms)
    return positions[order], labels[order]


def make_bilayer_universe(spec: BilayerSpec) -> tuple[Universe, np.ndarray]:
    """Generate a bilayer wrapped in a :class:`Universe` plus ground truth.

    The head-group particles are named ``"P"`` in residues named ``"LIP"``,
    so the paper's canonical selection ``"name P"`` selects all of them.
    """
    positions, labels = make_bilayer(spec)
    topology = Topology.uniform(spec.n_atoms, name="P", element="P",
                                resname="LIP", segid="MEMB",
                                atoms_per_residue=1)
    trajectory = Trajectory(positions[None, :, :], topology=topology, name="bilayer")
    return Universe(topology, trajectory), labels


def paper_leaflet_system(size: str = "131k", *, scale: float = 1.0,
                         seed: int = 42,
                         curvature_amplitude: float = 4.0) -> tuple[np.ndarray, np.ndarray]:
    """Generate a bilayer matching one of the paper's Leaflet Finder datasets.

    Parameters
    ----------
    size:
        One of ``"131k"``, ``"262k"``, ``"524k"``, ``"4M"``.
    scale:
        Multiplier applied to the atom count so laptop-scale runs can
        exercise the identical code path on a smaller system
        (``scale=1.0`` reproduces the paper's atom counts).
    """
    if size not in PAPER_LEAFLET_SIZES:
        raise ValueError(
            f"size must be one of {sorted(PAPER_LEAFLET_SIZES)}, got {size!r}"
        )
    n_atoms = max(2, int(round(PAPER_LEAFLET_SIZES[size] * scale)))
    spec = BilayerSpec(n_atoms=n_atoms, seed=seed,
                       curvature_amplitude=curvature_amplitude)
    return make_bilayer(spec)
