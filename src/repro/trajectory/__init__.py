"""Trajectory substrate: topology, trajectories, universes, generators.

This subpackage is a compact, self-contained replacement for the parts of
MDAnalysis the paper relies on: an object model for topologies and
trajectories, an atom-selection mini-language, file readers/writers, and
deterministic synthetic data generators (transition ensembles for PSA and
lipid bilayers for the Leaflet Finder).
"""

from .topology import Topology, guess_masses
from .trajectory import Frame, LazyTrajectory, Trajectory, TrajectoryEnsemble
from .universe import AtomGroup, Universe
from .selections import SelectionError, parse_selection, select
from .readers import (
    load_ensemble,
    open_lazy,
    read_npy,
    read_npz,
    read_trajectory,
    read_xyz,
)
from .writers import write_ensemble, write_npy, write_npz, write_trajectory, write_xyz
from .streaming import (
    ChunkSource,
    ChunkedPositions,
    ChunkedTrajectory,
    FrameChunkReader,
    FrameChunkWriter,
    StreamingEnsemble,
    open_streaming_ensemble,
    write_frame_chunks,
    write_position_chunks,
)
from .generators import (
    PAPER_PSA_N_FRAMES,
    PAPER_PSA_SIZES,
    EnsembleSpec,
    make_clustered_ensemble,
    make_ensemble,
    paper_psa_ensemble,
    random_walk_trajectory,
    transition_trajectory,
)
from .bilayer import (
    PAPER_LEAFLET_SIZES,
    BilayerSpec,
    make_bilayer,
    make_bilayer_universe,
    paper_leaflet_system,
)

__all__ = [
    "Topology",
    "guess_masses",
    "Frame",
    "Trajectory",
    "LazyTrajectory",
    "TrajectoryEnsemble",
    "Universe",
    "AtomGroup",
    "SelectionError",
    "parse_selection",
    "select",
    "read_npy",
    "read_npz",
    "read_xyz",
    "read_trajectory",
    "load_ensemble",
    "open_lazy",
    "write_npy",
    "write_npz",
    "write_xyz",
    "write_trajectory",
    "write_ensemble",
    "FrameChunkWriter",
    "FrameChunkReader",
    "ChunkSource",
    "ChunkedTrajectory",
    "ChunkedPositions",
    "StreamingEnsemble",
    "open_streaming_ensemble",
    "write_frame_chunks",
    "write_position_chunks",
    "EnsembleSpec",
    "PAPER_PSA_SIZES",
    "PAPER_PSA_N_FRAMES",
    "random_walk_trajectory",
    "transition_trajectory",
    "make_ensemble",
    "make_clustered_ensemble",
    "paper_psa_ensemble",
    "BilayerSpec",
    "PAPER_LEAFLET_SIZES",
    "make_bilayer",
    "make_bilayer_universe",
    "paper_leaflet_system",
]
