"""A small atom-selection language.

MDAnalysis exposes selections such as ``"name P"`` or
``"resname POPC and name P*"``; the Leaflet Finder is typically run on the
phosphorus head-group atoms selected this way.  This module implements a
compact, recursive-descent parsed selection language over
:class:`~repro.trajectory.topology.Topology` arrays.

Grammar (whitespace separated tokens)::

    expr     := or_expr
    or_expr  := and_expr ( "or" and_expr )*
    and_expr := not_expr ( "and" not_expr )*
    not_expr := "not" not_expr | primary
    primary  := "(" expr ")"
               | "all" | "none"
               | "name"    pattern+
               | "element" pattern+
               | "resname" pattern+
               | "segid"   pattern+
               | "resid"   int_or_range+
               | "index"   int_or_range+
               | "prop" ("mass"|"charge"|"x"|"y"|"z") cmp number

``pattern`` supports ``*`` wildcards (fnmatch semantics), ``int_or_range``
accepts ``5`` or ``3:10`` (inclusive of both ends, matching MDAnalysis).
The ``prop x|y|z`` selections require positions to be supplied.
"""

from __future__ import annotations

import fnmatch
from typing import List, Sequence

import numpy as np

from .topology import Topology

__all__ = ["select", "SelectionError", "parse_selection"]


class SelectionError(ValueError):
    """Raised when a selection string cannot be parsed or evaluated."""


_KEYWORD_FIELDS = {
    "name": "names",
    "element": "elements",
    "resname": "resnames",
    "segid": "segids",
}
_INT_FIELDS = {"resid": "resids", "index": None}
_PROP_COMPARATORS = ("<=", ">=", "==", "!=", "<", ">")
_RESERVED = {"and", "or", "not", "(", ")", "all", "none", "prop"} | set(
    _KEYWORD_FIELDS
) | set(_INT_FIELDS)


def _tokenize(text: str) -> List[str]:
    """Split a selection string into tokens, keeping parentheses separate."""
    out: List[str] = []
    for raw in text.replace("(", " ( ").replace(")", " ) ").split():
        out.append(raw)
    return out


class _Parser:
    """Recursive-descent parser producing a boolean mask over atoms."""

    def __init__(self, tokens: Sequence[str], topology: Topology,
                 positions: np.ndarray | None) -> None:
        self.tokens = list(tokens)
        self.pos = 0
        self.top = topology
        self.positions = positions
        self.n = topology.n_atoms

    # -- token helpers -------------------------------------------------- #
    def _peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        tok = self._peek()
        if tok is None:
            raise SelectionError("unexpected end of selection string")
        self.pos += 1
        return tok

    def _expect(self, token: str) -> None:
        tok = self._next()
        if tok != token:
            raise SelectionError(f"expected {token!r}, got {tok!r}")

    # -- grammar -------------------------------------------------------- #
    def parse(self) -> np.ndarray:
        mask = self._or_expr()
        if self._peek() is not None:
            raise SelectionError(f"unexpected trailing token {self._peek()!r}")
        return mask

    def _or_expr(self) -> np.ndarray:
        mask = self._and_expr()
        while self._peek() == "or":
            self._next()
            mask = mask | self._and_expr()
        return mask

    def _and_expr(self) -> np.ndarray:
        mask = self._not_expr()
        while self._peek() == "and":
            self._next()
            mask = mask & self._not_expr()
        return mask

    def _not_expr(self) -> np.ndarray:
        if self._peek() == "not":
            self._next()
            return ~self._not_expr()
        return self._primary()

    def _primary(self) -> np.ndarray:
        tok = self._next()
        if tok == "(":
            mask = self._or_expr()
            self._expect(")")
            return mask
        if tok == "all":
            return np.ones(self.n, dtype=bool)
        if tok == "none":
            return np.zeros(self.n, dtype=bool)
        if tok in _KEYWORD_FIELDS:
            return self._match_patterns(getattr(self.top, _KEYWORD_FIELDS[tok]))
        if tok in _INT_FIELDS:
            values = (
                np.arange(self.n, dtype=np.int64)
                if tok == "index"
                else self.top.resids
            )
            return self._match_int_ranges(values, keyword=tok)
        if tok == "prop":
            return self._match_prop()
        raise SelectionError(f"unknown selection keyword {tok!r}")

    # -- leaf matchers --------------------------------------------------- #
    def _collect_args(self) -> List[str]:
        args: List[str] = []
        while True:
            tok = self._peek()
            if tok is None or tok in _RESERVED:
                break
            args.append(self._next())
        if not args:
            raise SelectionError("selection keyword requires at least one argument")
        return args

    def _match_patterns(self, values: np.ndarray) -> np.ndarray:
        patterns = self._collect_args()
        mask = np.zeros(self.n, dtype=bool)
        str_values = np.array([str(v) for v in values], dtype=object)
        for pattern in patterns:
            if any(ch in pattern for ch in "*?[]"):
                matches = np.array(
                    [fnmatch.fnmatchcase(v, pattern) for v in str_values], dtype=bool
                )
            else:
                matches = str_values == pattern
            mask |= matches
        return mask

    def _match_int_ranges(self, values: np.ndarray, keyword: str) -> np.ndarray:
        args = self._collect_args()
        mask = np.zeros(self.n, dtype=bool)
        for arg in args:
            if ":" in arg:
                lo_s, hi_s = arg.split(":", 1)
                try:
                    lo, hi = int(lo_s), int(hi_s)
                except ValueError as exc:
                    raise SelectionError(
                        f"invalid range {arg!r} for {keyword!r}"
                    ) from exc
                mask |= (values >= lo) & (values <= hi)
            else:
                try:
                    val = int(arg)
                except ValueError as exc:
                    raise SelectionError(
                        f"invalid integer {arg!r} for {keyword!r}"
                    ) from exc
                mask |= values == val
        return mask

    def _match_prop(self) -> np.ndarray:
        prop = self._next()
        op = self._next()
        value_tok = self._next()
        if op not in _PROP_COMPARATORS:
            raise SelectionError(f"invalid comparator {op!r} in prop selection")
        try:
            value = float(value_tok)
        except ValueError as exc:
            raise SelectionError(f"invalid number {value_tok!r} in prop selection") from exc
        if prop == "mass":
            data = self.top.masses
        elif prop == "charge":
            data = self.top.charges
        elif prop in ("x", "y", "z"):
            if self.positions is None:
                raise SelectionError(
                    f"prop {prop} selection requires positions to be supplied"
                )
            data = np.asarray(self.positions)[:, "xyz".index(prop)]
        else:
            raise SelectionError(f"unknown property {prop!r}")
        if op == "<":
            return data < value
        if op == "<=":
            return data <= value
        if op == ">":
            return data > value
        if op == ">=":
            return data >= value
        if op == "==":
            return data == value
        return data != value


def parse_selection(selection: str, topology: Topology,
                    positions: np.ndarray | None = None) -> np.ndarray:
    """Parse ``selection`` and return a boolean mask over atoms.

    Parameters
    ----------
    selection:
        Selection string, see module docstring for the grammar.
    topology:
        Topology providing the per-atom attributes.
    positions:
        Optional ``(n_atoms, 3)`` array; required only for ``prop x|y|z``.
    """
    tokens = _tokenize(selection)
    if not tokens:
        raise SelectionError("empty selection string")
    return _Parser(tokens, topology, positions).parse()


def select(selection: str, topology: Topology,
           positions: np.ndarray | None = None) -> np.ndarray:
    """Return the sorted atom indices matching ``selection``."""
    mask = parse_selection(selection, topology, positions)
    return np.flatnonzero(mask)
