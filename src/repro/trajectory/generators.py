"""Synthetic trajectory generators.

The paper's PSA experiments use ensembles of real transition trajectories
(102 frames; 3341, 6682 or 13364 atoms per frame; 128 or 256 members).
Those datasets are not redistributable, so this module generates
deterministic synthetic ensembles with the same shapes and with the
property PSA actually measures: members that follow *different paths*
between two end states, so that the Hausdorff distance matrix has
meaningful block structure (similar paths cluster together).

The generators are all seeded and pure functions of their arguments, so
tests and benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trajectory import Trajectory, TrajectoryEnsemble

__all__ = [
    "PAPER_PSA_SIZES",
    "PAPER_PSA_N_FRAMES",
    "random_walk_trajectory",
    "transition_trajectory",
    "make_ensemble",
    "make_clustered_ensemble",
    "paper_psa_ensemble",
    "EnsembleSpec",
]

#: Atom counts per frame used by the paper's PSA experiments (section 4.2).
PAPER_PSA_SIZES = {"small": 3341, "medium": 6682, "large": 13364}

#: Number of frames per trajectory in the paper's PSA dataset.
PAPER_PSA_N_FRAMES = 102


@dataclass(frozen=True)
class EnsembleSpec:
    """Specification of a synthetic PSA ensemble.

    Attributes
    ----------
    n_trajectories:
        Number of member trajectories (the paper uses 128 and 256).
    n_frames:
        Frames per member (the paper uses 102).
    n_atoms:
        Atoms per frame (paper: 3341 / 6682 / 13364).
    n_clusters:
        Number of distinct path families; members of a family follow
        similar paths, so PSA should recover the family structure.
    seed:
        RNG seed for full determinism.
    """

    n_trajectories: int = 8
    n_frames: int = PAPER_PSA_N_FRAMES
    n_atoms: int = 64
    n_clusters: int = 2
    seed: int = 2018

    def validate(self) -> None:
        """Raise :class:`ValueError` for non-sensical specifications."""
        if self.n_trajectories < 1:
            raise ValueError("n_trajectories must be >= 1")
        if self.n_frames < 2:
            raise ValueError("n_frames must be >= 2")
        if self.n_atoms < 1:
            raise ValueError("n_atoms must be >= 1")
        if not 1 <= self.n_clusters <= self.n_trajectories:
            raise ValueError("n_clusters must be in [1, n_trajectories]")


def random_walk_trajectory(
    n_frames: int,
    n_atoms: int,
    *,
    step: float = 0.5,
    seed: int = 0,
    name: str = "random_walk",
) -> Trajectory:
    """Generate a trajectory whose frames follow a 3N-dimensional random walk.

    Every atom performs an independent Gaussian random walk with step size
    ``step``; useful as an unstructured workload with the right shapes.
    """
    if n_frames < 1 or n_atoms < 1:
        raise ValueError("n_frames and n_atoms must be positive")
    rng = np.random.default_rng(seed)
    start = rng.uniform(0.0, 10.0, size=(n_atoms, 3))
    steps = rng.normal(scale=step, size=(n_frames - 1, n_atoms, 3)) if n_frames > 1 else np.empty((0, n_atoms, 3))
    positions = np.concatenate([start[None], start[None] + np.cumsum(steps, axis=0)]) if n_frames > 1 else start[None]
    return Trajectory(positions, name=name)


def transition_trajectory(
    n_frames: int,
    n_atoms: int,
    *,
    start: np.ndarray | None = None,
    end: np.ndarray | None = None,
    waypoint: np.ndarray | None = None,
    noise: float = 0.1,
    seed: int = 0,
    name: str = "transition",
) -> Trajectory:
    """Generate a trajectory interpolating from ``start`` to ``end``.

    The path optionally detours through ``waypoint`` at the midpoint; two
    trajectories sharing a waypoint follow similar paths and therefore have
    a small Hausdorff distance, while trajectories with different waypoints
    are far apart.  This is the structure PSA is designed to detect
    (cf. Seyler et al. 2015 referenced by the paper).
    """
    if n_frames < 2:
        raise ValueError("transition trajectories need at least 2 frames")
    rng = np.random.default_rng(seed)
    if start is None:
        start = np.zeros((n_atoms, 3))
    if end is None:
        end = np.ones((n_atoms, 3)) * 10.0
    start = np.asarray(start, dtype=np.float64)
    end = np.asarray(end, dtype=np.float64)
    if start.shape != (n_atoms, 3) or end.shape != (n_atoms, 3):
        raise ValueError("start and end must have shape (n_atoms, 3)")

    t = np.linspace(0.0, 1.0, n_frames)[:, None, None]
    if waypoint is None:
        path = (1.0 - t) * start[None] + t * end[None]
    else:
        waypoint = np.asarray(waypoint, dtype=np.float64)
        if waypoint.shape != (n_atoms, 3):
            raise ValueError("waypoint must have shape (n_atoms, 3)")
        # quadratic Bezier through the waypoint: smooth detour
        path = ((1.0 - t) ** 2) * start[None] + 2.0 * (1.0 - t) * t * waypoint[None] + (t ** 2) * end[None]
    jitter = rng.normal(scale=noise, size=path.shape) if noise > 0 else 0.0
    return Trajectory(path + jitter, name=name)


def make_ensemble(spec: EnsembleSpec) -> TrajectoryEnsemble:
    """Generate an unstructured ensemble of random-walk trajectories."""
    spec.validate()
    ensemble = TrajectoryEnsemble()
    for i in range(spec.n_trajectories):
        ensemble.add(
            random_walk_trajectory(
                spec.n_frames, spec.n_atoms, seed=spec.seed + i,
                name=f"walk_{i:04d}",
            )
        )
    return ensemble


def make_clustered_ensemble(spec: EnsembleSpec) -> TrajectoryEnsemble:
    """Generate an ensemble whose members form ``n_clusters`` path families.

    All members share the same start and end configurations; members of a
    family share a waypoint (plus small noise), so the Hausdorff distance
    between same-family members is much smaller than between families.
    The returned ensemble orders members family by family, so the expected
    distance matrix is block diagonal (small blocks on the diagonal).
    """
    spec.validate()
    rng = np.random.default_rng(spec.seed)
    start = rng.uniform(0.0, 5.0, size=(spec.n_atoms, 3))
    end = start + rng.uniform(8.0, 12.0, size=(spec.n_atoms, 3))
    waypoints = [
        start + rng.uniform(-15.0, 15.0, size=(spec.n_atoms, 3))
        for _ in range(spec.n_clusters)
    ]
    # distribute members over families as evenly as possible
    counts = np.full(spec.n_clusters, spec.n_trajectories // spec.n_clusters)
    counts[: spec.n_trajectories % spec.n_clusters] += 1
    ensemble = TrajectoryEnsemble()
    member = 0
    for family, count in enumerate(counts):
        for _ in range(count):
            ensemble.add(
                transition_trajectory(
                    spec.n_frames,
                    spec.n_atoms,
                    start=start,
                    end=end,
                    waypoint=waypoints[family],
                    noise=0.05,
                    seed=spec.seed + 1000 * family + member,
                    name=f"cluster{family}_traj{member:04d}",
                )
            )
            member += 1
    return ensemble


def paper_psa_ensemble(
    size: str = "small",
    n_trajectories: int = 128,
    *,
    n_frames: int = PAPER_PSA_N_FRAMES,
    n_clusters: int = 4,
    seed: int = 2018,
    scale: float = 1.0,
) -> TrajectoryEnsemble:
    """Generate an ensemble matching one of the paper's PSA datasets.

    Parameters
    ----------
    size:
        One of ``"small"``, ``"medium"``, ``"large"`` — atom counts 3341,
        6682, 13364 as in section 4.2 of the paper.
    n_trajectories:
        128 or 256 in the paper; any positive value here.
    scale:
        Multiplier applied to the atom count so that laptop-scale tests and
        benchmarks can exercise the same code path on a reduced problem
        (``scale=1.0`` reproduces the paper's sizes exactly).
    """
    if size not in PAPER_PSA_SIZES:
        raise ValueError(f"size must be one of {sorted(PAPER_PSA_SIZES)}, got {size!r}")
    n_atoms = max(1, int(round(PAPER_PSA_SIZES[size] * scale)))
    spec = EnsembleSpec(
        n_trajectories=n_trajectories,
        n_frames=n_frames,
        n_atoms=n_atoms,
        n_clusters=min(n_clusters, n_trajectories),
        seed=seed,
    )
    return make_clustered_ensemble(spec)
