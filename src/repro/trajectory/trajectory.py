"""Trajectory containers.

An MD trajectory is a time series of frames; each frame holds the positions
of every atom in the system as an ``(n_atoms, 3)`` float array.  The paper's
algorithms consume trajectories in two different shapes:

* **PSA** treats each trajectory as a dense ``(n_frames, n_atoms, 3)``
  array (one task = one pair of such arrays), and
* the **Leaflet Finder** consumes a single frame of a very large system
  (an ``(n_atoms, 3)`` array).

This module provides:

:class:`Frame`
    a single snapshot with positions, box and time metadata,
:class:`Trajectory`
    an in-memory trajectory backed by one contiguous NumPy array,
:class:`LazyTrajectory`
    a file-backed trajectory that memory-maps frames on demand, mirroring
    the out-of-core reading pattern used on HPC parallel filesystems, and
:class:`TrajectoryEnsemble`
    an ordered collection of trajectories (the unit of work of PSA).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Sequence

import numpy as np

from .topology import Topology

__all__ = ["Frame", "Trajectory", "LazyTrajectory", "TrajectoryEnsemble"]


@dataclass
class Frame:
    """A single trajectory frame.

    Attributes
    ----------
    positions:
        ``(n_atoms, 3)`` array of Cartesian coordinates (Angstrom).
    time:
        Simulation time of the frame (ps).
    box:
        Orthorhombic box lengths ``(lx, ly, lz)`` or ``None`` for a
        non-periodic system.
    index:
        Position of the frame inside its parent trajectory.
    """

    positions: np.ndarray
    time: float = 0.0
    box: np.ndarray | None = None
    index: int = 0

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (n_atoms, 3), got {self.positions.shape}"
            )
        if self.box is not None:
            self.box = np.asarray(self.box, dtype=np.float64)
            if self.box.shape != (3,):
                raise ValueError("box must be a length-3 vector of box lengths")

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the frame."""
        return self.positions.shape[0]

    def centroid(self) -> np.ndarray:
        """Geometric center of the frame."""
        return self.positions.mean(axis=0)

    def radius_of_gyration(self, masses: np.ndarray | None = None) -> float:
        """Radius of gyration, optionally mass weighted."""
        if masses is None:
            weights = np.ones(self.n_atoms)
        else:
            weights = np.asarray(masses, dtype=np.float64)
            if weights.shape[0] != self.n_atoms:
                raise ValueError("masses length must match n_atoms")
        total = weights.sum()
        if total <= 0:
            weights = np.ones(self.n_atoms)
            total = float(self.n_atoms)
        center = np.average(self.positions, axis=0, weights=weights)
        sq = ((self.positions - center) ** 2).sum(axis=1)
        return float(np.sqrt(np.average(sq, weights=weights)))

    def translated(self, vector: np.ndarray) -> "Frame":
        """Return a copy translated by ``vector``."""
        return Frame(self.positions + np.asarray(vector, dtype=np.float64),
                     time=self.time, box=self.box, index=self.index)


class Trajectory:
    """An in-memory trajectory: ``(n_frames, n_atoms, 3)`` positions.

    Parameters
    ----------
    positions:
        Array of shape ``(n_frames, n_atoms, 3)``.
    topology:
        Optional :class:`~repro.trajectory.topology.Topology`; a uniform
        topology is generated when omitted.
    times:
        Optional per-frame times; defaults to ``dt * frame_index``.
    box:
        Optional per-frame boxes (``(n_frames, 3)``) or a single box
        applied to all frames.
    dt:
        Time step between frames (ps), used when ``times`` is omitted.
    name:
        Human-readable label (used in PSA distance-matrix reports).
    """

    def __init__(
        self,
        positions: np.ndarray,
        topology: Topology | None = None,
        times: np.ndarray | None = None,
        box: np.ndarray | None = None,
        dt: float = 1.0,
        name: str = "trajectory",
    ) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 3 or positions.shape[2] != 3:
            raise ValueError(
                "positions must have shape (n_frames, n_atoms, 3), "
                f"got {positions.shape}"
            )
        self._positions = positions
        self.name = name
        self.dt = float(dt)
        n_frames, n_atoms, _ = positions.shape
        if topology is None:
            topology = Topology.uniform(n_atoms)
        if topology.n_atoms != n_atoms:
            raise ValueError(
                f"topology has {topology.n_atoms} atoms but positions have {n_atoms}"
            )
        self.topology = topology
        if times is None:
            times = np.arange(n_frames, dtype=np.float64) * self.dt
        else:
            times = np.asarray(times, dtype=np.float64)
            if times.shape != (n_frames,):
                raise ValueError("times must have shape (n_frames,)")
        self._times = times
        if box is not None:
            box = np.asarray(box, dtype=np.float64)
            if box.shape == (3,):
                box = np.broadcast_to(box, (n_frames, 3)).copy()
            elif box.shape != (n_frames, 3):
                raise ValueError("box must have shape (3,) or (n_frames, 3)")
        self._box = box

    # ------------------------------------------------------------------ #
    # shape / metadata
    # ------------------------------------------------------------------ #
    @property
    def n_frames(self) -> int:
        """Number of frames."""
        return self._positions.shape[0]

    @property
    def n_atoms(self) -> int:
        """Number of atoms per frame."""
        return self._positions.shape[1]

    @property
    def positions(self) -> np.ndarray:
        """The full ``(n_frames, n_atoms, 3)`` position array (a view)."""
        return self._positions

    @property
    def times(self) -> np.ndarray:
        """Per-frame simulation times."""
        return self._times

    @property
    def nbytes(self) -> int:
        """Size of the position data in bytes."""
        return int(self._positions.nbytes)

    def __len__(self) -> int:
        return self.n_frames

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Trajectory {self.name!r}: {self.n_frames} frames, "
            f"{self.n_atoms} atoms>"
        )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def frame(self, index: int) -> Frame:
        """Return frame ``index`` as a :class:`Frame` (negative ok)."""
        idx = int(index)
        if idx < 0:
            idx += self.n_frames
        if not 0 <= idx < self.n_frames:
            raise IndexError(f"frame index {index} out of range [0, {self.n_frames})")
        box = None if self._box is None else self._box[idx]
        return Frame(self._positions[idx], time=float(self._times[idx]),
                     box=box, index=idx)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.slice_frames(index)
        return self.frame(index)

    def __iter__(self) -> Iterator[Frame]:
        for i in range(self.n_frames):
            yield self.frame(i)

    def slice_frames(self, sl: slice) -> "Trajectory":
        """Return a new trajectory containing the selected frames."""
        idx = range(*sl.indices(self.n_frames))
        positions = self._positions[list(idx)]
        times = self._times[list(idx)]
        box = None if self._box is None else self._box[list(idx)]
        return Trajectory(positions, topology=self.topology, times=times,
                          box=box, dt=self.dt, name=self.name)

    def select_atoms_by_index(self, indices: Sequence[int]) -> "Trajectory":
        """Return a trajectory restricted to the given atom indices."""
        idx = np.asarray(indices, dtype=np.int64)
        return Trajectory(
            self._positions[:, idx, :],
            topology=self.topology.subset(idx),
            times=self._times,
            box=self._box,
            dt=self.dt,
            name=self.name,
        )

    def as_array(self) -> np.ndarray:
        """Return the ``(n_frames, n_atoms, 3)`` array (copy-free view)."""
        return self._positions

    def as_paths(self) -> np.ndarray:
        """Return the trajectory flattened to ``(n_frames, n_atoms * 3)``.

        PSA treats each frame as a point in ``3N``-dimensional configuration
        space; this is that representation.
        """
        return self._positions.reshape(self.n_frames, self.n_atoms * 3)

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def centered(self) -> "Trajectory":
        """Return a copy where every frame's centroid sits at the origin."""
        centroids = self._positions.mean(axis=1, keepdims=True)
        return Trajectory(self._positions - centroids, topology=self.topology,
                          times=self._times, box=self._box, dt=self.dt,
                          name=self.name)

    def transformed(self, func: Callable[[np.ndarray], np.ndarray]) -> "Trajectory":
        """Apply ``func`` to every frame's positions and return a copy."""
        frames = np.stack([np.asarray(func(f), dtype=np.float64)
                           for f in self._positions])
        return Trajectory(frames, topology=self.topology, times=self._times,
                          box=self._box, dt=self.dt, name=self.name)

    def concat_frames(self, other: "Trajectory") -> "Trajectory":
        """Append ``other``'s frames to this trajectory (same atoms)."""
        if other.n_atoms != self.n_atoms:
            raise ValueError("cannot concatenate trajectories with different atom counts")
        positions = np.concatenate([self._positions, other._positions], axis=0)
        times = np.concatenate([self._times, other._times + (self._times[-1] + self.dt if self.n_frames else 0.0)])
        return Trajectory(positions, topology=self.topology, times=times,
                          dt=self.dt, name=self.name)


class LazyTrajectory:
    """A file-backed trajectory that loads frames on demand.

    The paper's workflows read trajectory files straight off a parallel
    filesystem inside each task; this class mirrors that access pattern
    using :func:`numpy.load` with memory mapping so that slicing a chunk
    of frames does not pull the whole file into memory.

    Parameters
    ----------
    path:
        Path to a ``.npy`` file with an ``(n_frames, n_atoms, 3)`` array
        (written by :func:`repro.trajectory.writers.write_npy`).
    topology:
        Optional topology; uniform by default.
    name:
        Label; defaults to the file stem.
    """

    def __init__(self, path: str | os.PathLike, topology: Topology | None = None,
                 name: str | None = None) -> None:
        self.path = os.fspath(path)
        if not os.path.exists(self.path):
            raise FileNotFoundError(self.path)
        self._mmap = np.load(self.path, mmap_mode="r")
        if self._mmap.ndim != 3 or self._mmap.shape[2] != 3:
            raise ValueError(
                f"file {self.path} does not contain an (n_frames, n_atoms, 3) array"
            )
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]
        n_atoms = self._mmap.shape[1]
        self.topology = topology or Topology.uniform(n_atoms)

    @property
    def n_frames(self) -> int:
        """Number of frames in the backing file."""
        return self._mmap.shape[0]

    @property
    def n_atoms(self) -> int:
        """Number of atoms per frame."""
        return self._mmap.shape[1]

    def __len__(self) -> int:
        return self.n_frames

    def load(self) -> Trajectory:
        """Materialize the whole file as an in-memory :class:`Trajectory`."""
        return Trajectory(np.array(self._mmap), topology=self.topology, name=self.name)

    def load_frames(self, start: int, stop: int) -> Trajectory:
        """Materialize frames ``[start, stop)`` only."""
        if not 0 <= start <= stop <= self.n_frames:
            raise IndexError(
                f"frame range [{start}, {stop}) out of bounds for {self.n_frames} frames"
            )
        return Trajectory(np.array(self._mmap[start:stop]), topology=self.topology,
                          name=f"{self.name}[{start}:{stop}]")

    def frame(self, index: int) -> Frame:
        """Load a single frame."""
        idx = int(index)
        if idx < 0:
            idx += self.n_frames
        if not 0 <= idx < self.n_frames:
            raise IndexError(f"frame index {index} out of range")
        return Frame(np.array(self._mmap[idx]), index=idx)


@dataclass
class TrajectoryEnsemble:
    """An ordered collection of trajectories — the unit of work of PSA.

    PSA computes an ``N x N`` distance matrix over an ensemble of ``N``
    trajectories.  The ensemble also records labels so that the resulting
    matrix rows/columns can be mapped back to trajectories.
    """

    trajectories: List[Trajectory] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.trajectories = list(self.trajectories)

    @property
    def n_trajectories(self) -> int:
        """Number of member trajectories."""
        return len(self.trajectories)

    @property
    def labels(self) -> List[str]:
        """Member trajectory names, in order."""
        return [t.name for t in self.trajectories]

    @property
    def nbytes(self) -> int:
        """Total size of all member trajectories in bytes."""
        return sum(t.nbytes for t in self.trajectories)

    def __len__(self) -> int:
        return self.n_trajectories

    def __getitem__(self, index: int) -> Trajectory:
        return self.trajectories[index]

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def add(self, trajectory: Trajectory) -> None:
        """Append a trajectory to the ensemble."""
        self.trajectories.append(trajectory)

    def as_arrays(self) -> List[np.ndarray]:
        """Return the members as raw ``(n_frames, n_atoms, 3)`` arrays."""
        return [t.as_array() for t in self.trajectories]

    def validate_consistent_atoms(self) -> int:
        """Check all members share an atom count and return it.

        PSA requires members to be comparable frame-by-frame, i.e. to have
        the same number of atoms.  Raises :class:`ValueError` otherwise.
        """
        if not self.trajectories:
            raise ValueError("ensemble is empty")
        counts = {t.n_atoms for t in self.trajectories}
        if len(counts) != 1:
            raise ValueError(
                f"ensemble members have inconsistent atom counts: {sorted(counts)}"
            )
        return counts.pop()
