"""Streaming trajectory ingestion: chunked files feeding the shm store.

The paper's campaigns analyze trajectory sets far larger than RAM; the
in-memory :class:`~repro.trajectory.trajectory.TrajectoryEnsemble` used
by the batch paths cannot represent them.  This module adds the
out-of-core input path described in ``docs/streaming.md``:

:class:`FrameChunkWriter` / :class:`FrameChunkReader`
    a chunked on-disk frame format (``.fchunk``): one small fixed-size
    header followed by raw C-contiguous float64 frames, logically split
    into fixed-size frame chunks addressable by index — the unit of
    ingestion.
:class:`ChunkSource`
    a picklable loader (path + chunk index) registered with the store at
    ingest time, so a chunk block lost from the spill tier heals by
    re-reading the source file instead of pinning the array in memory.
:class:`ChunkedTrajectory` / :class:`StreamingEnsemble`
    lazy containers whose ``window_refs``/``window_payloads`` resolve
    frame windows as zero-copy :class:`~repro.frameworks.shm.BlockRef`
    views of store-ingested chunk blocks — the whole ensemble is never
    materialized, and the store's capacity watermark spills cold chunks
    exactly like any other block.
:class:`ChunkedPositions`
    the Leaflet Finder view of the same format: a single large
    ``(n_atoms, 3)`` system streamed as atom-row chunks.

Chunks enter the store through
:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`, which
deduplicates by *fingerprint* (path + chunk index) rather than by array
identity — re-requesting a window re-uses the registered block without
re-reading the file, and nothing driver-side pins the chunk bytes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..frameworks.shm import BlockRef, SharedMemoryStore

__all__ = [
    "FRAME_CHUNK_MAGIC",
    "FrameChunkWriter",
    "FrameChunkReader",
    "ChunkSource",
    "ChunkedTrajectory",
    "ChunkedPositions",
    "StreamingEnsemble",
    "write_frame_chunks",
    "write_position_chunks",
    "open_streaming_ensemble",
]

#: File magic of the chunked frame format (8 bytes, versioned).
FRAME_CHUNK_MAGIC = b"FCHUNK1\n"

#: Bytes reserved for the JSON header right after the magic + length word.
_HEADER_SPACE = 256

#: Start of the frame data region.
_DATA_OFFSET = len(FRAME_CHUNK_MAGIC) + 8 + _HEADER_SPACE

_FRAME_DTYPE = np.dtype("<f8")


class FrameChunkWriter:
    """Stream ``(n_frames, n_atoms, 3)`` frames into a chunked file.

    The file layout is a small fixed-size header index followed by raw
    frame data::

        bytes [0, 8)    magic  b"FCHUNK1\\n"
        bytes [8, 16)   uint64 little-endian: JSON header length
        bytes [16, 272) JSON header, space-padded to 256 bytes
        bytes [272, .)  C-contiguous little-endian float64 frames

    The header records ``n_frames``, ``n_atoms``, ``frames_per_chunk``
    and the trajectory name; chunk boundaries are implied (chunk ``i``
    covers frames ``[i*K, min(N, (i+1)*K))``), so appending frames needs
    no index rewrite — the header is patched once on :meth:`close` with
    the final frame count.  Appends are true streaming writes: memory
    use is bounded by the largest batch passed to :meth:`append`.

    Parameters
    ----------
    path : str or os.PathLike
        Destination file (conventionally ``.fchunk``).
    n_atoms : int
        Atoms per frame.
    frames_per_chunk : int
        Fixed logical chunk size ``K`` (the ingestion unit).
    name : str, optional
        Trajectory label stored in the header; defaults to the file
        stem.
    """

    def __init__(self, path: str | os.PathLike, n_atoms: int,
                 frames_per_chunk: int, name: str | None = None) -> None:
        if n_atoms < 1:
            raise ValueError("n_atoms must be >= 1")
        if frames_per_chunk < 1:
            raise ValueError("frames_per_chunk must be >= 1")
        self.path = os.fspath(path)
        self.n_atoms = int(n_atoms)
        self.frames_per_chunk = int(frames_per_chunk)
        self.name = name or os.path.splitext(os.path.basename(self.path))[0]
        self._n_frames = 0
        self._fh = open(self.path, "wb")
        self._write_header()

    def _write_header(self) -> None:
        """Write (or rewrite) the fixed-size header region."""
        header = json.dumps({
            "n_frames": self._n_frames,
            "n_atoms": self.n_atoms,
            "frames_per_chunk": self.frames_per_chunk,
            "dtype": _FRAME_DTYPE.str,
            "name": self.name,
        }).encode("utf-8")
        if len(header) > _HEADER_SPACE:
            raise ValueError(
                f"chunk header exceeds the reserved {_HEADER_SPACE} bytes "
                "(shorten the trajectory name)"
            )
        self._fh.seek(0)
        self._fh.write(FRAME_CHUNK_MAGIC)
        self._fh.write(len(header).to_bytes(8, "little"))
        self._fh.write(header.ljust(_HEADER_SPACE, b" "))

    @property
    def n_frames_written(self) -> int:
        """Frames appended so far."""
        return self._n_frames

    def append(self, frames: np.ndarray) -> int:
        """Append a batch of frames; returns the new total frame count.

        Parameters
        ----------
        frames : numpy.ndarray
            ``(m, n_atoms, 3)`` positions (a single ``(n_atoms, 3)``
            frame is also accepted).

        Returns
        -------
        int
            Total frames written after this append.
        """
        if self._fh.closed:
            raise RuntimeError("FrameChunkWriter is closed")
        frames = np.asarray(frames, dtype=np.float64)
        if frames.ndim == 2:
            frames = frames[None, :, :]
        if frames.ndim != 3 or frames.shape[1] != self.n_atoms or frames.shape[2] != 3:
            raise ValueError(
                f"frames must have shape (m, {self.n_atoms}, 3), got {frames.shape}"
            )
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(np.ascontiguousarray(frames, dtype=_FRAME_DTYPE).tobytes())
        self._n_frames += frames.shape[0]
        return self._n_frames

    def close(self) -> None:
        """Patch the header with the final frame count and close the file."""
        if self._fh.closed:
            return
        self._write_header()
        self._fh.close()

    def __enter__(self) -> "FrameChunkWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class FrameChunkReader:
    """Read a file written by :class:`FrameChunkWriter`, chunk by chunk.

    Chunk ``i`` covers frames ``[i*K, min(N, (i+1)*K))`` for the
    header's ``frames_per_chunk`` ``K``; every chunk except possibly the
    last has exactly ``K`` frames.  Reads are positional (seek + read),
    so a reader touches only the bytes of the chunks it is asked for.

    Parameters
    ----------
    path : str or os.PathLike
        File to open.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            magic = fh.read(len(FRAME_CHUNK_MAGIC))
            if magic != FRAME_CHUNK_MAGIC:
                raise ValueError(f"{self.path} is not a frame-chunk file")
            header_len = int.from_bytes(fh.read(8), "little")
            if header_len > _HEADER_SPACE:
                raise ValueError(f"{self.path} has a corrupt chunk header")
            header = json.loads(fh.read(header_len).decode("utf-8"))
        self.n_frames = int(header["n_frames"])
        self.n_atoms = int(header["n_atoms"])
        self.frames_per_chunk = int(header["frames_per_chunk"])
        self.name = str(header.get("name", "")) or \
            os.path.splitext(os.path.basename(self.path))[0]
        if header.get("dtype", _FRAME_DTYPE.str) != _FRAME_DTYPE.str:
            raise ValueError(f"{self.path} has unsupported dtype {header['dtype']!r}")

    @property
    def n_chunks(self) -> int:
        """Number of logical chunks in the file."""
        k = self.frames_per_chunk
        return (self.n_frames + k - 1) // k

    @property
    def nbytes(self) -> int:
        """Total frame-data bytes (the out-of-core size of the trajectory)."""
        return self.n_frames * self.n_atoms * 3 * _FRAME_DTYPE.itemsize

    def chunk_range(self, index: int) -> Tuple[int, int]:
        """Frame range ``(start, stop)`` covered by chunk ``index``."""
        if not 0 <= index < self.n_chunks:
            raise IndexError(f"chunk index {index} out of range [0, {self.n_chunks})")
        start = index * self.frames_per_chunk
        return start, min(self.n_frames, start + self.frames_per_chunk)

    def read_chunk(self, index: int) -> np.ndarray:
        """Read one chunk as a fresh ``(m, n_atoms, 3)`` float64 array."""
        start, stop = self.chunk_range(index)
        return self.read_frames(start, stop)

    def read_frames(self, start: int, stop: int) -> np.ndarray:
        """Read frames ``[start, stop)`` (may span chunk boundaries)."""
        if not 0 <= start <= stop <= self.n_frames:
            raise IndexError(
                f"frame range [{start}, {stop}) out of bounds for {self.n_frames} frames"
            )
        frame_items = self.n_atoms * 3
        with open(self.path, "rb") as fh:
            fh.seek(_DATA_OFFSET + start * frame_items * _FRAME_DTYPE.itemsize)
            data = np.fromfile(fh, dtype=_FRAME_DTYPE, count=(stop - start) * frame_items)
        if data.size != (stop - start) * frame_items:
            raise ValueError(f"truncated frame-chunk file {self.path}")
        return data.reshape(stop - start, self.n_atoms, 3)


@dataclass(frozen=True)
class ChunkSource:
    """Picklable loader for one chunk: the healing source of its block.

    Registered with :meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`
    so a spilled chunk block whose ``.blk`` file is lost or corrupted can
    be rewritten from the original chunk file — the ingest-side analogue
    of the pinned-array healing the task plane uses, without keeping the
    chunk bytes alive driver-side.

    Parameters
    ----------
    path : str
        Chunk file the block came from.
    chunk_index : int
        Index of the chunk inside the file.
    as_positions : bool, optional
        Return the chunk flattened to ``(m * n_atoms, 3)`` rows (the
        Leaflet Finder's atom-chunk view) instead of frame-shaped.
    """

    path: str
    chunk_index: int
    as_positions: bool = False

    @property
    def fingerprint(self) -> str:
        """Store-wide dedup key of the chunk this loader reads."""
        kind = "pos" if self.as_positions else "frames"
        return f"fchunk:{os.path.abspath(self.path)}#{self.chunk_index}:{kind}"

    def __call__(self) -> np.ndarray:
        """Read the chunk from its source file."""
        chunk = FrameChunkReader(self.path).read_chunk(self.chunk_index)
        if self.as_positions:
            chunk = chunk.reshape(-1, 3)
        return np.ascontiguousarray(chunk)


def write_frame_chunks(positions: np.ndarray, path: str | os.PathLike,
                       frames_per_chunk: int, name: str | None = None) -> str:
    """Write an ``(n_frames, n_atoms, 3)`` array as a chunked file.

    Convenience wrapper over :class:`FrameChunkWriter` that streams the
    array chunk by chunk (so it also serves as the executable example of
    the append protocol).

    Parameters
    ----------
    positions : numpy.ndarray
        Frames to write.
    path : str or os.PathLike
        Destination ``.fchunk`` file.
    frames_per_chunk : int
        Logical chunk size.
    name : str, optional
        Trajectory label.

    Returns
    -------
    str
        The written path.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 3:
        raise ValueError(
            f"positions must have shape (n_frames, n_atoms, 3), got {positions.shape}"
        )
    with FrameChunkWriter(path, positions.shape[1], frames_per_chunk,
                          name=name) as writer:
        for start in range(0, positions.shape[0], frames_per_chunk):
            writer.append(positions[start:start + frames_per_chunk])
    return os.fspath(path)


def write_position_chunks(positions: np.ndarray, path: str | os.PathLike,
                          atoms_per_chunk: int, name: str | None = None) -> str:
    """Write an ``(n_atoms, 3)`` system as atom-row chunks.

    The Leaflet Finder's streaming input: each "frame" of the chunk file
    is a single atom, so a chunk is a contiguous row block of the system
    and :class:`ChunkedPositions` streams it back as ``(m, 3)`` blocks.

    Parameters
    ----------
    positions : numpy.ndarray
        ``(n_atoms, 3)`` head-group positions.
    path : str or os.PathLike
        Destination ``.fchunk`` file.
    atoms_per_chunk : int
        Atoms per ingested chunk.
    name : str, optional
        System label.

    Returns
    -------
    str
        The written path.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must have shape (n_atoms, 3), got {positions.shape}")
    return write_frame_chunks(positions[:, None, :], path, atoms_per_chunk, name=name)


class ChunkedTrajectory:
    """A lazy, chunk-file-backed trajectory that ingests into a store.

    The streaming sibling of
    :class:`~repro.trajectory.trajectory.LazyTrajectory`: frames stay in
    the file until a window is requested, and on the shm plane a window
    resolves to zero-copy :class:`~repro.frameworks.shm.BlockRef` views
    of store-registered chunk blocks (partial chunks become offset
    sub-refs via ``slice_rows``) — the file's bytes enter memory at most
    one chunk at a time and are governed by the store's spill watermark
    from then on.

    Parameters
    ----------
    path : str or os.PathLike
        A ``.fchunk`` file written by :class:`FrameChunkWriter`.
    name : str, optional
        Label; defaults to the header's name.
    """

    def __init__(self, path: str | os.PathLike, name: str | None = None) -> None:
        self.reader = FrameChunkReader(path)
        self.path = self.reader.path
        self.name = name or self.reader.name

    @property
    def n_frames(self) -> int:
        """Number of frames in the backing file."""
        return self.reader.n_frames

    @property
    def n_atoms(self) -> int:
        """Atoms per frame."""
        return self.reader.n_atoms

    @property
    def frames_per_chunk(self) -> int:
        """Logical chunk size of the backing file."""
        return self.reader.frames_per_chunk

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the backing file."""
        return self.reader.n_chunks

    @property
    def nbytes(self) -> int:
        """On-disk frame bytes (what a materialized load would allocate)."""
        return self.reader.nbytes

    def __len__(self) -> int:
        return self.n_frames

    def ingest_chunk(self, store: "SharedMemoryStore", index: int) -> "BlockRef":
        """Ingest chunk ``index`` into ``store`` and return its block ref.

        Deduplicated by the chunk's fingerprint: the first call reads the
        file and registers the block (with its :class:`ChunkSource` as
        the healing source); later calls return the existing ref without
        touching the file, even after the block spilled.
        """
        source = ChunkSource(self.path, index)
        return store.ingest(source.fingerprint, source)

    def window_refs(self, store: "SharedMemoryStore", start: int,
                    stop: int) -> List["BlockRef"]:
        """Resolve frames ``[start, stop)`` as zero-copy chunk refs.

        Full chunks ride as their registered block refs; a window edge
        that cuts through a chunk becomes an offset sub-ref
        (:meth:`~repro.frameworks.shm.BlockRef.slice_rows`), so no frame
        outside the window is ever exposed and nothing is copied.
        """
        if not 0 <= start < stop <= self.n_frames:
            raise IndexError(
                f"window [{start}, {stop}) out of bounds for {self.n_frames} frames"
            )
        refs: List["BlockRef"] = []
        k = self.frames_per_chunk
        for index in range(start // k, (stop - 1) // k + 1):
            c_start, c_stop = self.reader.chunk_range(index)
            ref = self.ingest_chunk(store, index)
            lo = max(start, c_start) - c_start
            hi = min(stop, c_stop) - c_start
            refs.append(ref if (lo, hi) == (0, c_stop - c_start)
                        else ref.slice_rows(lo, hi))
        return refs

    def load_window(self, start: int, stop: int) -> np.ndarray:
        """Materialize frames ``[start, stop)`` only (no store involved)."""
        return self.reader.read_frames(start, stop)

    def load(self) -> np.ndarray:
        """Materialize the whole trajectory (small fixtures and tests only)."""
        return self.reader.read_frames(0, self.n_frames)


class ChunkedPositions:
    """A single large position system streamed as atom-row chunks.

    Wraps a file written by :func:`write_position_chunks`: the logical
    object is an ``(n_atoms, 3)`` system, the physical layout is one
    atom per "frame", so chunk ``i`` is the contiguous atom rows
    ``[i*K, (i+1)*K)``.  The streamed Leaflet Finder compares chunk
    pairs as they arrive and merges partial components incrementally.

    Parameters
    ----------
    path : str or os.PathLike
        A ``.fchunk`` file with one atom per frame.
    name : str, optional
        Label; defaults to the header's name.
    """

    def __init__(self, path: str | os.PathLike, name: str | None = None) -> None:
        self.reader = FrameChunkReader(path)
        if self.reader.n_atoms != 1:
            raise ValueError(
                f"{path} holds {self.reader.n_atoms}-atom frames; position "
                "chunk files store one atom per frame (write_position_chunks)"
            )
        self.path = self.reader.path
        self.name = name or self.reader.name

    @property
    def n_atoms(self) -> int:
        """Number of atoms in the system."""
        return self.reader.n_frames

    @property
    def atoms_per_chunk(self) -> int:
        """Atoms per ingested chunk."""
        return self.reader.frames_per_chunk

    @property
    def n_chunks(self) -> int:
        """Number of atom chunks."""
        return self.reader.n_chunks

    @property
    def nbytes(self) -> int:
        """On-disk position bytes."""
        return self.reader.nbytes

    def chunk_range(self, index: int) -> Tuple[int, int]:
        """Atom range ``(start, stop)`` of chunk ``index``."""
        return self.reader.chunk_range(index)

    def ingest_chunk(self, store: "SharedMemoryStore", index: int) -> "BlockRef":
        """Ingest atom chunk ``index`` as an ``(m, 3)`` block ref."""
        source = ChunkSource(self.path, index, as_positions=True)
        return store.ingest(source.fingerprint, source)

    def load_chunk(self, index: int) -> np.ndarray:
        """Materialize atom chunk ``index`` as an ``(m, 3)`` array."""
        return self.reader.read_chunk(index).reshape(-1, 3)

    def load(self) -> np.ndarray:
        """Materialize the whole system (small fixtures and tests only)."""
        return self.reader.read_frames(0, self.reader.n_frames).reshape(-1, 3)


class StreamingEnsemble:
    """An ensemble of chunk-file-backed trajectories (the streamed PSA input).

    Quacks like :class:`~repro.trajectory.trajectory.TrajectoryEnsemble`
    where the batch paths need it (``n_trajectories``, ``labels``,
    ``validate_consistent_atoms``, ``as_arrays``) but never materializes
    members unless explicitly asked: the PSA task builders call
    :meth:`window_payloads`, which resolves a frame window per member —
    as zero-copy chunk refs when a store is given, as window-sized
    arrays otherwise.

    Parameters
    ----------
    members : sequence of ChunkedTrajectory
        The member trajectories.  Windowed analysis requires a uniform
        frame count and chunk size across members
        (:meth:`validate_aligned`).
    """

    def __init__(self, members: Sequence[ChunkedTrajectory]) -> None:
        self.members: List[ChunkedTrajectory] = list(members)

    @property
    def n_trajectories(self) -> int:
        """Number of member trajectories."""
        return len(self.members)

    @property
    def labels(self) -> List[str]:
        """Member names, in order."""
        return [m.name for m in self.members]

    @property
    def n_frames(self) -> int:
        """Uniform member frame count (requires aligned members)."""
        self.validate_aligned()
        return self.members[0].n_frames

    @property
    def nbytes(self) -> int:
        """Total on-disk frame bytes of the ensemble."""
        return sum(m.nbytes for m in self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __getitem__(self, index: int) -> ChunkedTrajectory:
        return self.members[index]

    def __iter__(self) -> Iterator[ChunkedTrajectory]:
        return iter(self.members)

    def validate_consistent_atoms(self) -> int:
        """Check all members share an atom count and return it."""
        if not self.members:
            raise ValueError("ensemble is empty")
        counts = {m.n_atoms for m in self.members}
        if len(counts) != 1:
            raise ValueError(
                f"ensemble members have inconsistent atom counts: {sorted(counts)}"
            )
        return counts.pop()

    def validate_aligned(self) -> None:
        """Check members share a frame count and chunk size (windowing needs both)."""
        if not self.members:
            raise ValueError("ensemble is empty")
        frames = {m.n_frames for m in self.members}
        chunks = {m.frames_per_chunk for m in self.members}
        if len(frames) != 1 or len(chunks) != 1:
            raise ValueError(
                "windowed analysis requires aligned members: "
                f"frame counts {sorted(frames)}, chunk sizes {sorted(chunks)}"
            )

    def windows(self, window_frames: int | None = None) -> List[Tuple[int, int]]:
        """Frame windows in arrival order; defaults to chunk boundaries."""
        self.validate_aligned()
        n = self.members[0].n_frames
        size = window_frames or self.members[0].frames_per_chunk
        if size < 1:
            raise ValueError("window_frames must be >= 1")
        return [(start, min(n, start + size)) for start in range(0, n, size)]

    def window_payloads(self, store: "SharedMemoryStore | None", start: int,
                        stop: int) -> List:
        """Per-member payloads for frames ``[start, stop)``.

        With a store: one list of zero-copy chunk refs per member (the
        shm plane).  Without: one window-sized array per member (the
        pickle plane) — still never the whole trajectory.
        """
        if store is not None:
            return [m.window_refs(store, start, stop) for m in self.members]
        return [m.load_window(start, stop) for m in self.members]

    def as_arrays(self) -> List[np.ndarray]:
        """Materialize every member (small fixtures and tests only)."""
        return [m.load() for m in self.members]


def open_streaming_ensemble(paths: Sequence[str | os.PathLike]) -> StreamingEnsemble:
    """Open several chunk files as a :class:`StreamingEnsemble`."""
    return StreamingEnsemble([ChunkedTrajectory(p) for p in paths])
