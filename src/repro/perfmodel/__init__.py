"""Performance and scaling models for regenerating the paper-scale figures."""

from .calibration import (
    BENCH_RECORD_PATH,
    CalibrationResult,
    calibrate_kernels,
    engine_preset,
    rates_from_bench_record,
)
from .costs import (
    DASK_COSTS,
    MPI_COSTS,
    PAPER_CALIBRATION,
    PILOT_COSTS,
    SPARK_COSTS,
    FrameworkCostModel,
    get_cost_model,
)
from .kernels import DEFAULT_RATES, KernelCosts, KernelRates
from .machines import COMET, LOCAL, MACHINES, WRANGLER, MachineSpec
from .scaling import (
    PAPER_LEAFLET_CORE_COUNTS,
    PAPER_PSA_CORE_COUNTS,
    ScalingPoint,
    cpptraj_sweep,
    leaflet_sweep,
    model_broadcast_breakdown,
    model_cpptraj_runtime,
    model_leaflet_runtime,
    model_psa_runtime,
    psa_sweep,
)
from .throughput import (
    PAPER_TASK_COUNTS,
    ThroughputPoint,
    model_task_run_time,
    model_throughput,
    node_scaling_sweep,
    throughput_sweep,
)

__all__ = [
    "MachineSpec",
    "COMET",
    "WRANGLER",
    "LOCAL",
    "MACHINES",
    "FrameworkCostModel",
    "PAPER_CALIBRATION",
    "get_cost_model",
    "DASK_COSTS",
    "SPARK_COSTS",
    "PILOT_COSTS",
    "MPI_COSTS",
    "KernelRates",
    "KernelCosts",
    "DEFAULT_RATES",
    "CalibrationResult",
    "calibrate_kernels",
    "rates_from_bench_record",
    "engine_preset",
    "BENCH_RECORD_PATH",
    "ThroughputPoint",
    "model_task_run_time",
    "model_throughput",
    "throughput_sweep",
    "node_scaling_sweep",
    "PAPER_TASK_COUNTS",
    "ScalingPoint",
    "model_psa_runtime",
    "psa_sweep",
    "model_cpptraj_runtime",
    "cpptraj_sweep",
    "model_leaflet_runtime",
    "leaflet_sweep",
    "model_broadcast_breakdown",
    "PAPER_PSA_CORE_COUNTS",
    "PAPER_LEAFLET_CORE_COUNTS",
]
