"""Local calibration of the kernel rates, from distribution medians.

The defaults in :data:`repro.perfmodel.kernels.DEFAULT_RATES` describe a
Haswell core of the paper's testbeds.  When comparing modeled curves with
live laptop-scale measurements it helps to calibrate the rates on the
machine actually running the benchmarks; :func:`calibrate_kernels` does
that with a handful of sub-second micro-benchmarks of exactly the kernels
the algorithms use.

All calibration timings flow through :class:`repro.bench.Sampler`: each
micro-benchmark is sampled repeatedly after an explicit warmup, the
calibrated timer/dispatch overhead is subtracted, and the rate is
derived from the **median** of the distribution — never from a
single run or a best-of-N minimum, both of which a single scheduler
hiccup (or an unusually quiet machine) can bias.

:func:`rates_from_bench_record` goes one step further and recalibrates
the engine-split rates from the distribution medians persisted in
``BENCH_kernels.json``, so the perf model's vectorized-engine presets
track exactly what the benchmark harness measured;
:func:`engine_preset` is the convenience lookup used by modeled
figures.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np
from scipy.spatial.distance import cdist

from ..analysis.neighbors import BallTree
from ..analysis.rmsd import rmsd_matrix
from ..analysis.graph import connected_components
from ..bench import Distribution, Sampler
from .kernels import DEFAULT_RATES, KernelRates

__all__ = [
    "CalibrationResult",
    "calibrate_kernels",
    "rates_from_bench_record",
    "engine_preset",
    "BENCH_RECORD_PATH",
]

#: the committed kernel-benchmark distribution record at the repo root
BENCH_RECORD_PATH = Path(__file__).resolve().parents[3] / "BENCH_kernels.json"


@dataclass(frozen=True)
class CalibrationResult:
    """Measured rates plus the micro-benchmark evidence that produced them.

    Attributes
    ----------
    rates : KernelRates
        The calibrated rates (medians of the sampled distributions).
    timings : dict of str to float
        Median seconds per micro-benchmark (the numbers the rates were
        derived from).
    distributions : dict of str to Distribution
        The full sample distributions behind each timing, so the
        calibration's own noise level is inspectable (e.g. a rate whose
        distribution has MAD comparable to its median should not be
        trusted to a single digit).
    """

    rates: KernelRates
    timings: dict
    distributions: Dict[str, Distribution] = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable one-line-per-kernel summary (median ± MAD)."""
        lines = []
        for key, value in self.timings.items():
            dist = self.distributions.get(key)
            if dist is not None:
                lines.append(f"{key}: {value * 1e3:.2f} ms "
                             f"± {dist.mad * 1e3:.2f} ms MAD (n={dist.n})")
            else:
                lines.append(f"{key}: {value * 1e3:.2f} ms")
        return "\n".join(lines)


def calibrate_kernels(*, n_frames: int = 64, n_atoms: int = 512,
                      n_points: int = 2000, seed: int = 0,
                      repeats: int = 3) -> CalibrationResult:
    """Measure the local machine's kernel rates from sampled medians.

    The sizes are chosen so the whole calibration takes well under a
    second; rates are extrapolated from the measured per-element
    throughput, which is size-independent to first order for these
    kernels.

    Parameters
    ----------
    n_frames, n_atoms, n_points : int, optional
        Micro-benchmark workload sizes.
    seed : int, optional
        Workload RNG seed.
    repeats : int, optional
        Samples per micro-benchmark (one extra warmup run is always
        taken and excluded); the derived rate uses the median.

    Returns
    -------
    CalibrationResult
        Rates, their median timings, and the full distributions.
    """
    rng = np.random.default_rng(seed)
    traj_a = rng.normal(size=(n_frames, n_atoms, 3))
    traj_b = rng.normal(size=(n_frames, n_atoms, 3))
    points = rng.uniform(0.0, 100.0, size=(n_points, 3))
    edges = rng.integers(0, n_points, size=(4 * n_points, 2))

    sampler = Sampler(n_samples=max(1, repeats), warmup=1)
    timings: dict = {}
    distributions: Dict[str, Distribution] = {}

    def measure(key: str, fn) -> float:
        dist = sampler.sample(fn, label=key)
        distributions[key] = dist
        # floor at the calibrated overhead scale so a kernel faster
        # than the timer cannot yield an infinite rate
        timings[key] = max(dist.median, 1e-9)
        return timings[key]

    t = measure("rmsd_matrix", lambda: rmsd_matrix(traj_a, traj_b))
    gemm_flops = 2.0 * (n_frames ** 2) * (3.0 * n_atoms) / t

    t = measure("cdist", lambda: cdist(points, points))
    cdist_evals = (n_points ** 2) / t

    t = measure("balltree_build", lambda: BallTree(points, leaf_size=32))
    tree_build = n_points / t

    tree = BallTree(points, leaf_size=32)
    queries = points[: max(1, n_points // 10)]
    # one query per call: measures the per-query regime tree_query_points
    # models (per-call overhead dominated, like the paper-era tree search)
    t = measure("balltree_query_per_query",
                lambda: [tree.query_radius(q, 5.0) for q in queries])
    tree_query = queries.shape[0] * np.log2(n_points) / t

    # batched frontier traversal (the vectorized kernel engine rate)
    t = measure("balltree_query_batched",
                lambda: tree.query_radius_pairs(queries, 5.0))
    tree_batch = queries.shape[0] * np.log2(n_points) / t

    t = measure("connected_components_reference",
                lambda: connected_components(edges, n_points, method="reference"))
    uf_ops = (n_points + edges.shape[0]) / t

    t = measure("connected_components_vectorized",
                lambda: connected_components(edges, n_points, method="vectorized"))
    passes = max(1.0, np.log2(max(n_points, 2)) / 2.0)
    cc_label = (n_points + edges.shape[0]) * passes / t

    # spill-file write bandwidth: what one synchronous eviction of a
    # ~4 MB block costs on this machine's local storage (the async
    # pipeline hides most of it, but the model needs the denominator)
    block = rng.normal(size=(4 * 1024 * 1024 // 8,))
    with tempfile.TemporaryDirectory(prefix="repro-calib-spill-") as tmpdir:
        path = os.path.join(tmpdir, "calib.blk")

        def _write() -> None:
            with open(path, "wb") as fh:
                fh.write(block.data)

        t = measure("spill_write", _write)
    spill_bw = block.nbytes / t

    rates = KernelRates(
        gemm_flops=gemm_flops,
        cdist_evals=cdist_evals,
        tree_build_points=tree_build,
        tree_query_points=tree_query,
        union_find_ops=uf_ops,
        cc_label_ops=cc_label,
        tree_batch_candidates=tree_batch,
        io_bandwidth=DEFAULT_RATES.io_bandwidth,
        spill_bandwidth=spill_bw,
    )
    return CalibrationResult(rates=rates, timings=timings,
                             distributions=distributions)


# ---------------------------------------------------------------------- #
def _row_by_kernel(record: dict) -> Dict[str, dict]:
    return {row.get("kernel"): row for row in record.get("rows", [])}


def rates_from_bench_record(record: Union[dict, str, Path, None] = None,
                            rates: KernelRates = DEFAULT_RATES) -> KernelRates:
    """Recalibrate the engine-split rates from a BENCH_kernels.json record.

    The benchmark harness persists full reference-vs-vectorized
    distributions per kernel; this derives the vectorized-engine rates
    (``cc_label_ops``, ``tree_batch_candidates``) from the **speedup
    medians** of that record so the modeled engine gap tracks the
    measured one:

    * ``cc_label_ops`` — the model's vectorized components time is
      ``(n+e) * passes / cc_label_ops`` against the reference's
      ``(n+e) / union_find_ops``, so a measured median speedup ``s`` on
      an ``n``-node workload gives
      ``cc_label_ops = s * passes(n) * union_find_ops``.
    * ``tree_batch_candidates`` — the balltree row measures the batched
      engine against the dense scan, which the model prices as
      ``n^2 / cdist_evals``; dividing by the measured speedup and
      removing the build term leaves the batched query time to solve
      for the candidate rate.

    Derived rates are sanity-clamped: a vectorized rate never falls
    below its reference counterpart (the ordering invariants of
    :class:`~repro.perfmodel.kernels.KernelCosts` must survive any
    record), and kernels missing from the record keep their incoming
    values.

    Parameters
    ----------
    record : dict, str, Path, or None, optional
        A parsed record, a path to one, or ``None`` for the committed
        :data:`BENCH_RECORD_PATH` (missing file → ``rates`` unchanged).
    rates : KernelRates, optional
        The base (reference-engine) rates to recalibrate.

    Returns
    -------
    KernelRates
        ``rates`` with the vectorized-engine fields recalibrated.
    """
    if record is None:
        if not BENCH_RECORD_PATH.exists():
            return rates
        record = BENCH_RECORD_PATH
    if isinstance(record, (str, Path)):
        record = json.loads(Path(record).read_text())
    rows = _row_by_kernel(record)
    updates = {}

    cc = rows.get("connected_components")
    if cc and cc.get("speedup_median", 0.0) > 0.0:
        n_nodes = 30_000                        # the record's fixed workload
        workload = cc.get("workload", "")
        if "n=" in workload:
            try:
                n_nodes = int(workload.split("n=")[1].split()[0])
            except ValueError:
                pass
        passes = max(1.0, np.log2(max(n_nodes, 2)) / 2.0)
        derived = cc["speedup_median"] * passes * rates.union_find_ops
        updates["cc_label_ops"] = max(derived, rates.union_find_ops)

    tree = rows.get("radius_edges[balltree]")
    if tree and tree.get("speedup_median", 0.0) > 0.0:
        n = 20_000                              # the record's fixed workload
        workload = tree.get("workload", "")
        if "n=" in workload:
            try:
                n = int(workload.split("n=")[1].split()[0])
            except ValueError:
                pass
        log_n = max(1.0, np.log2(max(n, 2)))
        dense_s = (n * n) / rates.cdist_evals
        batched_s = dense_s / tree["speedup_median"]
        query_s = batched_s - n / rates.tree_build_points
        if query_s > 0.0:
            derived = n * log_n / query_s
            updates["tree_batch_candidates"] = max(derived,
                                                   rates.tree_query_points)

    if not updates:
        return rates
    from dataclasses import replace
    return replace(rates, **updates)


def engine_preset(engine: str = "reference",
                  rates: KernelRates = DEFAULT_RATES) -> KernelRates:
    """Engine-aware kernel-rate preset.

    Parameters
    ----------
    engine : str, optional
        ``"reference"`` returns ``rates`` unchanged (the paper-era
        Haswell preset models the reference engine);
        ``"vectorized"`` returns ``rates`` with the engine-split
        fields recalibrated from the committed benchmark distribution
        medians (see :func:`rates_from_bench_record`).
    rates : KernelRates, optional
        The base preset.

    Returns
    -------
    KernelRates
    """
    if engine == "reference":
        return rates
    if engine == "vectorized":
        return rates_from_bench_record(None, rates=rates)
    raise ValueError(f"unknown engine {engine!r}")
