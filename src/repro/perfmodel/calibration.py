"""Local calibration of the kernel rates.

The defaults in :data:`repro.perfmodel.kernels.DEFAULT_RATES` describe a
Haswell core of the paper's testbeds.  When comparing modeled curves with
live laptop-scale measurements it helps to calibrate the rates on the
machine actually running the benchmarks; :func:`calibrate_kernels` does
that with a handful of sub-second micro-benchmarks of exactly the kernels
the algorithms use.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

from ..analysis.neighbors import BallTree
from ..analysis.rmsd import rmsd_matrix
from ..analysis.graph import connected_components
from .kernels import DEFAULT_RATES, KernelRates

__all__ = ["CalibrationResult", "calibrate_kernels"]


@dataclass(frozen=True)
class CalibrationResult:
    """Measured rates plus the micro-benchmark timings that produced them."""

    rates: KernelRates
    timings: dict

    def summary(self) -> str:
        """Human-readable one-line-per-kernel summary."""
        lines = []
        for key, value in self.timings.items():
            lines.append(f"{key}: {value * 1e3:.2f} ms")
        return "\n".join(lines)


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibrate_kernels(*, n_frames: int = 64, n_atoms: int = 512,
                      n_points: int = 2000, seed: int = 0,
                      repeats: int = 3) -> CalibrationResult:
    """Measure the local machine's kernel rates.

    The sizes are chosen so the whole calibration takes well under a
    second; rates are extrapolated from the measured per-element
    throughput, which is size-independent to first order for these
    kernels.
    """
    rng = np.random.default_rng(seed)
    traj_a = rng.normal(size=(n_frames, n_atoms, 3))
    traj_b = rng.normal(size=(n_frames, n_atoms, 3))
    points = rng.uniform(0.0, 100.0, size=(n_points, 3))
    edges = rng.integers(0, n_points, size=(4 * n_points, 2))

    timings = {}

    t = _time(lambda: rmsd_matrix(traj_a, traj_b), repeats)
    timings["rmsd_matrix"] = t
    gemm_flops = 2.0 * (n_frames ** 2) * (3.0 * n_atoms) / max(t, 1e-9)

    t = _time(lambda: cdist(points, points), repeats)
    timings["cdist"] = t
    cdist_evals = (n_points ** 2) / max(t, 1e-9)

    t = _time(lambda: BallTree(points, leaf_size=32), repeats)
    timings["balltree_build"] = t
    tree_build = n_points / max(t, 1e-9)

    tree = BallTree(points, leaf_size=32)
    queries = points[: max(1, n_points // 10)]
    # one query per call: measures the per-query regime tree_query_points
    # models (per-call overhead dominated, like the paper-era tree search)
    t = _time(lambda: [tree.query_radius(q, 5.0) for q in queries], repeats)
    timings["balltree_query_per_query"] = t
    tree_query = queries.shape[0] * np.log2(n_points) / max(t, 1e-9)

    # batched frontier traversal (the vectorized kernel engine rate)
    t = _time(lambda: tree.query_radius_pairs(queries, 5.0), repeats)
    timings["balltree_query_batched"] = t
    tree_batch = queries.shape[0] * np.log2(n_points) / max(t, 1e-9)

    t = _time(lambda: connected_components(edges, n_points, method="reference"),
              repeats)
    timings["connected_components_reference"] = t
    uf_ops = (n_points + edges.shape[0]) / max(t, 1e-9)

    t = _time(lambda: connected_components(edges, n_points, method="vectorized"),
              repeats)
    timings["connected_components_vectorized"] = t
    passes = max(1.0, np.log2(max(n_points, 2)) / 2.0)
    cc_label = (n_points + edges.shape[0]) * passes / max(t, 1e-9)

    # spill-file write bandwidth: what one synchronous eviction of a
    # ~4 MB block costs on this machine's local storage (the async
    # pipeline hides most of it, but the model needs the denominator)
    block = rng.normal(size=(4 * 1024 * 1024 // 8,))
    with tempfile.TemporaryDirectory(prefix="repro-calib-spill-") as tmpdir:
        path = os.path.join(tmpdir, "calib.blk")

        def _write() -> None:
            with open(path, "wb") as fh:
                fh.write(block.data)

        t = _time(_write, repeats)
    timings["spill_write"] = t
    spill_bw = block.nbytes / max(t, 1e-9)

    rates = KernelRates(
        gemm_flops=gemm_flops,
        cdist_evals=cdist_evals,
        tree_build_points=tree_build,
        tree_query_points=tree_query,
        union_find_ops=uf_ops,
        cc_label_ops=cc_label,
        tree_batch_candidates=tree_batch,
        io_bandwidth=DEFAULT_RATES.io_bandwidth,
        spill_bandwidth=spill_bw,
    )
    return CalibrationResult(rates=rates, timings=timings)
