"""Per-framework cost models and their paper-derived calibration.

The four substrates differ in *where time goes* when running the same
workload; the paper's measurements let us put numbers on those
architectural costs.  :class:`FrameworkCostModel` collects them:

``startup_s``
    fixed cost before the first task can run (JVM / cluster spin-up,
    pilot bootstrap, MongoDB connection, ...),
``job_overhead_s``
    fixed cost per submitted job once the cluster is up (stage planning,
    client/scheduler round trips) — what the throughput experiment sees at
    small task counts,
``task_overhead_s``
    per-task scheduling cost *on the critical path of the scheduler*
    (serialization, state updates); the inverse is the framework's
    maximum task throughput on one scheduler,
``unit_overhead_s``
    additional per-task cost when the task carries a real payload (input
    staging, argument serialization); negligible for Dask/MPI, dominant
    for RADICAL-Pilot's file-staged Compute Units (Figure 9),
``scheduler_scaling``
    how that throughput grows with added nodes (1.0 = linear, 0.0 = not
    at all — RADICAL-Pilot's database-bound scheduler),
``task_throughput_cap``
    hard ceiling on tasks/second regardless of resources (RP's MongoDB
    round-trip bound),
``broadcast_base_s`` / ``broadcast_per_byte_per_node_s``
    cost of making a value available on every node,
``shuffle_per_byte_s``
    cost per byte moved between map and reduce,
``worker_efficiency``
    fraction of raw core throughput a worker achieves on numeric kernels
    (Python/JVM serialization overheads make this < 1 for PySpark),
``max_tasks``
    largest task count the framework handled in the paper (RP could not
    run >= 32k tasks).

The calibration constants (``PAPER_CALIBRATION``) are chosen to match the
published figures in *shape*: who wins, by roughly what factor, and where
the crossovers fall (see EXPERIMENTS.md for the paper-vs-model numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["FrameworkCostModel", "PAPER_CALIBRATION", "get_cost_model", "MPI_COSTS",
           "SPARK_COSTS", "DASK_COSTS", "PILOT_COSTS"]


@dataclass(frozen=True)
class FrameworkCostModel:
    """Architectural cost constants of one framework (see module docstring)."""

    name: str
    startup_s: float
    job_overhead_s: float
    task_overhead_s: float
    unit_overhead_s: float
    scheduler_scaling: float
    task_throughput_cap: float
    broadcast_base_s: float
    broadcast_per_byte_per_node_s: float
    shuffle_per_byte_s: float
    worker_efficiency: float
    max_tasks: int

    def scheduler_throughput(self, nodes: int = 1) -> float:
        """Maximum tasks/second the scheduler sustains on ``nodes`` nodes."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        base = 1.0 / self.task_overhead_s
        scaled = base * (1.0 + self.scheduler_scaling * (nodes - 1))
        return min(scaled, self.task_throughput_cap)

    def dispatch_time(self, n_tasks: int, nodes: int = 1) -> float:
        """Time the scheduler spends dispatching ``n_tasks`` tasks."""
        if n_tasks < 0:
            raise ValueError("n_tasks must be non-negative")
        return n_tasks / self.scheduler_throughput(nodes)

    def broadcast_time(self, nbytes: int, nodes: int) -> float:
        """Time to make ``nbytes`` available on ``nodes`` nodes."""
        if nbytes < 0 or nodes < 1:
            raise ValueError("nbytes must be >= 0 and nodes >= 1")
        return self.broadcast_base_s + self.broadcast_per_byte_per_node_s * nbytes * nodes

    def shuffle_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between the map and reduce phases."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.shuffle_per_byte_s * nbytes

    def supports_task_count(self, n_tasks: int) -> bool:
        """Whether the framework handled this many tasks in the paper."""
        return n_tasks <= self.max_tasks

    def with_overrides(self, **kwargs) -> "FrameworkCostModel":
        """A copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


# --------------------------------------------------------------------------- #
# calibration (paper-shape constants)
# --------------------------------------------------------------------------- #
DASK_COSTS = FrameworkCostModel(
    name="dask",
    startup_s=1.0,
    job_overhead_s=0.01,             # "very small delays for few tasks"
    task_overhead_s=6.5e-4,          # ~1500 tasks/s on one node (Fig. 2)
    unit_overhead_s=1.0e-3,          # payload serialization per delayed task
    scheduler_scaling=0.9,           # near-linear growth with nodes (Fig. 3)
    task_throughput_cap=20000.0,
    broadcast_base_s=0.1,
    broadcast_per_byte_per_node_s=8.0e-9,   # element-wise scatter: weak comm layer (Fig. 8)
    shuffle_per_byte_s=2.0e-8,
    worker_efficiency=0.95,          # native Python, no cross-language copies
    max_tasks=1_000_000,
)

SPARK_COSTS = FrameworkCostModel(
    name="spark",
    startup_s=4.0,
    job_overhead_s=0.25,             # stage planning + Py4J round trips per job
    task_overhead_s=6.0e-3,          # ~170 tasks/s on one node, 10x below Dask
    unit_overhead_s=8.0e-3,          # Python<->JVM argument serialization
    scheduler_scaling=0.75,
    task_throughput_cap=5000.0,
    broadcast_base_s=0.15,
    broadcast_per_byte_per_node_s=8.0e-10,  # efficient torrent broadcast
    shuffle_per_byte_s=8.0e-9,       # efficient shuffle subsystem
    worker_efficiency=0.80,          # Python<->JVM serialization overhead
    max_tasks=1_000_000,
)

PILOT_COSTS = FrameworkCostModel(
    name="pilot",
    startup_s=30.0,                  # pilot bootstrap + MongoDB connection
    job_overhead_s=5.0,              # client->DB->agent submission latency
    task_overhead_s=1.6e-2,          # ~60 tasks/s ceiling (Figs. 2-3)
    unit_overhead_s=0.25,            # per-CU staging + state round trips (Fig. 9)
    scheduler_scaling=0.05,          # database-bound: barely scales with nodes
    task_throughput_cap=90.0,
    broadcast_base_s=1.0,            # no broadcast: file staging to shared FS
    broadcast_per_byte_per_node_s=1.0e-8,
    shuffle_per_byte_s=5.0e-8,       # via shared filesystem
    worker_efficiency=0.95,          # tasks run native Python/NumPy
    max_tasks=32_000,                # the paper could not scale past 32k tasks
)

MPI_COSTS = FrameworkCostModel(
    name="mpi",
    startup_s=0.5,
    job_overhead_s=0.05,             # mpiexec launch
    task_overhead_s=2.0e-5,          # static partitioning: negligible dispatch
    unit_overhead_s=0.0,
    scheduler_scaling=1.0,
    task_throughput_cap=1e7,
    broadcast_base_s=1e-3,
    broadcast_per_byte_per_node_s=2.5e-10,  # MPI_Bcast, but linear in ranks in the
                                            # paper's measurement (see Fig. 8)
    shuffle_per_byte_s=4.0e-9,       # gather over the interconnect
    worker_efficiency=1.0,
    max_tasks=10_000_000,
)

#: canonical name -> calibrated model
PAPER_CALIBRATION: Dict[str, FrameworkCostModel] = {
    "dask": DASK_COSTS,
    "dasklite": DASK_COSTS,
    "spark": SPARK_COSTS,
    "sparklite": SPARK_COSTS,
    "pilot": PILOT_COSTS,
    "radical-pilot": PILOT_COSTS,
    "mpi": MPI_COSTS,
    "mpi4py": MPI_COSTS,
    "mpilite": MPI_COSTS,
}


def get_cost_model(framework: str) -> FrameworkCostModel:
    """Look up the calibrated cost model for a framework name."""
    key = framework.lower()
    if key not in PAPER_CALIBRATION:
        raise ValueError(
            f"no cost model for framework {framework!r}; "
            f"known: {sorted(set(PAPER_CALIBRATION))}"
        )
    return PAPER_CALIBRATION[key]
