"""Analytical cost of the numerical kernels.

The scaling model needs per-kernel time estimates as a function of problem
size: the 2D-RMSD matrix of a trajectory pair (PSA's inner loop), a
``cdist`` block, a BallTree build/query, and a connected-components pass.
Each is parameterized by a throughput constant expressed in *element
operations per second on one reference core*; the defaults are
representative of NumPy/SciPy on a Haswell core, and
:func:`repro.perfmodel.calibration.calibrate_kernels` can re-measure them
on the local machine (from sampled distribution medians) so that modeled
and measured laptop-scale numbers line up.

The rates are engine-aware: the reference-engine fields
(``union_find_ops``, ``tree_query_points``) describe the paper-era
per-element Python loops while the vectorized-engine fields
(``cc_label_ops``, ``tree_batch_candidates``) describe the kernel
engine's whole-array passes.
:func:`repro.perfmodel.calibration.engine_preset` returns a preset with
the vectorized fields recalibrated from the distribution medians
committed in ``BENCH_kernels.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["KernelRates", "DEFAULT_RATES", "KernelCosts"]


@dataclass(frozen=True)
class KernelRates:
    """Throughput constants (element operations per second per core).

    ``union_find_ops`` describes the reference (per-edge Python)
    connected-components loop the paper's measurements reflect, and
    ``tree_query_points`` the regime where queries are issued one at a
    time (per-query call overhead dominates, as in the paper-era tree
    search); ``cc_label_ops`` and ``tree_batch_candidates`` describe the
    vectorized kernel engine, whose per-element throughput is one to two
    orders of magnitude higher because the work runs as whole-array
    NumPy passes.
    """

    #: fused multiply-adds per second achieved by the GEMM inside rmsd_matrix
    gemm_flops: float = 4.0e9
    #: element distance evaluations per second achieved by scipy cdist
    cdist_evals: float = 2.0e8
    #: point insertions per second for BallTree construction
    tree_build_points: float = 6.0e5
    #: neighbor candidates examined per second when radius queries are
    #: issued one query per call (the paper-era per-query regime)
    tree_query_points: float = 4.0e5
    #: union-find operations per second for reference connected components
    union_find_ops: float = 2.0e6
    #: label updates per second for the vectorized connected components
    #: (min-label propagation over the whole edge array)
    cc_label_ops: float = 4.0e7
    #: neighbor candidates filtered per second by the batched (frontier)
    #: tree traversal of the vectorized kernel engine
    tree_batch_candidates: float = 2.0e7
    #: trajectory file read bandwidth (bytes/s) from the parallel filesystem
    io_bandwidth: float = 5.0e8
    #: spill-file write bandwidth (bytes/s) to node-local storage — the
    #: denominator of the data plane's spill-to-disk cost
    spill_bandwidth: float = 1.0e9

    def scaled(self, factor: float) -> "KernelRates":
        """All rates multiplied by ``factor`` (e.g. a faster/slower core)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            gemm_flops=self.gemm_flops * factor,
            cdist_evals=self.cdist_evals * factor,
            tree_build_points=self.tree_build_points * factor,
            tree_query_points=self.tree_query_points * factor,
            union_find_ops=self.union_find_ops * factor,
            cc_label_ops=self.cc_label_ops * factor,
            tree_batch_candidates=self.tree_batch_candidates * factor,
        )


DEFAULT_RATES = KernelRates()


class KernelCosts:
    """Kernel time estimates on one core, given a set of rates."""

    def __init__(self, rates: KernelRates = DEFAULT_RATES) -> None:
        self.rates = rates

    # ------------------------------------------------------------------ #
    def hausdorff_pair(self, n_frames: int, n_atoms: int) -> float:
        """One Hausdorff distance between two trajectories.

        Dominated by the 2D-RMSD GEMM: ``n_frames^2 x 3 n_atoms``
        multiply-adds, plus the min/max reductions (negligible).
        """
        if n_frames < 1 or n_atoms < 1:
            raise ValueError("n_frames and n_atoms must be positive")
        flops = 2.0 * (n_frames ** 2) * (3.0 * n_atoms)
        return flops / self.rates.gemm_flops

    def rmsd_2d_pair(self, n_frames: int, n_atoms: int) -> float:
        """One full 2D-RMSD matrix between two trajectories (CPPTraj kernel)."""
        return self.hausdorff_pair(n_frames, n_atoms)

    def hausdorff_earlybreak_pair(self, n_frames: int, n_atoms: int,
                                  visit_fraction: float = 0.25) -> float:
        """One blockwise early-break Hausdorff distance.

        The early-break kernel evaluates only a fraction of the 2D-RMSD
        matrix before every row is retired; ``visit_fraction`` is that
        fraction (Taha & Hanbury report ~0.1-0.4 depending on structure,
        and :mod:`repro.perfmodel.calibration` measures it locally).
        """
        if not 0.0 < visit_fraction <= 1.0:
            raise ValueError("visit_fraction must be in (0, 1]")
        return visit_fraction * self.hausdorff_pair(n_frames, n_atoms)

    def trajectory_read(self, n_frames: int, n_atoms: int) -> float:
        """Reading one trajectory from the filesystem (float32 on disk)."""
        nbytes = n_frames * n_atoms * 3 * 4
        return nbytes / self.rates.io_bandwidth

    def spill_write(self, nbytes: int, spill_async: bool = True,
                    hidden_fraction: float = 0.9) -> float:
        """Critical-path cost of spilling ``nbytes`` to the disk tier.

        A synchronous spill stalls the putting thread for the whole file
        write (``nbytes / spill_bandwidth``).  The write-behind pipeline
        moves the write onto a background thread; only the fraction the
        writer cannot hide — enqueue overhead plus backpressure when
        eviction outruns the disk — stays on the critical path.

        Parameters
        ----------
        nbytes : int
            Bytes evicted to the disk tier.
        spill_async : bool, optional
            Model the write-behind pipeline (default) or the
            synchronous in-line write.
        hidden_fraction : float, optional
            Fraction of the write the background thread overlaps with
            useful work, in ``[0, 1]``.  The default 0.9 reflects a
            compute-bound workload whose spill queue rarely fills;
            workloads that evict faster than the disk drains push it
            toward 0 (pure backpressure = a synchronous write).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not 0.0 <= hidden_fraction <= 1.0:
            raise ValueError("hidden_fraction must be in [0, 1]")
        full = nbytes / self.rates.spill_bandwidth
        if not spill_async:
            return full
        return (1.0 - hidden_fraction) * full

    def retry_overhead(self, task_seconds: float, retries: int = 1,
                       backoff_s: float = 0.0, backoff_factor: float = 2.0,
                       redispatch_s: float = 0.0) -> float:
        """Critical-path cost of re-executing a task ``retries`` times.

        Task-granular recovery (the resilience layer of
        :mod:`repro.frameworks.faults`) pays, per retry, the task's own
        runtime again, the framework's redispatch latency, and the
        policy's deterministic backoff (``backoff_s * backoff_factor**n``
        before the n-th retry) — but never the rest of the run, which is
        the point of task-level replay over job-level restart.  The
        experiments subtract this from a faulty run's wall time to check
        the measured ``recovery_seconds`` against the model.

        Parameters
        ----------
        task_seconds : float
            Runtime of one attempt of the task.
        retries : int, optional
            Number of re-executions (default 1: one fault, one replay).
        backoff_s : float, optional
            First retry's backoff pause (default 0, the local-substrate
            default of :class:`~repro.frameworks.faults.FaultPolicy`).
        backoff_factor : float, optional
            Multiplier between successive backoffs.
        redispatch_s : float, optional
            Per-retry scheduling cost (e.g. a framework's
            ``task_overhead_s``, or the pool-rebuild time for a worker
            death).
        """
        if task_seconds < 0 or retries < 0 or backoff_s < 0 or redispatch_s < 0:
            raise ValueError("retry_overhead arguments must be non-negative")
        backoff_total = sum(backoff_s * backoff_factor ** n for n in range(retries))
        return retries * (task_seconds + redispatch_s) + backoff_total

    def restore_cost(self, nbytes: int, n_entries: int = 1,
                     verify_s_per_entry: float = 1.0e-4) -> float:
        """Replaying ``n_entries`` journalled task results from disk.

        Checkpoint/restart (:mod:`repro.frameworks.checkpoint`) turns a
        driver crash into a journal replay instead of a full recompute:
        the resumed run reads the entry blocks back at the spill tier's
        bandwidth and pays a small per-entry cost for the sidecar parse
        and checksum verification.  A resume is profitable whenever this
        is smaller than re-executing the journalled tasks — the
        ``resume cost < 0.5 x recompute`` gate the recovery benchmark
        enforces.

        Parameters
        ----------
        nbytes : int
            Total bytes of journalled result blocks replayed.
        n_entries : int, optional
            Number of journal entries (one per completed task).
        verify_s_per_entry : float, optional
            Per-entry sidecar parse + checksum cost.
        """
        if nbytes < 0 or n_entries < 0 or verify_s_per_entry < 0:
            raise ValueError("restore_cost arguments must be non-negative")
        return nbytes / self.rates.spill_bandwidth + n_entries * verify_s_per_entry

    def speculation_overhead(self, task_seconds: float,
                             straggler_seconds: float,
                             speculation_factor: float = 3.0,
                             redispatch_s: float = 0.0) -> float:
        """Critical-path cost of a straggler with speculative re-execution.

        Without speculation a straggling task holds the run open for its
        full ``straggler_seconds``.  With speculation the engine waits
        ``speculation_factor x median(task duration)`` before launching a
        duplicate attempt on a free worker; the straggler's tail is then
        bounded by that threshold plus one normal execution (the
        duplicate), never by the straggler itself.  Returns the modeled
        completion time of the straggling task, i.e.
        ``min(straggler, threshold + redispatch + task)``.

        Parameters
        ----------
        task_seconds : float
            Median runtime of a healthy attempt.
        straggler_seconds : float
            Runtime the straggling attempt would need.
        speculation_factor : float, optional
            The policy's duplicate-launch threshold multiplier.
        redispatch_s : float, optional
            Scheduling cost of submitting the duplicate.
        """
        if task_seconds < 0 or straggler_seconds < 0 or redispatch_s < 0:
            raise ValueError("speculation_overhead arguments must be non-negative")
        if speculation_factor <= 0:
            raise ValueError("speculation_factor must be positive")
        duplicate_path = speculation_factor * task_seconds + redispatch_s + task_seconds
        return min(straggler_seconds, duplicate_path)

    # ------------------------------------------------------------------ #
    def cdist_block(self, n_rows: int, n_cols: int) -> float:
        """A dense pairwise-distance block (Leaflet Finder approaches 1-3)."""
        if n_rows < 0 or n_cols < 0:
            raise ValueError("block dimensions must be non-negative")
        return (n_rows * n_cols) / self.rates.cdist_evals

    def tree_block(self, n_rows: int, n_cols: int) -> float:
        """Tree build over ``n_cols`` points plus ``n_rows`` radius queries."""
        if n_rows < 0 or n_cols < 0:
            raise ValueError("block dimensions must be non-negative")
        log_cols = max(1.0, np.log2(max(n_cols, 2)))
        build = n_cols / self.rates.tree_build_points
        query = n_rows * log_cols / self.rates.tree_query_points
        return build + query

    def connected_components(self, n_nodes: int, n_edges: int,
                             method: str = "reference") -> float:
        """Connected components over ``n_edges`` edges (plus node init).

        ``method="reference"`` models the per-edge union-find loop (what
        the paper's Python measurements reflect, and the default so the
        modeled figures keep the published shapes);
        ``method="vectorized"`` models the array-native min-label
        propagation, whose per-element rate is ``cc_label_ops`` but which
        takes O(log n) passes over the edge array.
        """
        if n_nodes < 0 or n_edges < 0:
            raise ValueError("n_nodes and n_edges must be non-negative")
        if method == "reference":
            return (n_nodes + n_edges) / self.rates.union_find_ops
        if method == "vectorized":
            passes = max(1.0, np.log2(max(n_nodes, 2)) / 2.0)
            return (n_nodes + n_edges) * passes / self.rates.cc_label_ops
        raise ValueError(f"unknown connected-components cost method {method!r}")

    def tree_block_batched(self, n_rows: int, n_cols: int) -> float:
        """Vectorized tree build plus batched frontier query on a block."""
        if n_rows < 0 or n_cols < 0:
            raise ValueError("block dimensions must be non-negative")
        log_cols = max(1.0, np.log2(max(n_cols, 2)))
        build = n_cols / self.rates.tree_build_points
        query = n_rows * log_cols / self.rates.tree_batch_candidates
        return build + query

    def partial_component_merge(self, n_memberships: int) -> float:
        """Merging partial components with ``n_memberships`` (atom, comp) pairs."""
        if n_memberships < 0:
            raise ValueError("n_memberships must be non-negative")
        return n_memberships / self.rates.union_find_ops
