"""Runtime models for the PSA and Leaflet Finder experiments (Figures 4-9).

These models compose three ingredients:

* the **kernel costs** (:mod:`repro.perfmodel.kernels`) — how long the
  numerical work of one task takes on one core,
* the **framework costs** (:mod:`repro.perfmodel.costs`) — dispatch
  overheads, broadcast/shuffle costs, worker efficiency, and
* the **machine model** (:mod:`repro.perfmodel.machines`) — effective
  cores (hyper-threading), shared-filesystem bandwidth and node counts.

The absolute numbers depend on the authors' exact datasets and testbeds;
what the model reproduces is the *shape* of every figure: which framework
wins, roughly by what factor, where approaches cross over, and where
scaling saturates.  EXPERIMENTS.md records modeled-vs-paper values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .costs import FrameworkCostModel, get_cost_model
from .kernels import DEFAULT_RATES, KernelCosts, KernelRates
from .machines import MachineSpec, WRANGLER

__all__ = [
    "ScalingPoint",
    "model_psa_runtime",
    "psa_sweep",
    "model_cpptraj_runtime",
    "cpptraj_sweep",
    "model_leaflet_runtime",
    "leaflet_sweep",
    "model_broadcast_breakdown",
    "PAPER_PSA_CORE_COUNTS",
    "PAPER_LEAFLET_CORE_COUNTS",
]

#: Core counts used for PSA on Wrangler (Figure 4): 16, 64, 256.
PAPER_PSA_CORE_COUNTS = (16, 64, 256)
#: Core counts used for the Leaflet Finder (Figure 7): 32, 64, 128, 256.
PAPER_LEAFLET_CORE_COUNTS = (32, 64, 128, 256)

#: Shared-filesystem read bandwidth per node (bytes/s); trajectory input is
#: striped over the allocation, so total bandwidth grows with nodes but much
#: more slowly than compute — the main reason measured PSA speedups saturate
#: around 6-8x instead of scaling with the core count.
_FS_BANDWIDTH_PER_NODE = 8.0e8


@dataclass(frozen=True)
class ScalingPoint:
    """One modeled experiment configuration."""

    figure: str
    framework: str
    machine: str
    cores: int
    nodes: int
    workload: str
    runtime_s: float
    speedup: float = float("nan")
    extra: dict | None = None

    def as_dict(self) -> dict:
        """Flat dict for tabular reports."""
        out = {
            "figure": self.figure,
            "framework": self.framework,
            "machine": self.machine,
            "cores": self.cores,
            "nodes": self.nodes,
            "workload": self.workload,
            "runtime_s": self.runtime_s,
            "speedup": self.speedup,
        }
        if self.extra:
            out.update(self.extra)
        return out


# --------------------------------------------------------------------------- #
# PSA (Figures 4 and 5)
# --------------------------------------------------------------------------- #
def model_psa_runtime(framework: str | FrameworkCostModel,
                      machine: MachineSpec = WRANGLER, *,
                      cores: int = 16,
                      n_trajectories: int = 128,
                      n_frames: int = 102,
                      n_atoms: int = 3341,
                      rates: KernelRates = DEFAULT_RATES) -> float:
    """Modeled PSA (Hausdorff) runtime for one configuration.

    The decomposition follows the paper: the pair matrix is split into one
    task per core; every task reads its trajectories from the shared
    filesystem, computes its block of Hausdorff distances and writes a
    small result.
    """
    costs = framework if isinstance(framework, FrameworkCostModel) else get_cost_model(framework)
    if cores < 1:
        raise ValueError("cores must be >= 1")
    kern = KernelCosts(rates)
    nodes = machine.nodes_for_cores(cores)
    eff_cores = machine.effective_cores(cores)

    n_pairs = n_trajectories * (n_trajectories - 1) / 2.0
    compute = n_pairs * kern.hausdorff_pair(n_frames, n_atoms)
    compute_parallel = compute / (eff_cores * costs.worker_efficiency)

    # every trajectory is read by ~n_trajectories/ (2 * group) tasks; charge the
    # aggregate volume against the shared filesystem's bandwidth
    traj_bytes = n_frames * n_atoms * 3 * 4
    total_read_bytes = 2.0 * n_pairs / max(1, n_trajectories // (2 * max(1, cores // 2))) * traj_bytes
    # simpler, conservative model: each task re-reads the trajectories of its block
    tasks = cores
    trajs_per_task = max(2, int(np.ceil(2 * n_trajectories / np.sqrt(2 * tasks))))
    total_read_bytes = tasks * trajs_per_task * traj_bytes
    io_time = total_read_bytes / (_FS_BANDWIDTH_PER_NODE * nodes)

    overhead = (costs.job_overhead_s
                + costs.dispatch_time(tasks, nodes)
                + tasks * costs.unit_overhead_s / max(1.0, eff_cores))
    # small load imbalance: the last wave of tasks rarely fills every core
    imbalance = 1.0 + 0.5 / np.sqrt(tasks)
    return compute_parallel * imbalance + io_time + overhead


def psa_sweep(frameworks: Sequence[str] = ("mpi", "spark", "dask", "pilot"),
              machine: MachineSpec = WRANGLER, *,
              core_counts: Sequence[int] = PAPER_PSA_CORE_COUNTS,
              n_trajectories: int = 128,
              n_frames: int = 102,
              n_atoms: int = 3341,
              rates: KernelRates = DEFAULT_RATES,
              figure: str = "fig4") -> List[ScalingPoint]:
    """Sweep PSA runtimes over frameworks and core counts (Figures 4/5)."""
    points: List[ScalingPoint] = []
    for fw in frameworks:
        base = None
        for cores in core_counts:
            runtime = model_psa_runtime(fw, machine, cores=cores,
                                        n_trajectories=n_trajectories,
                                        n_frames=n_frames, n_atoms=n_atoms,
                                        rates=rates)
            if base is None:
                base = runtime
            points.append(ScalingPoint(
                figure=figure, framework=fw, machine=machine.name, cores=cores,
                nodes=machine.nodes_for_cores(cores),
                workload=f"{n_trajectories}traj x {n_atoms}atoms",
                runtime_s=runtime, speedup=base / runtime,
            ))
    return points


# --------------------------------------------------------------------------- #
# CPPTraj comparison (Figure 6)
# --------------------------------------------------------------------------- #
def model_cpptraj_runtime(cores: int, *, n_trajectories: int = 128,
                          n_frames: int = 102, n_atoms: int = 3341,
                          compiler_speedup: float = 1.0,
                          rates: KernelRates = DEFAULT_RATES) -> float:
    """Modeled runtime of the compiled (CPPTraj-style) 2D-RMSD comparator.

    CPPTraj distributes whole trajectory pairs over MPI ranks and further
    parallelizes the 2D-RMSD with OpenMP; its per-pair kernel is the same
    GEMM-shaped computation but with a compiled constant factor.
    ``compiler_speedup`` distinguishes the GNU (1.0) and Intel ``-O3``
    builds the paper compares.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if compiler_speedup <= 0:
        raise ValueError("compiler_speedup must be positive")
    kern = KernelCosts(rates.scaled(compiler_speedup))
    n_pairs = n_trajectories * (n_trajectories - 1) / 2.0
    compute = n_pairs * kern.rmsd_2d_pair(n_frames, n_atoms) / cores
    # gather of the per-pair results + serial Hausdorff reduction on rank 0
    serial_tail = n_pairs * 2.0e-5
    launch = 0.5 + 0.002 * cores      # mpiexec startup grows mildly with ranks
    return compute + serial_tail + launch


def cpptraj_sweep(core_counts: Sequence[int] = (1, 20, 40, 80, 120, 160, 200, 240),
                  *, n_trajectories: int = 128, n_frames: int = 102,
                  n_atoms: int = 3341,
                  rates: KernelRates = DEFAULT_RATES) -> List[ScalingPoint]:
    """Figure 6 sweep: GNU vs Intel-compiled CPPTraj over core counts."""
    points: List[ScalingPoint] = []
    for label, speedup in (("gnu", 1.0), ("intel-O3", 1.9)):
        base = None
        for cores in core_counts:
            runtime = model_cpptraj_runtime(cores, n_trajectories=n_trajectories,
                                            n_frames=n_frames, n_atoms=n_atoms,
                                            compiler_speedup=speedup, rates=rates)
            if base is None:
                base = runtime * cores if cores == core_counts[0] else runtime
            points.append(ScalingPoint(
                figure="fig6", framework=f"cpptraj-{label}", machine="comet",
                cores=cores, nodes=max(1, cores // 20),
                workload=f"{n_trajectories}traj x {n_atoms}atoms",
                runtime_s=runtime,
                speedup=(model_cpptraj_runtime(1, n_trajectories=n_trajectories,
                                               n_frames=n_frames, n_atoms=n_atoms,
                                               compiler_speedup=speedup, rates=rates)
                         / runtime),
            ))
    return points


# --------------------------------------------------------------------------- #
# Leaflet Finder (Figures 7, 8 and 9)
# --------------------------------------------------------------------------- #
#: average neighbor-graph edge counts of the paper's four datasets
PAPER_EDGE_COUNTS = {131_072: 896_000, 262_144: 1_750_000,
                     524_288: 3_520_000, 4_194_304: 44_600_000}


def _edges_for(n_atoms: int) -> float:
    """Interpolate the expected edge count for a system of ``n_atoms``."""
    if n_atoms in PAPER_EDGE_COUNTS:
        return float(PAPER_EDGE_COUNTS[n_atoms])
    # edge density grows roughly linearly with atom count for these bilayers
    return 8.0 * n_atoms


def model_leaflet_runtime(framework: str | FrameworkCostModel,
                          approach: str,
                          machine: MachineSpec = WRANGLER, *,
                          cores: int = 32,
                          n_atoms: int = 131_072,
                          n_tasks: int = 1024,
                          rates: KernelRates = DEFAULT_RATES) -> float:
    """Modeled Leaflet Finder runtime for one configuration (Figure 7).

    ``approach`` is one of ``broadcast-1d``, ``task-2d``, ``parallel-cc``,
    ``tree-search`` (the keys of
    :data:`repro.core.leaflet.LEAFLET_APPROACHES`).
    """
    costs = framework if isinstance(framework, FrameworkCostModel) else get_cost_model(framework)
    if cores < 1 or n_tasks < 1 or n_atoms < 2:
        raise ValueError("cores, n_tasks must be >= 1 and n_atoms >= 2")
    kern = KernelCosts(rates)
    nodes = machine.nodes_for_cores(cores)
    eff_cores = machine.effective_cores(cores) * costs.worker_efficiency
    n_edges = _edges_for(n_atoms)
    positions_bytes = n_atoms * 3 * 8
    edge_bytes = n_edges * 2 * 8
    component_bytes = n_atoms * 8

    broadcast_time = 0.0
    shuffle_bytes = 0.0
    reduce_time = 0.0

    if approach == "broadcast-1d":
        # every task compares its 1/n_tasks chunk against all atoms
        compute = kern.cdist_block(n_atoms, n_atoms)
        broadcast_time = costs.broadcast_time(positions_bytes, nodes)
        shuffle_bytes = edge_bytes
        reduce_time = kern.connected_components(n_atoms, int(n_edges))
    elif approach == "task-2d":
        # upper-triangular blocks: half the pair evaluations of approach 1
        compute = kern.cdist_block(n_atoms, n_atoms) / 2.0
        shuffle_bytes = edge_bytes
        reduce_time = kern.connected_components(n_atoms, int(n_edges))
    elif approach == "parallel-cc":
        compute = kern.cdist_block(n_atoms, n_atoms) / 2.0
        compute += kern.connected_components(n_atoms, int(n_edges))  # in-map partial CC
        shuffle_bytes = component_bytes
        reduce_time = kern.partial_component_merge(2 * n_atoms)
    elif approach == "tree-search":
        block = max(2, int(np.ceil(n_atoms / np.sqrt(2.0 * n_tasks))))
        blocks = n_tasks
        compute = blocks * kern.tree_block(block, block)
        compute += kern.connected_components(n_atoms, int(n_edges))
        shuffle_bytes = component_bytes
        reduce_time = kern.partial_component_merge(2 * n_atoms)
    else:
        raise ValueError(f"unknown leaflet approach {approach!r}")

    compute_parallel = compute / eff_cores
    shuffle_time = costs.shuffle_time(int(shuffle_bytes))
    overhead = (costs.job_overhead_s
                + costs.dispatch_time(n_tasks, nodes)
                + n_tasks * costs.unit_overhead_s / max(1.0, eff_cores))
    imbalance = 1.0 + 0.5 / np.sqrt(n_tasks)
    return compute_parallel * imbalance + broadcast_time + shuffle_time + reduce_time + overhead


def leaflet_sweep(frameworks: Sequence[str] = ("spark", "dask", "mpi"),
                  approaches: Sequence[str] = ("broadcast-1d", "task-2d",
                                               "parallel-cc", "tree-search"),
                  machine: MachineSpec = WRANGLER, *,
                  atom_counts: Sequence[int] = (131_072, 262_144, 524_288, 4_194_304),
                  core_counts: Sequence[int] = PAPER_LEAFLET_CORE_COUNTS,
                  n_tasks: int = 1024,
                  rates: KernelRates = DEFAULT_RATES) -> List[ScalingPoint]:
    """Figure 7 sweep: every (framework, approach, system size, cores) cell.

    Configurations the paper could not run (broadcast of the 524k system
    with Dask, cdist-based approaches on the 4M system, any 4M run with
    Dask approach 3) are still modeled but flagged in ``extra['feasible']``
    so the harness can reproduce the "did not scale" annotations.
    """
    points: List[ScalingPoint] = []
    for fw in frameworks:
        for approach in approaches:
            for n_atoms in atom_counts:
                feasible = _configuration_feasible(fw, approach, n_atoms)
                base = None
                for cores in core_counts:
                    runtime = model_leaflet_runtime(fw, approach, machine,
                                                    cores=cores, n_atoms=n_atoms,
                                                    n_tasks=n_tasks, rates=rates)
                    if base is None:
                        base = runtime
                    points.append(ScalingPoint(
                        figure="fig7", framework=fw, machine=machine.name,
                        cores=cores, nodes=machine.nodes_for_cores(cores),
                        workload=f"{n_atoms}atoms/{approach}",
                        runtime_s=runtime, speedup=base / runtime,
                        extra={"approach": approach, "n_atoms": n_atoms,
                               "feasible": feasible},
                    ))
    return points


def _configuration_feasible(framework: str, approach: str, n_atoms: int) -> bool:
    """Whether the paper managed to run this configuration (section 4.3)."""
    fw = framework.lower()
    if approach == "broadcast-1d":
        if fw.startswith("dask") and n_atoms > 262_144:
            return False      # Dask's element-wise scatter broke at 524k atoms
        return n_atoms <= 524_288
    if approach == "task-2d":
        return n_atoms <= 524_288          # cdist memory: no 4M run for anyone
    if approach == "parallel-cc":
        if fw.startswith("dask"):
            return n_atoms <= 524_288      # Dask workers hit the 95% memory limit
        return True                         # Spark/MPI ran 4M with 42k tasks
    return True                             # tree-search ran everything


def model_broadcast_breakdown(frameworks: Sequence[str] = ("spark", "dask", "mpi"),
                              machine: MachineSpec = WRANGLER, *,
                              atom_counts: Sequence[int] = (131_072, 262_144),
                              core_counts: Sequence[int] = PAPER_LEAFLET_CORE_COUNTS,
                              n_tasks: int = 1024,
                              rates: KernelRates = DEFAULT_RATES) -> List[ScalingPoint]:
    """Figure 8: total runtime and broadcast time for approach 1."""
    points: List[ScalingPoint] = []
    for fw in frameworks:
        costs = get_cost_model(fw)
        for n_atoms in atom_counts:
            positions_bytes = n_atoms * 3 * 8
            for cores in core_counts:
                nodes = machine.nodes_for_cores(cores)
                total = model_leaflet_runtime(fw, "broadcast-1d", machine,
                                              cores=cores, n_atoms=n_atoms,
                                              n_tasks=n_tasks, rates=rates)
                bcast = costs.broadcast_time(positions_bytes, nodes)
                points.append(ScalingPoint(
                    figure="fig8", framework=fw, machine=machine.name,
                    cores=cores, nodes=nodes,
                    workload=f"{n_atoms}atoms/broadcast-1d",
                    runtime_s=total,
                    extra={"broadcast_s": bcast, "n_atoms": n_atoms,
                           "broadcast_fraction": bcast / total if total > 0 else 0.0},
                ))
    return points
