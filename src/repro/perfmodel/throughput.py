"""Task-throughput model (Figures 2 and 3).

The paper's first experiment submits N zero-workload tasks
(``/bin/hostname``) to each framework and measures the time to run them
all; throughput is N divided by that time.  The model composes the
per-framework job overhead and scheduler dispatch rate from
:mod:`repro.perfmodel.costs`:

.. math::

    T(N, nodes) = t_{job} + N / r(nodes), \\qquad
    throughput = N / T

where ``r(nodes)`` is the scheduler's sustained dispatch rate on the given
node count (capped for RADICAL-Pilot by the database round-trip bound).
Frameworks refuse task counts above their ``max_tasks`` (RP could not run
32k or more tasks in the paper), returning ``inf``/``0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .costs import FrameworkCostModel, get_cost_model
from .machines import MachineSpec, WRANGLER

__all__ = [
    "ThroughputPoint",
    "model_task_run_time",
    "model_throughput",
    "throughput_sweep",
    "node_scaling_sweep",
    "PAPER_TASK_COUNTS",
]

#: Task counts swept by Figure 2 (16 ... 131072).
PAPER_TASK_COUNTS: List[int] = [2 ** k for k in range(4, 18)]


@dataclass(frozen=True)
class ThroughputPoint:
    """One point of a throughput curve."""

    framework: str
    n_tasks: int
    nodes: int
    time_s: float
    throughput: float
    supported: bool

    def as_dict(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "framework": self.framework,
            "n_tasks": self.n_tasks,
            "nodes": self.nodes,
            "time_s": self.time_s,
            "throughput_tasks_per_s": self.throughput,
            "supported": self.supported,
        }


def model_task_run_time(framework: str | FrameworkCostModel, n_tasks: int,
                        nodes: int = 1) -> float:
    """Modeled time to run ``n_tasks`` zero-workload tasks.

    Returns ``inf`` when the framework cannot handle that many tasks
    (RADICAL-Pilot above 32k in the paper).
    """
    costs = framework if isinstance(framework, FrameworkCostModel) else get_cost_model(framework)
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if nodes < 1:
        raise ValueError("nodes must be >= 1")
    if not costs.supports_task_count(n_tasks):
        return float("inf")
    return costs.job_overhead_s + costs.dispatch_time(n_tasks, nodes)


def model_throughput(framework: str | FrameworkCostModel, n_tasks: int,
                     nodes: int = 1) -> float:
    """Modeled sustained throughput (tasks/second); 0 when unsupported."""
    time_s = model_task_run_time(framework, n_tasks, nodes)
    if time_s == float("inf") or time_s <= 0:
        return 0.0
    return n_tasks / time_s


def throughput_sweep(frameworks: Sequence[str] = ("spark", "dask", "pilot"),
                     task_counts: Sequence[int] | None = None,
                     nodes: int = 1,
                     machine: MachineSpec = WRANGLER) -> List[ThroughputPoint]:
    """Figure 2 sweep: time/throughput vs number of tasks on one node."""
    task_counts = list(task_counts or PAPER_TASK_COUNTS)
    points: List[ThroughputPoint] = []
    for fw in frameworks:
        costs = get_cost_model(fw)
        for n in task_counts:
            t = model_task_run_time(costs, n, nodes)
            supported = t != float("inf")
            points.append(ThroughputPoint(
                framework=fw, n_tasks=n, nodes=nodes,
                time_s=t if supported else float("inf"),
                throughput=(n / t) if supported else 0.0,
                supported=supported,
            ))
    return points


def node_scaling_sweep(frameworks: Sequence[str] = ("spark", "dask", "pilot"),
                       node_counts: Sequence[int] = (1, 2, 3, 4),
                       n_tasks: int = 100_000,
                       machine: MachineSpec = WRANGLER) -> List[ThroughputPoint]:
    """Figure 3 sweep: throughput for 100k tasks vs node count.

    Note: the paper could not run RADICAL-Pilot at 100k tasks; the model
    reports those points as unsupported, matching the published plateau
    "below 100 tasks/sec" from the largest runs that did complete.
    """
    points: List[ThroughputPoint] = []
    for fw in frameworks:
        costs = get_cost_model(fw)
        for nodes in node_counts:
            # For the unsupported RP case the paper still plots its ceiling;
            # model the largest supported count instead of dropping the point.
            effective_tasks = n_tasks if costs.supports_task_count(n_tasks) else costs.max_tasks
            t = model_task_run_time(costs, effective_tasks, nodes)
            points.append(ThroughputPoint(
                framework=fw, n_tasks=effective_tasks, nodes=nodes,
                time_s=t, throughput=effective_tasks / t if t > 0 else 0.0,
                supported=costs.supports_task_count(n_tasks),
            ))
    return points
