"""Machine descriptions for the paper's experimental platforms.

The experiments were run on two XSEDE systems:

* **SDSC Comet** — 24 Haswell cores/node, 128 GB/node, no hyper-threading
  used, InfiniBand FDR interconnect,
* **TACC Wrangler** — 24 Haswell cores/node with hyper-threading enabled
  (48 hardware threads), 128 GB/node.

The paper reports runs as "cores/nodes" pairs; on Wrangler 32 slots are
used per node (hyper-threaded), on Comet 16 per node, which is why the
same core count maps to different node counts on the two machines
(e.g. 256 cores = 8 Wrangler nodes but 16 Comet nodes in Figure 5).  The
paper also observes that hyper-threaded slots give lower speedup than
physical cores; :attr:`MachineSpec.hyperthread_efficiency` captures that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frameworks.cluster import ClusterSpec

__all__ = ["MachineSpec", "COMET", "WRANGLER", "LOCAL", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """Hardware model of one HPC system.

    Attributes
    ----------
    name:
        Machine name used in reports.
    cores_per_node / hyperthreads_per_core / memory_per_node_gb:
        Node shape.
    slots_per_node_used:
        How many execution slots per node the paper's experiments used
        (32 on Wrangler due to hyper-threading, 16 on Comet).
    core_ghz_effective:
        Effective per-core throughput scale; only relative values matter
        (Comet's Haswells clock slightly higher than Wrangler's, which the
        paper observes as "Comet slightly outperforming Wrangler").
    hyperthread_efficiency:
        Fraction of a physical core's throughput delivered by the second
        hardware thread (< 1.0 — the reason Wrangler speedups are lower).
    network_bandwidth_gbps / network_latency_s:
        Interconnect model used for broadcast/shuffle costs.
    """

    name: str
    cores_per_node: int
    hyperthreads_per_core: int
    memory_per_node_gb: float
    slots_per_node_used: int
    core_ghz_effective: float
    hyperthread_efficiency: float
    network_bandwidth_gbps: float
    network_latency_s: float

    def nodes_for_cores(self, cores: int) -> int:
        """Number of nodes the paper would allocate for ``cores`` slots."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        return max(1, -(-cores // self.slots_per_node_used))

    def effective_cores(self, cores: int) -> float:
        """Slots weighted by hyper-thread efficiency.

        The first ``cores_per_node`` slots of each node are physical cores
        (weight 1.0); slots beyond that are hyper-threads (weight
        ``hyperthread_efficiency``).
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        nodes = self.nodes_for_cores(cores)
        per_node = min(cores, self.slots_per_node_used * nodes) / nodes
        physical = min(per_node, self.cores_per_node)
        hyper = max(0.0, per_node - physical)
        return nodes * (physical + hyper * self.hyperthread_efficiency) * self.core_ghz_effective

    def cluster(self, nodes: int) -> ClusterSpec:
        """A :class:`ClusterSpec` for ``nodes`` nodes of this machine."""
        return ClusterSpec(nodes=nodes, cores_per_node=self.cores_per_node,
                           memory_per_node_gb=self.memory_per_node_gb,
                           hyperthreads_per_core=self.hyperthreads_per_core,
                           name=self.name)


COMET = MachineSpec(
    name="comet",
    cores_per_node=24,
    hyperthreads_per_core=1,
    memory_per_node_gb=128.0,
    slots_per_node_used=16,
    core_ghz_effective=1.05,
    hyperthread_efficiency=1.0,
    network_bandwidth_gbps=56.0,     # InfiniBand FDR
    network_latency_s=2e-6,
)

WRANGLER = MachineSpec(
    name="wrangler",
    cores_per_node=24,
    hyperthreads_per_core=2,
    memory_per_node_gb=128.0,
    slots_per_node_used=32,
    core_ghz_effective=1.0,
    hyperthread_efficiency=0.55,
    network_bandwidth_gbps=40.0,
    network_latency_s=3e-6,
)

LOCAL = MachineSpec(
    name="local",
    cores_per_node=4,
    hyperthreads_per_core=1,
    memory_per_node_gb=8.0,
    slots_per_node_used=4,
    core_ghz_effective=1.0,
    hyperthread_efficiency=1.0,
    network_bandwidth_gbps=10.0,
    network_latency_s=1e-5,
)

#: name -> spec registry used by the experiment drivers
MACHINES = {"comet": COMET, "wrangler": WRANGLER, "local": LOCAL}
