"""Leaflet Finder: the four architectural approaches of the paper.

The Leaflet Finder (Algorithm 3) assigns lipid head-group particles to the
two leaflets of a bilayer in two stages: (a) build a graph connecting
particles closer than a cutoff, (b) take the connected components of that
graph.  Section 4.3 of the paper evaluates four ways of parallelizing it
(Table 2); all four are implemented here on top of the uniform
:class:`~repro.frameworks.base.TaskFramework` surface so that any of the
substrates (sparklite, dasklite, pilot, mpilite) can execute any approach:

=====================  ============  ==============================  =======================
approach               partitioning  map phase                        shuffle / reduce
=====================  ============  ==============================  =======================
``broadcast-1d``       1-D           pairwise distance vs broadcast   edge list, O(E) -> driver CC
``task-2d``            2-D           pairwise distance on block pair  edge list, O(E) -> driver CC
``parallel-cc``        2-D           pairwise distance + partial CC   partial components, O(n) -> merge
``tree-search``        2-D           BallTree query + partial CC      partial components, O(n) -> merge
=====================  ============  ==============================  =======================

Every function returns ``(LeafletResult, RunReport)``; the report records
wall time, broadcast volume, shuffle volume (bytes returned by map tasks)
and the per-phase timings the paper's Figures 7-9 are built from.

On the shm data plane the map outputs (edge lists, partial components)
ride the zero-copy result plane: tasks return
:class:`~repro.frameworks.shm.BlockRef` handles and the framework's
``map_tasks`` resolves them to read-only views of shared segments before
the reduce phase runs, so the driver-side concatenation / component
merge below never unpickles an edge list.  The report's
``bytes_shared_results`` vs ``bytes_results_pickled`` split quantifies
the saving.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..analysis.engine import get_kernel_method
from ..analysis.graph import connected_components, merge_component_sets
from ..analysis.neighbors import BallTree, GridNeighborSearch, radius_edges
from ..analysis.pairwise import edges_from_block
from ..frameworks.base import TaskFramework
from ..frameworks.checkpoint import RunJournal, checkpointed_map, run_fingerprint
from ..frameworks.serialization import nbytes_of
from ..frameworks.shm import DATA_PLANES, BlockRef, SharedMemoryStore, maybe_resolve
from .partitioning import BlockTask, choose_group_size, one_dimensional_partition, two_dimensional_partition
from .results import LeafletResult, RunReport

__all__ = [
    "LEAFLET_APPROACHES",
    "leaflet_serial",
    "leaflet_broadcast_1d",
    "leaflet_task_2d",
    "leaflet_parallel_cc",
    "leaflet_tree_search",
    "leaflet_task_key",
    "run_leaflet_finder",
    "run_leaflet_stream",
    "LeafletFinder",
]


def _validate_inputs(positions: np.ndarray, cutoff: float) -> np.ndarray:
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (n_atoms, 3)")
    if positions.shape[0] < 1:
        raise ValueError("positions must contain at least one atom")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    return positions


# --------------------------------------------------------------------------- #
# serial reference (Algorithm 3 as written)
# --------------------------------------------------------------------------- #
def leaflet_serial(positions: np.ndarray, cutoff: float,
                   method: str = "balltree") -> LeafletResult:
    """Serial Leaflet Finder: the executable specification of Algorithm 3.

    ``method`` selects the edge-discovery kernel: ``"balltree"``,
    ``"grid"`` or ``"brute"`` (pairwise distances).
    """
    positions = _validate_inputs(positions, cutoff)
    n = positions.shape[0]
    # the kernel engine's vectorized edge assembly for every method
    edges = radius_edges(positions, cutoff, method=method)
    components = connected_components(edges, n)
    return LeafletResult(components, n_atoms=n, n_edges=edges.shape[0])


# --------------------------------------------------------------------------- #
# map-task payloads (module level so they are picklable)
# --------------------------------------------------------------------------- #
@dataclass
class _ChunkVsAllTask:
    """Approach 1 task: one 1-D chunk of atoms against the broadcast system."""

    start: int
    stop: int
    chunk: np.ndarray
    all_positions: np.ndarray
    cutoff: float

    def run(self) -> np.ndarray:
        # chunk/all_positions may be shared-memory refs; the pairwise
        # kernel resolves them to zero-copy views
        edges = edges_from_block(self.chunk, self.all_positions, self.cutoff,
                                 offset_a=self.start, offset_b=0)
        # keep i < j so each undirected edge is reported exactly once
        return edges[edges[:, 0] < edges[:, 1]]


@dataclass
class _BlockPairTask:
    """Approach 2/3 task: a 2-D block of the atom x atom matrix."""

    block: BlockTask
    rows: np.ndarray
    cols: np.ndarray
    cutoff: float
    partial_components: bool = False

    def run(self):
        if self.block.diagonal:
            edges = edges_from_block(self.rows, self.rows, self.cutoff,
                                     offset_a=self.block.row_start,
                                     offset_b=self.block.col_start,
                                     exclude_self=True)
        else:
            edges = edges_from_block(self.rows, self.cols, self.cutoff,
                                     offset_a=self.block.row_start,
                                     offset_b=self.block.col_start)
        if not self.partial_components:
            return edges
        return _partial_components_from_edges(edges)


@dataclass
class _TreeBlockTask:
    """Approach 4 task: tree-based edge discovery on a 2-D block."""

    block: BlockTask
    rows: np.ndarray
    cols: np.ndarray
    cutoff: float
    method: str = "balltree"

    def run(self):
        # build the tree over the column block, query with the row block;
        # complexity drops from O(|rows| * |cols|) to O(|cols| log |cols| +
        # |rows| log |cols|), the speedup the paper reports for large systems
        rows = maybe_resolve(self.rows)
        cols = maybe_resolve(self.cols)
        if self.method == "balltree":
            searcher = BallTree(cols)
        elif self.method == "grid":
            searcher = GridNeighborSearch(cols, self.cutoff)
        else:
            raise ValueError(f"unknown tree method {self.method!r}")
        # flat (query, point) pairs straight from the batched traversal;
        # the global edge array is two vectorized offsets plus a filter
        local_i, local_j = searcher.query_radius_pairs(rows, self.cutoff)
        global_i = local_i + self.block.row_start
        global_j = local_j + self.block.col_start
        if self.block.diagonal:
            keep = global_j > global_i
            global_i = global_i[keep]
            global_j = global_j[keep]
        if global_i.size:
            edges = np.column_stack([global_i, global_j])
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        return _partial_components_from_edges(edges)


def _partial_components_from_edges(edges: np.ndarray) -> List[np.ndarray]:
    """Connected components of a task's local edge set, as global-id arrays."""
    if edges.size == 0:
        return []
    # compact the node ids in one unique pass; the inverse *is* the
    # relabeled edge array
    nodes, local_edges = np.unique(edges, return_inverse=True)
    local_edges = local_edges.reshape(edges.shape).astype(np.int64, copy=False)
    local_components = connected_components(local_edges, len(nodes),
                                            include_singletons=False)
    return [nodes[c] for c in local_components]


def _run_task(task) -> object:
    """Trampoline passed to ``framework.map_tasks``."""
    return task.run()


def leaflet_task_key(task) -> str:
    """Stable journal key for a leaflet map task (block granularity)."""
    if isinstance(task, _ChunkVsAllTask):
        return f"chunk-{task.start}-{task.stop}"
    if isinstance(task, _TreeBlockTask):
        return f"tree-{task.block.row_start}-{task.block.col_start}"
    return (f"pair-{task.block.row_start}-{task.block.col_start}"
            f"-{int(task.partial_components)}")


def _map_leaflet_tasks(framework: TaskFramework, tasks: List) -> List:
    """Dispatch a leaflet map phase, journalling results when a run journal
    is active (attached by :func:`run_leaflet_finder` /
    :func:`run_leaflet_stream` for the duration of the run)."""
    journal = getattr(framework, "_active_journal", None)
    if journal is not None:
        return checkpointed_map(framework, _run_task, tasks, journal,
                                leaflet_task_key)
    return framework.map_tasks(_run_task, tasks)


# --------------------------------------------------------------------------- #
# the four approaches
# --------------------------------------------------------------------------- #
def _make_report(approach: str, framework: TaskFramework, positions: np.ndarray,
                 cutoff: float, n_tasks: int, wall: float, phases: Dict[str, float],
                 bytes_broadcast: int, bytes_shuffled: int,
                 n_edges: int | None) -> RunReport:
    metrics = framework.metrics
    metrics.bytes_broadcast = max(metrics.bytes_broadcast, bytes_broadcast)
    metrics.bytes_shuffled += bytes_shuffled
    for label, value in phases.items():
        metrics.record_event(label, value)
    return RunReport(
        algorithm=f"leaflet_finder[{approach}]",
        framework=framework.name,
        parameters={
            "n_atoms": int(positions.shape[0]),
            "cutoff": cutoff,
            "n_tasks": n_tasks,
            "n_edges": n_edges,
            "data_plane": getattr(framework, "data_plane", "pickle"),
            **{f"phase_{k}": v for k, v in phases.items()},
        },
        wall_time_s=wall,
        n_tasks=n_tasks,
        metrics=metrics,
    )


def leaflet_broadcast_1d(positions: np.ndarray, cutoff: float,
                         framework: TaskFramework,
                         n_tasks: int = 16) -> Tuple[LeafletResult, RunReport]:
    """Approach 1: broadcast the full system, 1-D partition the atoms.

    Every task compares its contiguous chunk of atoms against the whole
    (broadcast) system; the edge lists are gathered on the driver which
    runs the connected-components pass.  Scales poorly with system size
    because the broadcast volume is O(n) per node — the limitation the
    paper demonstrates in Figure 8.
    """
    positions = _validate_inputs(positions, cutoff)
    n = positions.shape[0]
    start_all = time.perf_counter()
    bcast_start = time.perf_counter()
    handle = framework.broadcast(positions)
    broadcast_time = time.perf_counter() - bcast_start
    bytes_broadcast = handle.nbytes

    ranges = one_dimensional_partition(n, n_tasks)
    payload = handle.value
    if isinstance(payload, BlockRef):
        # shm plane: chunks are offset sub-refs of the broadcast segment,
        # so neither the chunk nor the full system is copied per task
        tasks = [_ChunkVsAllTask(start, stop, payload.slice_rows(start, stop),
                                 payload, cutoff)
                 for start, stop in ranges]
    else:
        tasks = [_ChunkVsAllTask(start, stop, positions[start:stop], payload, cutoff)
                 for start, stop in ranges]
    map_start = time.perf_counter()
    edge_lists = _map_leaflet_tasks(framework, tasks)
    map_time = time.perf_counter() - map_start

    bytes_shuffled = sum(nbytes_of(e) for e in edge_lists)
    reduce_start = time.perf_counter()
    edges = (np.concatenate([e for e in edge_lists if e.size], axis=0)
             if any(e.size for e in edge_lists) else np.empty((0, 2), dtype=np.int64))
    components = connected_components(edges, n)
    reduce_time = time.perf_counter() - reduce_start
    wall = time.perf_counter() - start_all

    result = LeafletResult(components, n_atoms=n, n_edges=edges.shape[0])
    report = _make_report("broadcast-1d", framework, positions, cutoff, len(tasks),
                          wall, {"broadcast_s": broadcast_time, "map_s": map_time,
                                 "reduce_s": reduce_time},
                          bytes_broadcast, bytes_shuffled, edges.shape[0])
    return result, report


def _position_slicer(positions: np.ndarray, framework: TaskFramework):
    """Row-chunk accessor for the framework's data plane.

    On the pickle plane chunks are array slices that pickle into every
    task payload; on the shm plane the whole system enters the store once
    and chunks are offset sub-refs (zero bytes copied or pickled).
    """
    if getattr(framework, "data_plane", "pickle") == "shm":
        store: SharedMemoryStore | None = getattr(framework, "store", None)
        if store is not None:
            ref = store.put(positions)
            return ref.slice_rows
    return lambda start, stop: positions[start:stop]


def _make_block_tasks(positions: np.ndarray, cutoff: float, n_tasks: int,
                      partial_components: bool,
                      framework: TaskFramework | None = None) -> List[_BlockPairTask]:
    n = positions.shape[0]
    chunk = choose_group_size(n, n_tasks)
    blocks = two_dimensional_partition(n, chunk)
    slice_rows = (_position_slicer(positions, framework) if framework is not None
                  else lambda start, stop: positions[start:stop])
    return [
        _BlockPairTask(block=b,
                       rows=slice_rows(b.row_start, b.row_stop),
                       cols=slice_rows(b.col_start, b.col_stop),
                       cutoff=cutoff,
                       partial_components=partial_components)
        for b in blocks
    ]


def leaflet_task_2d(positions: np.ndarray, cutoff: float,
                    framework: TaskFramework,
                    n_tasks: int = 16) -> Tuple[LeafletResult, RunReport]:
    """Approach 2: no broadcast; 2-D pre-partitioned blocks via the task API.

    Each task receives only the two position chunks of its block, computes
    the block's edges with pairwise distances, and the driver gathers the
    edge lists (O(E) shuffle) before running connected components.
    """
    positions = _validate_inputs(positions, cutoff)
    n = positions.shape[0]
    start_all = time.perf_counter()
    tasks = _make_block_tasks(positions, cutoff, n_tasks, partial_components=False,
                              framework=framework)
    map_start = time.perf_counter()
    edge_lists = _map_leaflet_tasks(framework, tasks)
    map_time = time.perf_counter() - map_start
    bytes_shuffled = sum(nbytes_of(e) for e in edge_lists)
    reduce_start = time.perf_counter()
    edges = (np.concatenate([e for e in edge_lists if e.size], axis=0)
             if any(e.size for e in edge_lists) else np.empty((0, 2), dtype=np.int64))
    components = connected_components(edges, n)
    reduce_time = time.perf_counter() - reduce_start
    wall = time.perf_counter() - start_all
    result = LeafletResult(components, n_atoms=n, n_edges=edges.shape[0])
    report = _make_report("task-2d", framework, positions, cutoff, len(tasks), wall,
                          {"map_s": map_time, "reduce_s": reduce_time},
                          0, bytes_shuffled, edges.shape[0])
    return result, report


def leaflet_parallel_cc(positions: np.ndarray, cutoff: float,
                        framework: TaskFramework,
                        n_tasks: int = 16) -> Tuple[LeafletResult, RunReport]:
    """Approach 3: 2-D blocks with partial connected components in the map phase.

    Each task reduces its edges to partial components before returning, so
    the shuffle shrinks from O(E) to O(n); the driver-side reduce joins
    partial components that share an atom.  This is the refinement the
    paper credits with a ~20% runtime improvement and a >50% shuffle-volume
    reduction for Spark and Dask.
    """
    positions = _validate_inputs(positions, cutoff)
    n = positions.shape[0]
    start_all = time.perf_counter()
    tasks = _make_block_tasks(positions, cutoff, n_tasks, partial_components=True,
                              framework=framework)
    map_start = time.perf_counter()
    partials = _map_leaflet_tasks(framework, tasks)
    map_time = time.perf_counter() - map_start
    bytes_shuffled = sum(nbytes_of(p) for p in partials)
    reduce_start = time.perf_counter()
    merged = merge_component_sets(partials)
    components = _with_singletons(merged, n)
    reduce_time = time.perf_counter() - reduce_start
    wall = time.perf_counter() - start_all
    result = LeafletResult(components, n_atoms=n, n_edges=None)
    report = _make_report("parallel-cc", framework, positions, cutoff, len(tasks),
                          wall, {"map_s": map_time, "reduce_s": reduce_time},
                          0, bytes_shuffled, None)
    return result, report


def leaflet_tree_search(positions: np.ndarray, cutoff: float,
                        framework: TaskFramework,
                        n_tasks: int = 16,
                        method: str = "balltree") -> Tuple[LeafletResult, RunReport]:
    """Approach 4: tree-based edge discovery plus parallel connected components.

    Identical to approach 3 except that each task replaces the pairwise
    ``cdist`` with a BallTree (or uniform-grid) fixed-radius query, cutting
    the per-block complexity from O(b^2) to O(b log b) and the memory
    footprint from a dense distance block to the neighbor lists — which is
    what let the paper scale to the 4M-atom system without increasing the
    task count.
    """
    positions = _validate_inputs(positions, cutoff)
    n = positions.shape[0]
    start_all = time.perf_counter()
    chunk = choose_group_size(n, n_tasks)
    blocks = two_dimensional_partition(n, chunk)
    slice_rows = _position_slicer(positions, framework)
    tasks = [
        _TreeBlockTask(block=b,
                       rows=slice_rows(b.row_start, b.row_stop),
                       cols=slice_rows(b.col_start, b.col_stop),
                       cutoff=cutoff, method=method)
        for b in blocks
    ]
    map_start = time.perf_counter()
    partials = _map_leaflet_tasks(framework, tasks)
    map_time = time.perf_counter() - map_start
    bytes_shuffled = sum(nbytes_of(p) for p in partials)
    reduce_start = time.perf_counter()
    merged = merge_component_sets(partials)
    components = _with_singletons(merged, n)
    reduce_time = time.perf_counter() - reduce_start
    wall = time.perf_counter() - start_all
    result = LeafletResult(components, n_atoms=n, n_edges=None)
    report = _make_report("tree-search", framework, positions, cutoff, len(tasks),
                          wall, {"map_s": map_time, "reduce_s": reduce_time},
                          0, bytes_shuffled, None)
    return result, report


def _with_singletons(components: List[np.ndarray], n_atoms: int) -> List[np.ndarray]:
    """Append single-atom components for atoms not covered by any component."""
    covered = np.zeros(n_atoms, dtype=bool)
    for comp in components:
        covered[comp] = True
    singles = [np.array([i], dtype=np.int64) for i in np.flatnonzero(~covered)]
    return list(components) + singles


#: approach name -> implementation
LEAFLET_APPROACHES: Dict[str, Callable] = {
    "broadcast-1d": leaflet_broadcast_1d,
    "task-2d": leaflet_task_2d,
    "parallel-cc": leaflet_parallel_cc,
    "tree-search": leaflet_tree_search,
}


def run_leaflet_finder(positions: np.ndarray, cutoff: float,
                       framework: TaskFramework, *,
                       approach: str = "tree-search",
                       n_tasks: int = 16,
                       data_plane: str | None = None,
                       checkpoint_dir: str | None = None,
                       **kwargs) -> Tuple[LeafletResult, RunReport]:
    """Run the Leaflet Finder with the named architectural approach.

    ``data_plane`` defaults to the framework's configured plane; passing
    ``"pickle"`` or ``"shm"`` temporarily overrides it for this run (an
    shm override on a pickle-configured framework attaches an ephemeral
    store for the duration).

    ``checkpoint_dir`` enables checkpoint/restart: every map-phase block
    result (edge list or partial-component set) is journalled as it
    completes, and a re-run with the same positions, parameters, plane,
    substrate and kernel engine replays finished blocks
    (``tasks_restored`` in the report) and computes only the missing
    ones.  A journal written under different inputs raises
    :class:`~repro.frameworks.checkpoint.StaleJournal`.
    """
    if approach not in LEAFLET_APPROACHES:
        raise ValueError(
            f"unknown approach {approach!r}; choose from {sorted(LEAFLET_APPROACHES)}"
        )
    if data_plane is not None and data_plane not in DATA_PLANES:
        raise ValueError(f"unknown data_plane {data_plane!r}; choose from {DATA_PLANES}")
    impl = LEAFLET_APPROACHES[approach]
    configured_plane = getattr(framework, "data_plane", None)
    override = (data_plane is not None and configured_plane is not None
                and configured_plane != data_plane)
    plane = data_plane if data_plane is not None else (configured_plane or "pickle")
    ephemeral_store = None
    journal = None
    if checkpoint_dir is not None:
        fingerprint = run_fingerprint(
            arrays=[np.asarray(positions, dtype=np.float64)],
            algorithm="leaflet_finder", approach=approach, cutoff=float(cutoff),
            n_tasks=n_tasks, data_plane=plane, substrate=framework.name,
            kernel_method=get_kernel_method(),
            extras=tuple(sorted((k, repr(v)) for k, v in kwargs.items())))
        journal = RunJournal(checkpoint_dir, fingerprint).open()
    try:
        if override:
            framework.data_plane = data_plane
            if data_plane == "shm" and getattr(framework, "store", None) is None:
                ephemeral_store = SharedMemoryStore()
                framework.store = ephemeral_store
        if journal is not None:
            framework._active_journal = journal
        return impl(positions, cutoff, framework, n_tasks=n_tasks, **kwargs)
    finally:
        if journal is not None:
            framework._active_journal = None
        if override:
            framework.data_plane = configured_plane
            if ephemeral_store is not None:
                framework.store = None
                ephemeral_store.cleanup()


def run_leaflet_stream(chunked, cutoff: float, framework: TaskFramework, *,
                       data_plane: str | None = None,
                       checkpoint_dir: str | None = None) -> Tuple[LeafletResult, RunReport]:
    """Streamed Leaflet Finder over a chunk-file-backed system.

    The incremental counterpart of :func:`leaflet_parallel_cc` for
    systems that arrive as atom-row chunks
    (:class:`~repro.trajectory.streaming.ChunkedPositions`): when chunk
    ``w`` arrives, one wave of :class:`_BlockPairTask` work compares it
    against itself and every earlier chunk, and the wave's partial
    components are folded into the running component state with
    :func:`~repro.analysis.graph.merge_component_sets` — component
    merging is order independent, so the final leaflets are identical to
    a batch run over the materialized system.  On the shm plane chunks
    ingest into the framework's store
    (:meth:`~repro.frameworks.shm.SharedMemoryStore.ingest`) and tasks
    carry zero-copy refs; cold chunks spill between waves, so the
    resident footprint is bounded by the store watermark, not the system
    size.

    Parameters
    ----------
    chunked : ChunkedPositions
        The chunk-file-backed ``(n_atoms, 3)`` system.
    cutoff : float
        Neighbor cutoff in Angstrom.
    framework : TaskFramework
        Substrate to run on.
    data_plane : str, optional
        Override the framework's plane for this run (as in
        :func:`run_leaflet_finder`).
    checkpoint_dir : str, optional
        Journal directory for checkpoint/restart: each wave's block
        results are journalled as they complete and a resumed run
        replays them, as in :func:`run_leaflet_finder`.

    Returns
    -------
    (LeafletResult, RunReport)
        The leaflet components and a report whose metrics accumulate
        over all waves (``bytes_ingested`` / ``peak_resident_bytes``
        record the out-of-core behaviour).
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if data_plane is not None and data_plane not in DATA_PLANES:
        raise ValueError(f"unknown data_plane {data_plane!r}; choose from {DATA_PLANES}")
    n = chunked.n_atoms
    n_chunks = chunked.n_chunks
    configured_plane = getattr(framework, "data_plane", None)
    plane = data_plane if data_plane is not None else (configured_plane or "pickle")
    override = configured_plane is not None and configured_plane != plane
    store = None
    owns_store = False
    if plane == "shm":
        store = getattr(framework, "store", None)
        if store is None:
            store = SharedMemoryStore()
            owns_store = True

    def payload(index: int):
        if store is not None:
            return chunked.ingest_chunk(store, index)
        return chunked.load_chunk(index)

    journal = None
    if checkpoint_dir is not None:
        fingerprint = run_fingerprint(
            algorithm="leaflet_stream", cutoff=float(cutoff),
            path=os.path.abspath(getattr(chunked, "path", "")),
            n_atoms=n, n_chunks=n_chunks, data_plane=plane,
            substrate=framework.name, kernel_method=get_kernel_method())
        journal = RunJournal(checkpoint_dir, fingerprint).open()

    state: List[np.ndarray] = []
    totals = None
    start_all = time.perf_counter()
    map_time = 0.0
    reduce_time = 0.0
    waves = 0
    try:
        if override:
            framework.data_plane = plane
            if owns_store:
                framework.store = store
        if journal is not None:
            framework._active_journal = journal
        for w in range(n_chunks):
            w_start, w_stop = chunked.chunk_range(w)
            pay_w = payload(w)
            tasks = [_BlockPairTask(block=BlockTask(w_start, w_stop, w_start, w_stop),
                                    rows=pay_w, cols=pay_w, cutoff=cutoff,
                                    partial_components=True)]
            for v in range(w):
                v_start, v_stop = chunked.chunk_range(v)
                tasks.append(_BlockPairTask(
                    block=BlockTask(v_start, v_stop, w_start, w_stop),
                    rows=payload(v), cols=pay_w, cutoff=cutoff,
                    partial_components=True))
            map_start = time.perf_counter()
            partials = _map_leaflet_tasks(framework, tasks)
            map_time += time.perf_counter() - map_start
            reduce_start = time.perf_counter()
            state = merge_component_sets([state, *partials])
            reduce_time += time.perf_counter() - reduce_start
            totals = framework.metrics if totals is None else totals.merge(framework.metrics)
            waves += 1
        components = _with_singletons(state, n)
    finally:
        if journal is not None:
            framework._active_journal = None
        if override:
            framework.data_plane = configured_plane
            if owns_store:
                framework.store = None
        if owns_store:
            store.cleanup()
    wall = time.perf_counter() - start_all
    result = LeafletResult(components, n_atoms=n, n_edges=None)
    metrics = totals if totals is not None else framework.metrics
    metrics.record_event("map_s", map_time)
    metrics.record_event("reduce_s", reduce_time)
    report = RunReport(
        algorithm="leaflet_stream[parallel-cc]",
        framework=framework.name,
        parameters={
            "n_atoms": n,
            "cutoff": cutoff,
            "n_chunks": n_chunks,
            "n_waves": waves,
            "data_plane": plane,
            "phase_map_s": map_time,
            "phase_reduce_s": reduce_time,
        },
        wall_time_s=wall,
        n_tasks=metrics.tasks_submitted,
        metrics=metrics,
    )
    return result, report


class LeafletFinder:
    """Object-oriented wrapper mirroring MDAnalysis' ``LeafletFinder``.

    Parameters
    ----------
    universe_or_positions:
        Either a :class:`~repro.trajectory.universe.Universe` plus a
        selection string, or a raw ``(n_atoms, 3)`` position array.
    selection:
        Selection string applied when a universe is given (default:
        ``"name P"``, the phosphorus head groups).
    cutoff:
        Neighbor cutoff in Angstrom (the paper and MDAnalysis default to 15).
    """

    def __init__(self, universe_or_positions, selection: str = "name P",
                 cutoff: float = 15.0) -> None:
        from ..trajectory.universe import Universe

        if isinstance(universe_or_positions, Universe):
            group = universe_or_positions.select_atoms(selection)
            if group.n_atoms == 0:
                raise ValueError(f"selection {selection!r} matched no atoms")
            self.positions = group.positions
            self.atom_indices = group.indices
        else:
            self.positions = _validate_inputs(universe_or_positions, cutoff)
            self.atom_indices = np.arange(self.positions.shape[0], dtype=np.int64)
        self.cutoff = float(cutoff)
        self.last_report: RunReport | None = None

    def run_serial(self, method: str = "balltree") -> LeafletResult:
        """Serial reference run."""
        return leaflet_serial(self.positions, self.cutoff, method=method)

    def run(self, framework: TaskFramework, approach: str = "tree-search",
            n_tasks: int = 16, **kwargs) -> LeafletResult:
        """Task-parallel run; the :class:`RunReport` lands in ``last_report``."""
        result, report = run_leaflet_finder(self.positions, self.cutoff, framework,
                                            approach=approach, n_tasks=n_tasks, **kwargs)
        self.last_report = report
        return result
