"""Work partitioning (Algorithm 2 of the paper and the Leaflet Finder layouts).

PSA produces an ``N x N`` distance matrix over ``N`` trajectories; naively
every entry is a task.  Algorithm 2 groups ``n1 x n1`` entries into a
single task, giving ``k^2`` tasks with ``k = N / n1`` — the
"two-dimensional partitioning" the paper applies to PSA.  Because the
Hausdorff distance is symmetric we only generate tasks for the upper
triangle (including the diagonal blocks) and mirror the result.

The Leaflet Finder uses two layouts over the atoms of a single frame:

* **1-D partitioning** (approach 1): every task owns a contiguous chunk of
  atoms and compares it against *all* atoms (which therefore must be
  broadcast),
* **2-D partitioning** (approaches 2-4): every task owns a pair of chunks
  (an upper-triangular block of the atom x atom matrix) and only needs
  those two chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "BlockTask",
    "chunk_ranges",
    "one_dimensional_partition",
    "two_dimensional_partition",
    "pair_blocks",
    "tasks_for_group_size",
    "choose_group_size",
]


@dataclass(frozen=True)
class BlockTask:
    """One task of a 2-D decomposition: compare items [row block] x [col block].

    ``row_start/row_stop`` and ``col_start/col_stop`` are half-open index
    ranges into the item list (trajectories for PSA, atoms for the Leaflet
    Finder).  ``diagonal`` marks blocks on the matrix diagonal, where only
    the upper triangle of the block needs computing.
    """

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def diagonal(self) -> bool:
        """True when the block lies on the diagonal of the pair matrix."""
        return self.row_start == self.col_start and self.row_stop == self.col_stop

    @property
    def n_pairs(self) -> int:
        """Number of item pairs this task compares (symmetric pairs counted once)."""
        rows = self.row_stop - self.row_start
        cols = self.col_stop - self.col_start
        if self.diagonal:
            return rows * (rows + 1) // 2
        return rows * cols

    @property
    def row_indices(self) -> np.ndarray:
        """Row item indices covered by this block."""
        return np.arange(self.row_start, self.row_stop, dtype=np.int64)

    @property
    def col_indices(self) -> np.ndarray:
        """Column item indices covered by this block."""
        return np.arange(self.col_start, self.col_stop, dtype=np.int64)


def chunk_ranges(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous half-open ranges of ``chunk_size``."""
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(start, min(start + chunk_size, n_items))
            for start in range(0, n_items, chunk_size)]


def one_dimensional_partition(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``n_items`` into ``n_chunks`` nearly equal contiguous ranges.

    Ranges are half-open; chunks never overlap and cover all items.  Extra
    items go to the first ``n_items % n_chunks`` chunks.  Empty chunks are
    dropped when there are more chunks than items.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    base, extra = divmod(n_items, n_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        ranges.append((start, start + size))
        start += size
    return ranges


def two_dimensional_partition(n_items: int, chunk_size: int,
                              upper_triangle: bool = True) -> List[BlockTask]:
    """Algorithm 2: group the ``n_items x n_items`` pair matrix into blocks.

    Parameters
    ----------
    n_items:
        Number of items being compared all-to-all.
    chunk_size:
        ``n1`` in the paper — each task owns an ``n1 x n1`` block.
    upper_triangle:
        Only generate blocks with ``col_start >= row_start`` (the distance
        is symmetric, so the lower triangle is redundant).  Set to False to
        generate the full matrix (used by the throughput-oriented ablation).
    """
    chunks = chunk_ranges(n_items, chunk_size)
    tasks: List[BlockTask] = []
    for i, (r0, r1) in enumerate(chunks):
        for j, (c0, c1) in enumerate(chunks):
            if upper_triangle and j < i:
                continue
            tasks.append(BlockTask(r0, r1, c0, c1))
    return tasks


def pair_blocks(n_items: int, n_groups: int) -> List[BlockTask]:
    """Partition the pair matrix into roughly ``n_groups^2 / 2`` block tasks.

    Convenience wrapper over :func:`two_dimensional_partition` that chooses
    the chunk size from a desired number of groups per dimension (``k`` in
    Algorithm 2).
    """
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    chunk_size = max(1, -(-n_items // n_groups))  # ceil division
    return two_dimensional_partition(n_items, chunk_size)


def tasks_for_group_size(n_items: int, chunk_size: int) -> int:
    """Number of upper-triangular block tasks produced by Algorithm 2."""
    k = len(chunk_ranges(n_items, chunk_size))
    return k * (k + 1) // 2


def choose_group_size(n_items: int, target_tasks: int) -> int:
    """Choose ``n1`` so the decomposition yields roughly ``target_tasks`` tasks.

    The paper sizes its decompositions by task count (e.g. 1024 partitions
    for the Leaflet Finder, one task per core for PSA); this inverts
    Algorithm 2's task-count formula ``k (k + 1) / 2`` with ``k = ceil(N / n1)``.
    """
    if n_items < 1:
        raise ValueError("n_items must be >= 1")
    if target_tasks < 1:
        raise ValueError("target_tasks must be >= 1")
    # solve k (k + 1) / 2 ~= target_tasks for k
    k = max(1, int((np.sqrt(8.0 * target_tasks + 1.0) - 1.0) / 2.0))
    k = min(k, n_items)
    return max(1, -(-n_items // k))  # ceil division
