"""Application characterization and the framework decision framework.

Section 2 of the paper characterizes the two analysis applications with
the Big Data Ogres classification (views and facets); section 3.4 and
Table 1 compare the frameworks' abstractions; Table 2 lists the MapReduce
operations of each Leaflet Finder approach; section 4.4 and Table 3 give a
qualitative decision framework ranking the frameworks against criteria.

This module encodes all of that as data plus small rendering helpers, so
``python -m repro.experiments.tables`` regenerates the paper's three
tables and the qualitative content is testable (e.g. the recommendation
logic of :func:`recommend_framework`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

__all__ = [
    "OgreClassification",
    "PSA_OGRES",
    "LEAFLET_OGRES",
    "FRAMEWORK_COMPARISON",
    "LEAFLET_MAPREDUCE_OPERATIONS",
    "DECISION_FRAMEWORK",
    "Support",
    "render_table",
    "framework_comparison_table",
    "leaflet_operations_table",
    "decision_framework_table",
    "recommend_framework",
]


# --------------------------------------------------------------------------- #
# Big Data Ogres (section 2)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class OgreClassification:
    """Ogre facets of one application, organized by the four views."""

    name: str
    execution: Sequence[str]
    data_source_style: Sequence[str]
    processing: Sequence[str]
    problem_architecture: Sequence[str]

    def all_facets(self) -> Dict[str, Sequence[str]]:
        """View name -> facets mapping."""
        return {
            "execution": self.execution,
            "data source & style": self.data_source_style,
            "processing": self.processing,
            "problem architecture": self.problem_architecture,
        }


PSA_OGRES = OgreClassification(
    name="Path Similarity Analysis (Hausdorff)",
    execution=(
        "HPC nodes",
        "Python arithmetic libraries (NumPy)",
        "medium-to-large input volume, small output",
        "single pass (non-iterative)",
    ),
    data_source_style=(
        "input produced by HPC simulations",
        "stored on parallel filesystems (e.g. Lustre)",
    ),
    processing=("linear algebra kernels", "O(n^2) pairwise comparison"),
    problem_architecture=("embarrassingly parallel", "map-only / bag of tasks"),
)

LEAFLET_OGRES = OgreClassification(
    name="Leaflet Finder",
    execution=(
        "HPC nodes",
        "NumPy arrays for the physical system and distance matrix",
        "medium input volume, output smaller than input",
    ),
    data_source_style=(
        "input produced by HPC simulations",
        "stored on parallel filesystems (e.g. Lustre)",
    ),
    processing=(
        "linear algebra kernels (pairwise distances)",
        "graph algorithms (connected components)",
        "edge discovery O(n^2) or O(n log n) with trees",
        "connected components O(|V| + |E|)",
    ),
    problem_architecture=("MapReduce", "two stages: edge discovery + components"),
)


# --------------------------------------------------------------------------- #
# Table 1: framework comparison
# --------------------------------------------------------------------------- #
FRAMEWORK_COMPARISON: Dict[str, Dict[str, str]] = {
    "RADICAL-Pilot": {
        "languages": "Python",
        "task_abstraction": "Task (Compute Unit)",
        "functional_abstraction": "-",
        "higher_level_abstractions": "EnTK",
        "resource_management": "Pilot-Job",
        "scheduler": "Individual tasks",
        "shuffle": "-",
        "limitations": "no shuffle, filesystem-based communication",
    },
    "Spark": {
        "languages": "Java, Scala, Python, R",
        "task_abstraction": "Map-Task",
        "functional_abstraction": "RDD API",
        "higher_level_abstractions": "Dataframe, ML Pipeline, MLlib",
        "resource_management": "Spark execution engines",
        "scheduler": "Stage-oriented DAG",
        "shuffle": "hash/sort-based shuffle",
        "limitations": "high overheads for Python tasks (serialization)",
    },
    "Dask": {
        "languages": "Python",
        "task_abstraction": "Delayed",
        "functional_abstraction": "Bag",
        "higher_level_abstractions": "Dataframe, Arrays for block computations",
        "resource_management": "Dask distributed scheduler",
        "scheduler": "DAG",
        "shuffle": "hash/sort-based shuffle",
        "limitations": "Dask Array cannot deal with dynamic output shapes",
    },
}


# --------------------------------------------------------------------------- #
# Table 2: MapReduce operations per Leaflet Finder approach
# --------------------------------------------------------------------------- #
LEAFLET_MAPREDUCE_OPERATIONS: Dict[str, Dict[str, str]] = {
    "broadcast-1d": {
        "data_partitioning": "1D",
        "map": "edge discovery via pairwise distance",
        "shuffle": "edge list (O(E))",
        "reduce": "connected components",
    },
    "task-2d": {
        "data_partitioning": "2D",
        "map": "edge discovery via pairwise distance",
        "shuffle": "edge list (O(E))",
        "reduce": "connected components",
    },
    "parallel-cc": {
        "data_partitioning": "2D",
        "map": "edge discovery via pairwise distance and partial connected components",
        "shuffle": "partial connected components (O(n))",
        "reduce": "joined connected components",
    },
    "tree-search": {
        "data_partitioning": "2D",
        "map": "edge discovery via tree-based algorithm and partial connected components",
        "shuffle": "partial connected components (O(n))",
        "reduce": "joined connected components",
    },
}


# --------------------------------------------------------------------------- #
# Table 3: decision framework
# --------------------------------------------------------------------------- #
class Support:
    """Qualitative support levels used by Table 3."""

    UNSUPPORTED = "-"    # unsupported or low performance
    MINOR = "o"          # minor support
    SUPPORTED = "+"      # supported
    MAJOR = "++"         # major support

    ORDER = {UNSUPPORTED: 0, MINOR: 1, SUPPORTED: 2, MAJOR: 3}

    @classmethod
    def score(cls, level: str) -> int:
        """Numeric score of a support level (higher is better)."""
        if level not in cls.ORDER:
            raise ValueError(f"unknown support level {level!r}")
        return cls.ORDER[level]


#: criterion -> {framework: support level}, exactly Table 3 of the paper.
DECISION_FRAMEWORK: Dict[str, Dict[str, str]] = {
    # task management
    "low_latency": {"RADICAL-Pilot": "-", "Spark": "o", "Dask": "+"},
    "throughput": {"RADICAL-Pilot": "-", "Spark": "+", "Dask": "++"},
    "mpi_hpc_tasks": {"RADICAL-Pilot": "+", "Spark": "o", "Dask": "o"},
    "task_api": {"RADICAL-Pilot": "+", "Spark": "o", "Dask": "++"},
    "large_number_of_tasks": {"RADICAL-Pilot": "-", "Spark": "++", "Dask": "++"},
    # application characteristics
    "python_native_code": {"RADICAL-Pilot": "++", "Spark": "o", "Dask": "+"},
    "java": {"RADICAL-Pilot": "o", "Spark": "++", "Dask": "o"},
    "higher_level_abstraction": {"RADICAL-Pilot": "-", "Spark": "++", "Dask": "+"},
    "shuffle": {"RADICAL-Pilot": "-", "Spark": "++", "Dask": "+"},
    "broadcast": {"RADICAL-Pilot": "-", "Spark": "++", "Dask": "+"},
    "caching": {"RADICAL-Pilot": "-", "Spark": "++", "Dask": "o"},
}

#: criteria that belong to the "Task Management" block of Table 3
TASK_MANAGEMENT_CRITERIA = (
    "low_latency", "throughput", "mpi_hpc_tasks", "task_api", "large_number_of_tasks",
)
#: criteria that belong to the "Application Characteristics" block
APPLICATION_CRITERIA = (
    "python_native_code", "java", "higher_level_abstraction", "shuffle",
    "broadcast", "caching",
)


def recommend_framework(requirements: Mapping[str, float]) -> List[tuple]:
    """Rank the frameworks against weighted requirements.

    ``requirements`` maps criterion names (keys of
    :data:`DECISION_FRAMEWORK`) to non-negative weights.  Returns
    ``(framework, score)`` pairs sorted best-first, where the score is the
    weight-averaged support level (0-3).  This operationalizes the paper's
    "conceptual framework that allows application developers to carefully
    select a framework according to their requirements".
    """
    if not requirements:
        raise ValueError("requirements must not be empty")
    unknown = [k for k in requirements if k not in DECISION_FRAMEWORK]
    if unknown:
        raise ValueError(f"unknown criteria: {unknown}; valid: {sorted(DECISION_FRAMEWORK)}")
    if any(w < 0 for w in requirements.values()):
        raise ValueError("weights must be non-negative")
    total_weight = sum(requirements.values())
    if total_weight == 0:
        raise ValueError("at least one weight must be positive")
    frameworks = sorted({fw for row in DECISION_FRAMEWORK.values() for fw in row})
    scores = []
    for fw in frameworks:
        score = sum(
            weight * Support.score(DECISION_FRAMEWORK[criterion][fw])
            for criterion, weight in requirements.items()
        ) / total_weight
        scores.append((fw, score))
    scores.sort(key=lambda pair: (-pair[1], pair[0]))
    return scores


# --------------------------------------------------------------------------- #
# rendering helpers
# --------------------------------------------------------------------------- #
def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a plain-text table with aligned columns."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
    sep = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def framework_comparison_table() -> str:
    """Regenerate Table 1 as text."""
    attributes = ["languages", "task_abstraction", "functional_abstraction",
                  "higher_level_abstractions", "resource_management", "scheduler",
                  "shuffle", "limitations"]
    headers = ["attribute"] + list(FRAMEWORK_COMPARISON)
    rows = [[attr] + [FRAMEWORK_COMPARISON[fw][attr] for fw in FRAMEWORK_COMPARISON]
            for attr in attributes]
    return render_table(headers, rows)


def leaflet_operations_table() -> str:
    """Regenerate Table 2 as text."""
    attributes = ["data_partitioning", "map", "shuffle", "reduce"]
    headers = ["operation"] + list(LEAFLET_MAPREDUCE_OPERATIONS)
    rows = [[attr] + [LEAFLET_MAPREDUCE_OPERATIONS[a][attr]
                      for a in LEAFLET_MAPREDUCE_OPERATIONS]
            for attr in attributes]
    return render_table(headers, rows)


def decision_framework_table() -> str:
    """Regenerate Table 3 as text."""
    frameworks = ["RADICAL-Pilot", "Spark", "Dask"]
    headers = ["criterion"] + frameworks
    rows: List[List[str]] = [["-- task management --", "", "", ""]]
    for criterion in TASK_MANAGEMENT_CRITERIA:
        rows.append([criterion] + [DECISION_FRAMEWORK[criterion][fw] for fw in frameworks])
    rows.append(["-- application characteristics --", "", "", ""])
    for criterion in APPLICATION_CRITERIA:
        rows.append([criterion] + [DECISION_FRAMEWORK[criterion][fw] for fw in frameworks])
    return render_table(headers, rows)
