"""Result containers returned by the core algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from ..frameworks.base import RunMetrics

__all__ = ["DistanceMatrix", "LeafletResult", "RunReport"]


@dataclass
class RunReport:
    """How a run went: framework, parameters, timings and data volumes."""

    algorithm: str
    framework: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    n_tasks: int = 0
    metrics: RunMetrics = field(default_factory=RunMetrics)

    def as_dict(self) -> dict:
        """Flat dict for tabular reports."""
        out = {
            "algorithm": self.algorithm,
            "framework": self.framework,
            "wall_time_s": self.wall_time_s,
            "n_tasks": self.n_tasks,
        }
        out.update({f"param_{k}": v for k, v in self.parameters.items()})
        out.update(self.metrics.as_dict())
        return out


class DistanceMatrix:
    """A symmetric trajectory-to-trajectory distance matrix (PSA output).

    Parameters
    ----------
    values:
        ``(n, n)`` symmetric array of distances.
    labels:
        Names of the ``n`` trajectories, in matrix order.
    """

    def __init__(self, values: np.ndarray, labels: Sequence[str] | None = None) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise ValueError("distance matrix must be square")
        self.values = values
        self.labels = list(labels) if labels is not None else [str(i) for i in range(values.shape[0])]
        if len(self.labels) != values.shape[0]:
            raise ValueError("label count does not match matrix size")

    @property
    def n(self) -> int:
        """Number of trajectories."""
        return self.values.shape[0]

    def __getitem__(self, key) -> float:
        return self.values[key]

    def is_symmetric(self, tol: float = 1e-9) -> bool:
        """Whether the matrix is symmetric within ``tol``."""
        return bool(np.allclose(self.values, self.values.T, atol=tol))

    def condensed(self) -> np.ndarray:
        """Upper-triangular (condensed) form, scipy-style ordering."""
        iu = np.triu_indices(self.n, k=1)
        return self.values[iu]

    def nearest_neighbors(self) -> List[int]:
        """Index of each trajectory's closest other trajectory."""
        masked = self.values.copy()
        np.fill_diagonal(masked, np.inf)
        return [int(i) for i in masked.argmin(axis=1)]

    def cluster_by_threshold(self, threshold: float) -> List[np.ndarray]:
        """Single-linkage clustering: connected components of ``d <= threshold``.

        PSA's end goal is to "cluster the trajectories based on their
        distance matrix"; thresholded single linkage is the simplest such
        clustering and is what the examples and tests use to check that
        the synthetic path families are recovered.
        """
        from ..analysis.graph import connected_components

        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        close = np.argwhere((self.values <= threshold) & ~np.eye(self.n, dtype=bool))
        edges = close[close[:, 0] < close[:, 1]]
        return connected_components(edges, self.n)

    def as_dict(self) -> dict:
        """Serializable representation."""
        return {"labels": self.labels, "values": self.values.tolist()}


class LeafletResult:
    """Leaflet Finder output: the connected components of the neighbor graph.

    Components are sorted by decreasing size; for a well-formed bilayer the
    two largest are the outer and inner leaflets.
    """

    def __init__(self, components: Sequence[np.ndarray], n_atoms: int,
                 n_edges: int | None = None) -> None:
        self.components = [np.asarray(c, dtype=np.int64) for c in components]
        self.n_atoms = int(n_atoms)
        self.n_edges = None if n_edges is None else int(n_edges)

    @property
    def n_components(self) -> int:
        """Number of connected components (including singletons if present)."""
        return len(self.components)

    @property
    def sizes(self) -> List[int]:
        """Component sizes in decreasing order."""
        return sorted((len(c) for c in self.components), reverse=True)

    @property
    def leaflet0(self) -> np.ndarray:
        """Atom indices of the largest component (one leaflet)."""
        if not self.components:
            raise ValueError("no components found")
        return max(self.components, key=len)

    @property
    def leaflet1(self) -> np.ndarray:
        """Atom indices of the second largest component (the other leaflet)."""
        if len(self.components) < 2:
            raise ValueError("fewer than two components found")
        ordered = sorted(self.components, key=len, reverse=True)
        return ordered[1]

    def labels(self) -> np.ndarray:
        """Per-atom component labels (-1 for atoms in no component)."""
        from ..analysis.graph import components_to_labels

        return components_to_labels(self.components, self.n_atoms)

    def agreement_with(self, true_labels: np.ndarray) -> float:
        """Fraction of atoms whose 2-way leaflet assignment matches ``true_labels``.

        Handles label permutation (component 0 may be either leaflet).
        Only meaningful for systems with exactly two ground-truth groups.
        """
        true_labels = np.asarray(true_labels)
        if true_labels.shape[0] != self.n_atoms:
            raise ValueError("true_labels length must equal n_atoms")
        ours = self.labels()
        best = 0.0
        for mapping in ((0, 1), (1, 0)):
            mapped = np.where(ours == 0, mapping[0], np.where(ours == 1, mapping[1], -1))
            best = max(best, float((mapped == true_labels).mean()))
        return best

    def as_dict(self) -> dict:
        """Serializable summary (component sizes, not full membership)."""
        return {
            "n_atoms": self.n_atoms,
            "n_edges": self.n_edges,
            "n_components": self.n_components,
            "sizes": self.sizes[:10],
        }
