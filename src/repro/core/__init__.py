"""Core library: the paper's contribution.

Task-parallel PSA (Hausdorff) and the four Leaflet Finder architectural
approaches, the 1-D/2-D partitioning schemes, result containers, the Big
Data Ogres characterization and the framework decision framework.
"""

from .api import (
    compare_frameworks,
    compare_leaflet_approaches,
    leaflet_finder,
    psa,
    stream_windows,
)
from .characterization import (
    DECISION_FRAMEWORK,
    FRAMEWORK_COMPARISON,
    LEAFLET_MAPREDUCE_OPERATIONS,
    LEAFLET_OGRES,
    PSA_OGRES,
    OgreClassification,
    Support,
    decision_framework_table,
    framework_comparison_table,
    leaflet_operations_table,
    recommend_framework,
    render_table,
)
from .leaflet import (
    LEAFLET_APPROACHES,
    LeafletFinder,
    leaflet_broadcast_1d,
    leaflet_parallel_cc,
    leaflet_serial,
    leaflet_task_2d,
    leaflet_tree_search,
    run_leaflet_finder,
    run_leaflet_stream,
)
from .partitioning import (
    BlockTask,
    choose_group_size,
    chunk_ranges,
    one_dimensional_partition,
    pair_blocks,
    tasks_for_group_size,
    two_dimensional_partition,
)
from .psa import (
    PSA_METRICS,
    PSABlockTask,
    PSAWindowTask,
    execute_psa_block,
    execute_psa_window,
    make_psa_tasks,
    psa_serial,
    run_psa,
    run_psa_windows,
)
from .results import DistanceMatrix, LeafletResult, RunReport

__all__ = [
    "psa",
    "stream_windows",
    "leaflet_finder",
    "compare_frameworks",
    "compare_leaflet_approaches",
    "run_psa",
    "run_psa_windows",
    "psa_serial",
    "make_psa_tasks",
    "execute_psa_block",
    "PSABlockTask",
    "PSAWindowTask",
    "execute_psa_window",
    "PSA_METRICS",
    "run_leaflet_finder",
    "run_leaflet_stream",
    "leaflet_serial",
    "leaflet_broadcast_1d",
    "leaflet_task_2d",
    "leaflet_parallel_cc",
    "leaflet_tree_search",
    "LeafletFinder",
    "LEAFLET_APPROACHES",
    "BlockTask",
    "chunk_ranges",
    "one_dimensional_partition",
    "two_dimensional_partition",
    "pair_blocks",
    "tasks_for_group_size",
    "choose_group_size",
    "DistanceMatrix",
    "LeafletResult",
    "RunReport",
    "OgreClassification",
    "PSA_OGRES",
    "LEAFLET_OGRES",
    "FRAMEWORK_COMPARISON",
    "LEAFLET_MAPREDUCE_OPERATIONS",
    "DECISION_FRAMEWORK",
    "Support",
    "recommend_framework",
    "render_table",
    "framework_comparison_table",
    "leaflet_operations_table",
    "decision_framework_table",
]
