"""High-level convenience API.

These are the functions a downstream user calls first: build a framework
by name, run PSA on an ensemble, run the Leaflet Finder on a membrane,
and compare frameworks/approaches on the same workload.

Every entry point accepts a ``data_plane`` option (``"pickle"`` or
``"shm"``); on the shm plane task payloads *and results* travel as
zero-copy shared-memory refs, and ``store_capacity_bytes`` bounds the
resident shared memory by spilling least-recently-used blocks to disk
— write-behind by default (``spill_async``), so evictions enqueue onto
a background writer instead of stalling the hot path (see
:mod:`repro.frameworks.shm` and ``docs/data_plane.md``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..frameworks import TaskFramework, make_framework
from ..trajectory.trajectory import TrajectoryEnsemble
from ..trajectory.universe import Universe
from .leaflet import LEAFLET_APPROACHES, run_leaflet_finder, run_leaflet_stream
from .psa import run_psa, run_psa_windows
from .results import DistanceMatrix, LeafletResult, RunReport

__all__ = [
    "psa",
    "stream_windows",
    "leaflet_finder",
    "compare_frameworks",
    "compare_leaflet_approaches",
]


def _resolve_framework(framework: str | TaskFramework, **kwargs) -> TaskFramework:
    """Return ``framework`` itself, or build one by name with ``kwargs``."""
    if isinstance(framework, TaskFramework):
        return framework
    return make_framework(framework, **kwargs)


def psa(ensemble: TrajectoryEnsemble, framework: str | TaskFramework = "dasklite",
        *, metric: str = "hausdorff", n_tasks: int | None = None,
        group_size: int | None = None, workers: int | None = None,
        executor: str = "threads",
        data_plane: str | None = None,
        store_capacity_bytes: int | None = None,
        spill_dir: str | None = None,
        spill_async: bool = True,
        spill_queue_depth: int = 4,
        fault_policy=None,
        faults=None,
        window: Tuple[int, int] | None = None,
        checkpoint_dir: str | None = None) -> Tuple[DistanceMatrix, RunReport]:
    """Run Path Similarity Analysis on an ensemble.

    Parameters
    ----------
    ensemble : TrajectoryEnsemble or StreamingEnsemble
        The trajectories to compare all-to-all.  A
        :class:`~repro.trajectory.streaming.StreamingEnsemble` keeps its
        members on disk; on the shm plane its chunks are ingested into
        the store and tasks carry zero-copy window refs.
    framework : str or TaskFramework, optional
        Framework name (``"spark"``, ``"dask"``, ``"pilot"``, ``"mpi"`` or
        their canonical sparklite/dasklite/pilot/mpilite spellings) or an
        already constructed :class:`TaskFramework`.
    metric : str, optional
        ``"hausdorff"`` (default), ``"hausdorff_earlybreak"``
        (blockwise early-break on the vectorized kernel engine),
        ``"hausdorff_earlybreak_reference"`` (the Python reference scan),
        ``"frechet"`` or ``"hausdorff_naive"``.
    n_tasks : int, optional
        Target task count; the 2-D block size is derived from it.
    group_size : int, optional
        Explicit block size (``n1`` of the paper's Algorithm 2);
        mutually exclusive with ``n_tasks``.
    workers : int, optional
        Worker count for the executor.
    executor : str, optional
        Physical executor kind (``"serial"``, ``"threads"``,
        ``"processes"``, ``"shm"``).
    data_plane : str, optional
        ``None`` (default) uses the framework's configured plane
        (``"pickle"`` when constructing by name).  ``"pickle"`` ships
        each task's trajectory blocks whole; ``"shm"`` registers every
        trajectory in shared memory once, tasks carry zero-copy refs,
        and distance blocks return through the same plane (see
        :mod:`repro.frameworks.shm`).  An explicit value overrides an
        already constructed framework's plane for this run.
    store_capacity_bytes : int, optional
        Watermark for the shm store when constructing a framework by
        name: resident segment bytes past it spill to memory-mapped
        files, so ensembles larger than ``/dev/shm`` still complete.
    spill_dir : str, optional
        Directory for the spill tier (private temporary directory when
        omitted).
    spill_async : bool, optional
        ``True`` (default) spills write-behind — evictions enqueue onto
        a spill-writer thread and the put path only stalls on
        backpressure; ``False`` writes spill files synchronously.  The
        report splits the cost into ``spill_wait_seconds`` vs
        ``spill_hidden_seconds``.
    spill_queue_depth : int, optional
        Write-behind queue bound before eviction applies backpressure.
    fault_policy : FaultPolicy, optional
        Resilience policy when constructing a framework by name: failed
        tasks are retried deterministically, dead pool workers are
        replaced and their in-flight tasks resubmitted, and lost data
        blocks are healed or re-computed; the report's ``tasks_retried``
        / ``tasks_lost`` / ``recovery_seconds`` metrics quantify the
        overhead (see :mod:`repro.frameworks.faults`).
    faults : FaultInjector or FaultSpec or sequence, optional
        Deterministic fault injection for chaos runs (testing only).
    window : tuple of (int, int), optional
        Restrict the analysis to frames ``[start, stop)`` of every
        member.  On a streaming ensemble only the chunks the window
        touches are ingested; on an in-memory ensemble the members are
        sliced.
    checkpoint_dir : str, optional
        Journal directory for checkpoint/restart: completed distance
        blocks persist there as they finish and a re-run with the same
        inputs resumes (``tasks_restored`` / ``restore_seconds`` in the
        report), recomputing only missing blocks.  A journal written
        under different inputs raises
        :class:`~repro.frameworks.checkpoint.StaleJournal`.

    Returns
    -------
    matrix : DistanceMatrix
        The symmetric trajectory-to-trajectory distance matrix.
    report : RunReport
        Timings, task counts and data-plane byte accounting.
    """
    created = isinstance(framework, str)
    fw = _resolve_framework(framework, executor=executor, workers=workers,
                            data_plane=data_plane or "pickle",
                            store_capacity_bytes=store_capacity_bytes,
                            spill_dir=spill_dir, spill_async=spill_async,
                            spill_queue_depth=spill_queue_depth,
                            fault_policy=fault_policy, faults=faults) \
        if created else framework
    try:
        return run_psa(ensemble, fw, metric=metric, n_tasks=n_tasks,
                       group_size=group_size, data_plane=data_plane,
                       window=window, checkpoint_dir=checkpoint_dir)
    finally:
        # a framework constructed here is closed here: the matrix and
        # report are plain copies, and closing releases the store's
        # shared-memory segments immediately instead of at exit
        if created:
            fw.close()


def stream_windows(source, framework: str | TaskFramework = "dasklite", *,
                   analysis: str = "psa",
                   metric: str = "hausdorff_windowed",
                   window_frames: int | None = None,
                   cutoff: float = 15.0,
                   n_tasks: int | None = None,
                   group_size: int | None = None,
                   workers: int | None = None,
                   executor: str = "threads",
                   data_plane: str | None = None,
                   store_capacity_bytes: int | None = None,
                   spill_dir: str | None = None,
                   spill_async: bool = True,
                   spill_queue_depth: int = 4,
                   fault_policy=None,
                   faults=None,
                   checkpoint_dir: str | None = None) -> Tuple[DistanceMatrix | LeafletResult, RunReport]:
    """Incrementally analyze a streamed input, window by window.

    The out-of-core driver: windows (defaulting to the source's chunk
    boundaries) are analyzed as their chunks arrive and per-window
    results are merged into the final answer — bit-identically to the
    corresponding batch run, while ``peak_resident_bytes`` stays bounded
    by the store watermark instead of the input size.

    Parameters
    ----------
    source : StreamingEnsemble or ChunkedPositions or TrajectoryEnsemble
        For ``analysis="psa"``: a
        :class:`~repro.trajectory.streaming.StreamingEnsemble` (or an
        in-memory ensemble, whose windows are slices).  For
        ``analysis="leaflet"``: a
        :class:`~repro.trajectory.streaming.ChunkedPositions` system.
    framework : str or TaskFramework, optional
        Framework name or an already constructed framework.
    analysis : str, optional
        ``"psa"`` (windowed Hausdorff over trajectory pairs, the
        default) or ``"leaflet"`` (incremental component merging over
        atom-chunk pairs).
    metric : str, optional
        PSA only.  Must be ``"hausdorff_windowed"`` — the one registered
        metric whose kernel merges bit-identically over frame windows.
    window_frames : int, optional
        PSA only: frames per window (default: the chunk size).
    cutoff : float, optional
        Leaflet only: neighbor cutoff in Angstrom.
    n_tasks / group_size : int, optional
        PSA trajectory-block decomposition (as in :func:`psa`).
    workers, executor, data_plane, store_capacity_bytes, spill_dir, \
spill_async, spill_queue_depth, fault_policy, faults :
        As in :func:`psa`, except ``data_plane`` defaults to ``"shm"``
        here: chunks ingest into the store and ride as zero-copy refs,
        and a ``store_capacity_bytes`` watermark spills cold chunks
        between waves.  Pass ``data_plane="pickle"`` explicitly to
        stream windows as serialized arrays instead.
    checkpoint_dir : str, optional
        Journal directory for checkpoint/restart (as in :func:`psa`);
        every wave consults the same journal, so a killed streaming run
        resumes from its last completed blocks.

    Returns
    -------
    result : DistanceMatrix or LeafletResult
        The merged analysis result (matches the batch run).
    report : RunReport
        Wave-accumulated metrics, including ``bytes_ingested`` and
        ``peak_resident_bytes``.
    """
    if analysis not in ("psa", "leaflet"):
        raise ValueError(f"unknown analysis {analysis!r}; choose 'psa' or 'leaflet'")
    created = isinstance(framework, str)
    # unlike psa()/leaflet(), streaming defaults to the shm plane: the
    # whole point is ingesting chunks into the store as shared blocks
    data_plane = data_plane or "shm"
    fw = _resolve_framework(framework, executor=executor, workers=workers,
                            data_plane=data_plane,
                            store_capacity_bytes=store_capacity_bytes,
                            spill_dir=spill_dir, spill_async=spill_async,
                            spill_queue_depth=spill_queue_depth,
                            fault_policy=fault_policy, faults=faults) \
        if created else framework
    try:
        if analysis == "psa":
            return run_psa_windows(source, fw, metric=metric,
                                   window_frames=window_frames,
                                   n_tasks=n_tasks, group_size=group_size,
                                   data_plane=data_plane,
                                   checkpoint_dir=checkpoint_dir)
        return run_leaflet_stream(source, cutoff, fw, data_plane=data_plane,
                                  checkpoint_dir=checkpoint_dir)
    finally:
        # see psa(): frameworks constructed by name are closed here
        if created:
            fw.close()


def leaflet_finder(system, framework: str | TaskFramework = "dasklite", *,
                   selection: str = "name P", cutoff: float = 15.0,
                   approach: str = "tree-search", n_tasks: int = 16,
                   workers: int | None = None,
                   executor: str = "threads",
                   data_plane: str | None = None,
                   store_capacity_bytes: int | None = None,
                   spill_dir: str | None = None,
                   spill_async: bool = True,
                   spill_queue_depth: int = 4,
                   fault_policy=None,
                   faults=None,
                   checkpoint_dir: str | None = None) -> Tuple[LeafletResult, RunReport]:
    """Run the Leaflet Finder on a membrane system.

    Parameters
    ----------
    system : Universe or numpy.ndarray
        A :class:`~repro.trajectory.universe.Universe` (the
        ``selection`` is applied to pick the head-group atoms) or a raw
        ``(n_atoms, 3)`` position array.
    framework : str or TaskFramework, optional
        Framework name or an already constructed framework.
    selection : str, optional
        Atom selection applied when a universe is given.
    cutoff : float, optional
        Neighbor cutoff in Angstrom (the paper uses 15).
    approach : str, optional
        One of :data:`~repro.core.leaflet.LEAFLET_APPROACHES`.
    n_tasks : int, optional
        Number of map tasks.
    workers : int, optional
        Worker count for the executor.
    executor : str, optional
        Physical executor kind.
    data_plane : str, optional
        ``data_plane="shm"`` puts the system in shared memory once,
        hands tasks zero-copy chunk refs and returns edge lists /
        partial components through the same plane; ``None`` (default)
        uses the framework's configured plane, and an explicit value
        overrides an already constructed framework's plane for this run.
    store_capacity_bytes : int, optional
        Spill watermark for the shm store when constructing by name.
    spill_dir : str, optional
        Directory for the spill tier.
    spill_async : bool, optional
        Write-behind spilling (default ``True``; see :func:`psa`).
    spill_queue_depth : int, optional
        Write-behind queue bound before eviction applies backpressure.
    fault_policy : FaultPolicy, optional
        Resilience policy when constructing by name (see :func:`psa`).
    faults : FaultInjector or FaultSpec or sequence, optional
        Deterministic fault injection for chaos runs (testing only).
    checkpoint_dir : str, optional
        Journal directory for checkpoint/restart: map-phase block
        results persist there as they finish and a re-run with the same
        inputs resumes, recomputing only missing blocks (as in
        :func:`psa`).

    Returns
    -------
    result : LeafletResult
        The connected components (leaflets) of the neighbor graph.
    report : RunReport
        Timings, per-phase breakdown and data-plane byte accounting.
    """
    if isinstance(system, Universe):
        group = system.select_atoms(selection)
        if group.n_atoms == 0:
            raise ValueError(f"selection {selection!r} matched no atoms")
        positions = group.positions
    else:
        positions = np.asarray(system, dtype=np.float64)
    created = isinstance(framework, str)
    fw = _resolve_framework(framework, executor=executor, workers=workers,
                            data_plane=data_plane or "pickle",
                            store_capacity_bytes=store_capacity_bytes,
                            spill_dir=spill_dir, spill_async=spill_async,
                            spill_queue_depth=spill_queue_depth,
                            fault_policy=fault_policy, faults=faults) \
        if created else framework
    try:
        return run_leaflet_finder(positions, cutoff, fw, approach=approach,
                                  n_tasks=n_tasks, data_plane=data_plane,
                                  checkpoint_dir=checkpoint_dir)
    finally:
        # see psa(): frameworks constructed by name are closed here
        if created:
            fw.close()


def compare_frameworks(ensemble: TrajectoryEnsemble,
                       frameworks: Sequence[str] = ("sparklite", "dasklite", "pilot", "mpilite"),
                       *, metric: str = "hausdorff", n_tasks: int | None = None,
                       workers: int | None = None,
                       data_plane: str = "pickle") -> Dict[str, RunReport]:
    """Run the same PSA workload on several frameworks and collect reports.

    The returned reports are the raw material of the paper's Figure 4/5
    style comparisons; distance matrices are checked for agreement across
    frameworks (they must be identical up to floating-point noise) and the
    first framework's matrix is discarded after the check.

    Parameters
    ----------
    ensemble : TrajectoryEnsemble
        The workload.
    frameworks : sequence of str, optional
        Framework names to compare.
    metric : str, optional
        PSA metric.
    n_tasks : int, optional
        Target task count.
    workers : int, optional
        Worker count per framework.
    data_plane : str, optional
        Data plane every framework runs on.

    Returns
    -------
    dict of str to RunReport
        One report per framework name.
    """
    reports: Dict[str, RunReport] = {}
    reference = None
    for name in frameworks:
        fw = make_framework(name, executor="threads", workers=workers,
                            data_plane=data_plane)
        try:
            matrix, report = run_psa(ensemble, fw, metric=metric, n_tasks=n_tasks)
            if reference is None:
                reference = matrix.values
            elif not np.allclose(reference, matrix.values, atol=1e-9):
                raise AssertionError(
                    f"framework {name} produced a different distance matrix"
                )
            reports[name] = report
        finally:
            fw.close()
    return reports


def compare_leaflet_approaches(positions: np.ndarray, cutoff: float = 15.0,
                               framework: str | TaskFramework = "dasklite", *,
                               approaches: Sequence[str] | None = None,
                               n_tasks: int = 16,
                               workers: int | None = None) -> Dict[str, RunReport]:
    """Run every Leaflet Finder approach on the same system (Figure 7 rows).

    All approaches must agree on the two leaflet components; disagreement
    raises, since that would indicate an implementation bug rather than a
    performance difference.

    Parameters
    ----------
    positions : numpy.ndarray
        ``(n_atoms, 3)`` head-group positions.
    cutoff : float, optional
        Neighbor cutoff in Angstrom.
    framework : str or TaskFramework, optional
        Substrate to run every approach on.
    approaches : sequence of str, optional
        Approach names; defaults to all four.
    n_tasks : int, optional
        Number of map tasks per approach.
    workers : int, optional
        Worker count when constructing the framework by name.

    Returns
    -------
    dict of str to RunReport
        One report per approach name.
    """
    approaches = list(approaches or LEAFLET_APPROACHES)
    created = isinstance(framework, str)
    fw = _resolve_framework(framework, executor="threads", workers=workers) \
        if created else framework
    reports: Dict[str, RunReport] = {}
    reference_sizes = None
    try:
        for approach in approaches:
            result, report = run_leaflet_finder(positions, cutoff, fw,
                                                approach=approach, n_tasks=n_tasks)
            top_sizes = result.sizes[:2]
            if reference_sizes is None:
                reference_sizes = top_sizes
            elif top_sizes != reference_sizes:
                raise AssertionError(
                    f"approach {approach} found leaflet sizes {top_sizes}, "
                    f"expected {reference_sizes}"
                )
            reports[approach] = report
    finally:
        if created:
            fw.close()
    return reports
