"""High-level convenience API.

These are the functions a downstream user calls first: build a framework
by name, run PSA on an ensemble, run the Leaflet Finder on a membrane,
and compare frameworks/approaches on the same workload.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..frameworks import TaskFramework, make_framework
from ..trajectory.trajectory import TrajectoryEnsemble
from ..trajectory.universe import Universe
from .leaflet import LEAFLET_APPROACHES, run_leaflet_finder
from .psa import run_psa
from .results import DistanceMatrix, LeafletResult, RunReport

__all__ = ["psa", "leaflet_finder", "compare_frameworks", "compare_leaflet_approaches"]


def _resolve_framework(framework: str | TaskFramework, **kwargs) -> TaskFramework:
    if isinstance(framework, TaskFramework):
        return framework
    return make_framework(framework, **kwargs)


def psa(ensemble: TrajectoryEnsemble, framework: str | TaskFramework = "dasklite",
        *, metric: str = "hausdorff", n_tasks: int | None = None,
        group_size: int | None = None, workers: int | None = None,
        executor: str = "threads",
        data_plane: str | None = None) -> Tuple[DistanceMatrix, RunReport]:
    """Run Path Similarity Analysis on an ensemble.

    Parameters
    ----------
    ensemble:
        The trajectories to compare all-to-all.
    framework:
        Framework name (``"spark"``, ``"dask"``, ``"pilot"``, ``"mpi"`` or
        their canonical sparklite/dasklite/pilot/mpilite spellings) or an
        already constructed :class:`TaskFramework`.
    metric:
        ``"hausdorff"`` (default), ``"hausdorff_earlybreak"``, ``"frechet"``
        or ``"hausdorff_naive"``.
    data_plane:
        ``None`` (default) uses the framework's configured plane
        (``"pickle"`` when constructing by name).  ``"pickle"`` ships
        each task's trajectory blocks whole; ``"shm"`` registers every
        trajectory in shared memory once and tasks carry zero-copy refs
        (see :mod:`repro.frameworks.shm`).  An explicit value overrides
        an already constructed framework's plane for this run.
    """
    fw = _resolve_framework(framework, executor=executor, workers=workers,
                            data_plane=data_plane or "pickle") \
        if isinstance(framework, str) else framework
    return run_psa(ensemble, fw, metric=metric, n_tasks=n_tasks,
                   group_size=group_size, data_plane=data_plane)


def leaflet_finder(system, framework: str | TaskFramework = "dasklite", *,
                   selection: str = "name P", cutoff: float = 15.0,
                   approach: str = "tree-search", n_tasks: int = 16,
                   workers: int | None = None,
                   executor: str = "threads",
                   data_plane: str | None = None) -> Tuple[LeafletResult, RunReport]:
    """Run the Leaflet Finder on a membrane system.

    ``system`` may be a :class:`~repro.trajectory.universe.Universe` (the
    ``selection`` is applied to pick the head-group atoms) or a raw
    ``(n_atoms, 3)`` position array.  ``data_plane="shm"`` puts the
    system in shared memory once and hands tasks zero-copy chunk refs;
    ``None`` (default) uses the framework's configured plane, and an
    explicit value overrides an already constructed framework's plane
    for this run.
    """
    if isinstance(system, Universe):
        group = system.select_atoms(selection)
        if group.n_atoms == 0:
            raise ValueError(f"selection {selection!r} matched no atoms")
        positions = group.positions
    else:
        positions = np.asarray(system, dtype=np.float64)
    fw = _resolve_framework(framework, executor=executor, workers=workers,
                            data_plane=data_plane or "pickle") \
        if isinstance(framework, str) else framework
    return run_leaflet_finder(positions, cutoff, fw, approach=approach,
                              n_tasks=n_tasks, data_plane=data_plane)


def compare_frameworks(ensemble: TrajectoryEnsemble,
                       frameworks: Sequence[str] = ("sparklite", "dasklite", "pilot", "mpilite"),
                       *, metric: str = "hausdorff", n_tasks: int | None = None,
                       workers: int | None = None,
                       data_plane: str = "pickle") -> Dict[str, RunReport]:
    """Run the same PSA workload on several frameworks and collect reports.

    The returned reports are the raw material of the paper's Figure 4/5
    style comparisons; distance matrices are checked for agreement across
    frameworks (they must be identical up to floating-point noise) and the
    first framework's matrix is discarded after the check.
    """
    reports: Dict[str, RunReport] = {}
    reference = None
    for name in frameworks:
        fw = make_framework(name, executor="threads", workers=workers,
                            data_plane=data_plane)
        try:
            matrix, report = run_psa(ensemble, fw, metric=metric, n_tasks=n_tasks)
            if reference is None:
                reference = matrix.values
            elif not np.allclose(reference, matrix.values, atol=1e-9):
                raise AssertionError(
                    f"framework {name} produced a different distance matrix"
                )
            reports[name] = report
        finally:
            fw.close()
    return reports


def compare_leaflet_approaches(positions: np.ndarray, cutoff: float = 15.0,
                               framework: str | TaskFramework = "dasklite", *,
                               approaches: Sequence[str] | None = None,
                               n_tasks: int = 16,
                               workers: int | None = None) -> Dict[str, RunReport]:
    """Run every Leaflet Finder approach on the same system (Figure 7 rows).

    All approaches must agree on the two leaflet components; disagreement
    raises, since that would indicate an implementation bug rather than a
    performance difference.
    """
    approaches = list(approaches or LEAFLET_APPROACHES)
    fw = _resolve_framework(framework, executor="threads", workers=workers) \
        if isinstance(framework, str) else framework
    reports: Dict[str, RunReport] = {}
    reference_sizes = None
    for approach in approaches:
        result, report = run_leaflet_finder(positions, cutoff, fw,
                                            approach=approach, n_tasks=n_tasks)
        top_sizes = result.sizes[:2]
        if reference_sizes is None:
            reference_sizes = top_sizes
        elif top_sizes != reference_sizes:
            raise AssertionError(
                f"approach {approach} found leaflet sizes {top_sizes}, "
                f"expected {reference_sizes}"
            )
        reports[approach] = report
    return reports
