"""Path Similarity Analysis (PSA) over trajectory ensembles.

The algorithm (paper Algorithm 1 + 2): compute the pairwise Hausdorff
distance between every pair of trajectories in an ensemble, parallelized
with a 2-D partitioning of the output matrix — each task owns an
``n1 x n1`` block of trajectory pairs, computes them serially, and the
driver assembles the symmetric ``N x N`` matrix.

PSA is embarrassingly parallel, so on every substrate it is expressed the
same way: a bag of independent block tasks submitted through
``framework.map_tasks`` (task API for RADICAL-Pilot and Dask, a map-only
RDD job for Spark, a statically partitioned SPMD loop for MPI) —
exactly the implementations section 4.2 describes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.engine import get_kernel_method
from ..analysis.hausdorff import (
    discrete_frechet,
    hausdorff,
    hausdorff_earlybreak,
    hausdorff_naive,
    hausdorff_windowed,
    window_minima,
)
from ..frameworks.base import TaskFramework
from ..frameworks.checkpoint import RunJournal, checkpointed_map, run_fingerprint
from ..frameworks.serialization import nbytes_of
from ..frameworks.shm import DATA_PLANES, SharedMemoryStore, maybe_resolve, refs_nbytes
from ..trajectory.readers import read_trajectory
from ..trajectory.trajectory import TrajectoryEnsemble
from .partitioning import BlockTask, choose_group_size, two_dimensional_partition
from .results import DistanceMatrix, RunReport

__all__ = [
    "PSA_METRICS",
    "PSABlockTask",
    "PSAWindowTask",
    "psa_serial",
    "psa_block_key",
    "psa_window_key",
    "run_psa",
    "run_psa_windows",
    "make_psa_tasks",
]


def psa_block_key(task: PSABlockTask) -> str:
    """Stable journal key for a PSA block task (matrix-block granularity)."""
    return f"psa-{task.block.row_start}-{task.block.col_start}"


def psa_window_key(task: PSAWindowTask) -> str:
    """Stable journal key for a streamed PSA window-pair block task."""
    r0, r1 = task.row_window
    c0, c1 = task.col_window
    return (f"psaw-w{r0}-{r1}x{c0}-{c1}"
            f"-b{task.block.row_start}-{task.block.col_start}")


def _ensemble_fingerprint(ensemble, **params) -> str:
    """Content fingerprint of an ensemble plus run parameters.

    In-memory ensembles hash their position arrays; streaming ensembles
    are described by member metadata (paths, chunking, frame counts) so
    fingerprinting never materializes out-of-core data.  The engine-wide
    kernel method participates so a journal written under one kernel
    engine is rejected under another.
    """
    params.setdefault("kernel_method", get_kernel_method())
    if hasattr(ensemble, "window_payloads"):
        members = [
            (os.path.abspath(member.path), member.n_frames,
             member.n_atoms, member.frames_per_chunk)
            for member in ensemble.members
        ]
        return run_fingerprint(members=members,
                               labels=tuple(ensemble.labels), **params)
    return run_fingerprint(arrays=ensemble.as_arrays(),
                           labels=tuple(ensemble.labels), **params)


def hausdorff_earlybreak_reference(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Early-break Hausdorff pinned to the Python reference kernel.

    Kept as an explicit PSA metric so the figure ablations can report the
    reference-vs-vectorized kernel engine split by metric name (tasks carry
    metric *names*, so the choice survives pickling into workers).
    """
    return hausdorff_earlybreak(traj_a, traj_b, method="reference")


#: Metric name -> callable mapping two (n_frames, n_atoms, 3) arrays to a float.
PSA_METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "hausdorff": hausdorff,
    "hausdorff_naive": hausdorff_naive,
    "hausdorff_earlybreak": hausdorff_earlybreak,
    "hausdorff_earlybreak_reference": hausdorff_earlybreak_reference,
    "hausdorff_windowed": hausdorff_windowed,
    "frechet": discrete_frechet,
}


@dataclass
class PSABlockTask:
    """One PSA task: compare the row block against the column block.

    The task is self-contained — it carries either the position arrays
    themselves or the file paths to read them from (``from_files=True``),
    matching the paper's setup where "each task reads its respective input
    files in parallel".
    """

    block: BlockTask
    row_data: List
    col_data: List
    metric: str = "hausdorff"
    from_files: bool = False

    @property
    def nbytes(self) -> int:
        """Approximate payload size shipped to the worker."""
        return nbytes_of(self.row_data) + nbytes_of(self.col_data)


def _load(item, from_files: bool) -> np.ndarray:
    if from_files:
        return read_trajectory(item).as_array()
    if isinstance(item, (list, tuple)):
        # a streamed frame window: one ref (or array) per source chunk;
        # a single-chunk window stays zero-copy, spanning windows are
        # concatenated worker-side (the only copy the window ever makes)
        parts = [np.asarray(maybe_resolve(part), dtype=np.float64) for part in item]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)
    # shm data plane: the item is a BlockRef; rehydrate as a zero-copy view
    item = maybe_resolve(item)
    return np.asarray(item, dtype=np.float64)


def execute_psa_block(task: PSABlockTask) -> np.ndarray:
    """Run one PSA block task and return its distance block.

    Diagonal blocks only compute the upper triangle (the distance is
    symmetric and ``d(i, i) = 0``).

    The block is returned as a ``(n_pairs, 3)`` float64 array of
    ``(i, j, distance)`` triples rather than a list of tuples: a single
    contiguous array is what the result-direction data plane ships as
    one :class:`~repro.frameworks.shm.BlockRef`, so on the shm plane a
    worker's distance block returns to the driver zero-copy instead of
    through pickle.  Iterating the rows still yields unpackable
    ``i, j, d`` triples, so consumers that loop are unaffected.
    """
    metric_fn = PSA_METRICS[task.metric]
    rows = [_load(item, task.from_files) for item in task.row_data]
    cols = rows if task.block.diagonal else [
        _load(item, task.from_files) for item in task.col_data
    ]
    out: List[Tuple[int, int, float]] = []
    for local_i, traj_i in enumerate(rows):
        global_i = task.block.row_start + local_i
        for local_j, traj_j in enumerate(cols):
            global_j = task.block.col_start + local_j
            if task.block.diagonal and global_j <= global_i:
                continue
            out.append((global_i, global_j, float(metric_fn(traj_i, traj_j))))
    if not out:
        return np.empty((0, 3), dtype=np.float64)
    return np.asarray(out, dtype=np.float64)


def make_psa_tasks(ensemble: TrajectoryEnsemble, *, group_size: int | None = None,
                   n_tasks: int | None = None, metric: str = "hausdorff",
                   paths: Sequence[str] | None = None,
                   store: SharedMemoryStore | None = None,
                   window: Tuple[int, int] | None = None) -> List[PSABlockTask]:
    """Build the PSA task list for an ensemble (Algorithm 2 decomposition).

    Parameters
    ----------
    group_size:
        ``n1`` of Algorithm 2; mutually exclusive with ``n_tasks``.
    n_tasks:
        Desired task count; the group size is derived from it.  Defaults
        to one trajectory pair block per ensemble member when neither is
        given.
    metric:
        One of :data:`PSA_METRICS`.
    paths:
        Optional per-trajectory file paths; when given, tasks carry paths
        and read the trajectories inside the worker (the paper's I/O
        pattern).
    store:
        Shared-memory store for the shm data plane.  Each trajectory is
        registered exactly once and the tasks carry
        :class:`~repro.frameworks.shm.BlockRef` handles, so the 2-D block
        decomposition — which replicates every trajectory into ~2·N/n1
        task payloads — ships refs instead of array copies.
    window:
        Optional ``(start, stop)`` frame window; the analysis is
        restricted to those frames of every member.  On a
        :class:`~repro.trajectory.streaming.StreamingEnsemble` the window
        resolves through chunk ingestion (only the chunks the window
        touches enter memory); on an in-memory ensemble the members are
        sliced.  Not supported together with ``paths``.
    """
    if metric not in PSA_METRICS:
        raise ValueError(f"unknown PSA metric {metric!r}; choose from {sorted(PSA_METRICS)}")
    n = ensemble.n_trajectories
    if n < 2:
        raise ValueError("PSA needs at least two trajectories")
    ensemble.validate_consistent_atoms()
    if group_size is not None and n_tasks is not None:
        raise ValueError("give either group_size or n_tasks, not both")
    if group_size is None:
        group_size = choose_group_size(n, n_tasks) if n_tasks is not None else max(1, n // 8)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    blocks = two_dimensional_partition(n, group_size)
    from_files = paths is not None
    if from_files and len(paths) != n:
        raise ValueError("paths must have one entry per trajectory")
    if from_files and window is not None:
        raise ValueError("window is not supported with path-based tasks")
    if from_files:
        source: Sequence = paths
    elif hasattr(ensemble, "window_payloads"):
        # streaming ensemble: windows resolve as chunk refs (with a
        # store) or window-sized arrays (without) — never whole members
        start, stop = window if window is not None else (0, ensemble.n_frames)
        source = ensemble.window_payloads(store, start, stop)
    else:
        source = ensemble.as_arrays()
        if window is not None:
            start, stop = window
            source = [array[start:stop] for array in source]
        if store is not None:
            source = [store.put(array) for array in source]
    tasks = []
    for block in blocks:
        row_data = [source[i] for i in range(block.row_start, block.row_stop)]
        col_data = [source[j] for j in range(block.col_start, block.col_stop)]
        tasks.append(PSABlockTask(block=block, row_data=row_data, col_data=col_data,
                                  metric=metric, from_files=from_files))
    return tasks


def psa_serial(ensemble: TrajectoryEnsemble, metric: str = "hausdorff") -> DistanceMatrix:
    """Reference serial PSA (no framework): the executable specification."""
    if metric not in PSA_METRICS:
        raise ValueError(f"unknown PSA metric {metric!r}")
    metric_fn = PSA_METRICS[metric]
    arrays = ensemble.as_arrays()
    n = len(arrays)
    if n < 2:
        raise ValueError("PSA needs at least two trajectories")
    values = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            d = float(metric_fn(arrays[i], arrays[j]))
            values[i, j] = values[j, i] = d
    return DistanceMatrix(values, labels=ensemble.labels)


def run_psa(ensemble: TrajectoryEnsemble, framework: TaskFramework,
            *, group_size: int | None = None, n_tasks: int | None = None,
            metric: str = "hausdorff",
            paths: Sequence[str] | None = None,
            data_plane: str | None = None,
            window: Tuple[int, int] | None = None,
            checkpoint_dir: str | None = None) -> Tuple[DistanceMatrix, RunReport]:
    """Task-parallel PSA on any framework substrate.

    Returns the symmetric distance matrix and a :class:`RunReport` with the
    framework's metrics (task counts, wall time, overhead).

    ``checkpoint_dir`` enables checkpoint/restart: completed distance
    blocks are journalled there as they finish, and a re-run with the
    same ensemble, parameters, plane, substrate and kernel engine
    replays them (``tasks_restored`` / ``restore_seconds`` in the
    report) and submits only the missing blocks.  A journal written
    under different inputs raises
    :class:`~repro.frameworks.checkpoint.StaleJournal` instead of being
    silently reused.

    ``window=(start, stop)`` restricts the analysis to a frame window of
    every member (any metric); on a
    :class:`~repro.trajectory.streaming.StreamingEnsemble` only the
    chunks the window touches are ingested.

    ``data_plane`` defaults to the framework's own plane; pass ``"shm"``
    to force zero-copy task payloads (each trajectory enters shared
    memory once, tasks carry refs) or ``"pickle"`` to force whole-array
    payloads.  Forcing a plane temporarily overrides the framework's
    configured plane for this run, so the payload conversion and the
    reported label agree; a :class:`SharedMemoryExecutor`'s transport
    itself is part of the executor and is not affected.

    On the shm plane the *result* direction rides the plane as well:
    each worker's distance block returns as a
    :class:`~repro.frameworks.shm.BlockRef` that the driver resolves
    zero-copy during assembly, and — when the framework's store is
    configured with a ``store_capacity_bytes`` watermark — blocks past
    the watermark spill to disk and the report's ``bytes_spilled``
    records how much.
    """
    plane = data_plane if data_plane is not None else getattr(framework, "data_plane", "pickle")
    if plane not in DATA_PLANES:
        raise ValueError(f"unknown data_plane {plane!r}; choose from {DATA_PLANES}")
    configured_plane = getattr(framework, "data_plane", None)
    override = configured_plane is not None and configured_plane != plane
    store = None
    owns_store = False
    if plane == "shm" and paths is None:
        store = getattr(framework, "store", None)
        if store is None:
            store = SharedMemoryStore()
            owns_store = True
    try:
        if override:
            framework.data_plane = plane
            if owns_store:
                # attach the ephemeral store so the framework's payload
                # and result conversion actually runs on the shm plane
                # for this run (mirrors run_leaflet_finder)
                framework.store = store
        tasks = make_psa_tasks(ensemble, group_size=group_size, n_tasks=n_tasks,
                               metric=metric, paths=paths, store=store,
                               window=window)
        n = ensemble.n_trajectories
        start = time.perf_counter()
        if checkpoint_dir is not None:
            fingerprint = _ensemble_fingerprint(
                ensemble, algorithm="psa", metric=metric, data_plane=plane,
                substrate=framework.name, group_size=group_size,
                n_tasks_hint=n_tasks, window=window,
                paths=tuple(paths) if paths is not None else None)
            journal = RunJournal(checkpoint_dir, fingerprint).open()
            results = checkpointed_map(framework, execute_psa_block, tasks,
                                       journal, psa_block_key)
        else:
            results = framework.map_tasks(execute_psa_block, tasks)
        wall = time.perf_counter() - start
        # assemble the symmetric matrix from the distance blocks; on the
        # shm plane each block is a zero-copy view of a result segment,
        # and the vectorized scatter below is the only copy made of it
        values = np.zeros((n, n), dtype=np.float64)
        for block in results:
            block = np.asarray(block, dtype=np.float64).reshape(-1, 3)
            if block.shape[0] == 0:
                continue
            ii = block[:, 0].astype(np.intp)
            jj = block[:, 1].astype(np.intp)
            values[ii, jj] = block[:, 2]
            values[jj, ii] = block[:, 2]
    finally:
        if override:
            framework.data_plane = configured_plane
            if owns_store:
                framework.store = None
        if owns_store:
            # safe to unlink only after assembly: the result views above
            # point into the ephemeral store's segments
            store.cleanup()
    matrix = DistanceMatrix(values, labels=ensemble.labels)
    metrics = framework.metrics
    if store is not None:
        metrics.bytes_shared = max(metrics.bytes_shared,
                                   sum(refs_nbytes(task) for task in tasks))
        metrics.bytes_spilled = max(metrics.bytes_spilled, store.bytes_spilled)
    report = RunReport(
        algorithm=f"psa[{metric}]",
        framework=framework.name,
        parameters={
            "n_trajectories": n,
            "n_frames": ensemble[0].n_frames,
            "n_atoms": ensemble[0].n_atoms,
            "n_tasks": len(tasks),
            "metric": metric,
            "data_plane": plane,
            "window": window,
        },
        wall_time_s=wall,
        n_tasks=len(tasks),
        metrics=metrics,
    )
    return matrix, report


@dataclass
class PSAWindowTask:
    """One streamed PSA task: a trajectory-pair block restricted to a window pair.

    The streamed decomposition adds a second axis to Algorithm 2: a task
    owns an ``n1 x n1`` block of trajectory pairs *and* one ordered pair
    of frame windows, and contributes the per-frame minimum squared
    distances of that window pair.  ``row_data`` / ``col_data`` carry the
    members' window payloads (chunk refs on the shm plane, window arrays
    on pickle) — never whole trajectories.
    """

    block: BlockTask
    row_data: List
    col_data: List
    row_window: Tuple[int, int]
    col_window: Tuple[int, int]

    @property
    def nbytes(self) -> int:
        """Approximate payload size shipped to the worker."""
        return nbytes_of(self.row_data) + nbytes_of(self.col_data)


def execute_psa_window(task: PSAWindowTask) -> np.ndarray:
    """Run one streamed PSA window task.

    Returns a ``(n_pairs, 6 + la + lb)`` float64 array whose rows are
    ``[i, j, row_start, la, col_start, lb, row_min_d2..., col_min_d2...]``
    — self-describing, so the driver can merge results regardless of
    completion order.  Squared distances come from
    :func:`repro.analysis.hausdorff.window_minima`, whose per-pair
    difference formula makes the merge bit-identical to a batch pass.
    """
    rows = [_load(item, False) for item in task.row_data]
    same_windows = task.block.diagonal and task.row_window == task.col_window
    cols = rows if same_windows else [_load(item, False) for item in task.col_data]
    r_start, r_stop = task.row_window
    c_start, c_stop = task.col_window
    la, lb = r_stop - r_start, c_stop - c_start
    out: List[np.ndarray] = []
    for local_i, win_a in enumerate(rows):
        global_i = task.block.row_start + local_i
        for local_j, win_b in enumerate(cols):
            global_j = task.block.col_start + local_j
            if task.block.diagonal and global_j <= global_i:
                continue
            row_min, col_min = window_minima(win_a, win_b)
            out.append(np.concatenate((
                [global_i, global_j, r_start, la, c_start, lb], row_min, col_min)))
    if not out:
        return np.empty((0, 6 + la + lb), dtype=np.float64)
    return np.asarray(out, dtype=np.float64)


def run_psa_windows(ensemble, framework: TaskFramework,
                    *, metric: str = "hausdorff_windowed",
                    window_frames: int | None = None,
                    group_size: int | None = None, n_tasks: int | None = None,
                    data_plane: str | None = None,
                    checkpoint_dir: str | None = None) -> Tuple[DistanceMatrix, RunReport]:
    """Streamed PSA: analyze frame windows as chunks arrive, merge minima.

    The incremental driver for out-of-core ensembles: windows are
    processed in arrival order, and when window ``w`` arrives one wave of
    tasks compares it against itself and every earlier window (both
    orders), so at no point does any member need to be resident beyond
    the chunks the current wave touches — the store's watermark is free
    to spill cold chunks between waves.  Per-frame minimum squared
    distances are merged across waves with ``np.minimum``; because
    :func:`~repro.analysis.hausdorff.window_minima` is partition
    independent, the final matrix is bit-identical to the batch
    ``metric="hausdorff_windowed"`` run regardless of the window size.

    Parameters
    ----------
    ensemble:
        A :class:`~repro.trajectory.streaming.StreamingEnsemble` (chunked
        ingest) or an in-memory ensemble (windows are slices).
    framework:
        The task framework to run on.
    metric:
        Must be ``"hausdorff_windowed"`` — the only registered metric
        whose kernel decomposes over frame windows ("frechet" couples
        windows through its DP recurrence, and the GEMM-based Hausdorff
        variants are not bitwise partition-stable).
    window_frames:
        Frames per window; defaults to the ensemble's chunk size
        (in-memory ensembles default to ceil(n_frames / 4)).
    group_size / n_tasks:
        Algorithm 2 trajectory-block decomposition, as in
        :func:`run_psa`.
    data_plane:
        Override the framework's data plane, as in :func:`run_psa`.
    checkpoint_dir:
        Optional journal directory for checkpoint/restart: each
        window-pair block result is journalled as it completes, and a
        resumed run replays finished blocks (all waves consult the same
        journal) and computes only the missing ones, as in
        :func:`run_psa`.

    Returns
    -------
    (DistanceMatrix, RunReport)
        The symmetric distance matrix (bit-identical to batch) and a
        report whose metrics accumulate over all waves —
        ``bytes_ingested`` / ``peak_resident_bytes`` record the
        out-of-core behaviour of the run.
    """
    if metric != "hausdorff_windowed":
        raise ValueError(
            f"streamed PSA requires metric='hausdorff_windowed' (got {metric!r}): "
            "it is the only metric whose kernel merges bit-identically over "
            "frame windows"
        )
    n = ensemble.n_trajectories
    if n < 2:
        raise ValueError("PSA needs at least two trajectories")
    n_atoms = ensemble.validate_consistent_atoms()
    if group_size is not None and n_tasks is not None:
        raise ValueError("give either group_size or n_tasks, not both")
    if group_size is None:
        group_size = choose_group_size(n, n_tasks) if n_tasks is not None else max(1, n // 8)
    blocks = two_dimensional_partition(n, group_size)

    plane = data_plane if data_plane is not None else getattr(framework, "data_plane", "pickle")
    if plane not in DATA_PLANES:
        raise ValueError(f"unknown data_plane {plane!r}; choose from {DATA_PLANES}")
    configured_plane = getattr(framework, "data_plane", None)
    override = configured_plane is not None and configured_plane != plane
    store = None
    owns_store = False
    if plane == "shm":
        store = getattr(framework, "store", None)
        if store is None:
            store = SharedMemoryStore()
            owns_store = True

    streaming = hasattr(ensemble, "window_payloads")
    if streaming:
        windows = ensemble.windows(window_frames)
        n_frames = ensemble.n_frames
    else:
        n_frames = ensemble[0].n_frames
        size = window_frames or max(1, -(-n_frames // 4))
        windows = [(s, min(n_frames, s + size)) for s in range(0, n_frames, size)]
        arrays = ensemble.as_arrays()

    def payloads(start: int, stop: int) -> List:
        if streaming:
            return ensemble.window_payloads(store, start, stop)
        return [array[start:stop] for array in arrays]

    # running per-pair, per-frame minimum squared distances (driver-side
    # state: 2 * n_pairs * n_frames floats, independent of ensemble size)
    fwd = {}
    bwd = {}
    for i in range(n):
        for j in range(i + 1, n):
            fwd[(i, j)] = np.full(n_frames, np.inf)
            bwd[(i, j)] = np.full(n_frames, np.inf)

    journal = None
    if checkpoint_dir is not None:
        fingerprint = _ensemble_fingerprint(
            ensemble, algorithm="psa_stream", metric=metric, data_plane=plane,
            substrate=framework.name, group_size=group_size,
            window_frames=window_frames)
        journal = RunJournal(checkpoint_dir, fingerprint).open()

    totals = None
    start_t = time.perf_counter()
    waves = 0
    try:
        if override:
            framework.data_plane = plane
            if owns_store:
                framework.store = store
        for w, (w_start, w_stop) in enumerate(windows):
            pay_w = payloads(w_start, w_stop)
            wave_pairs = [((w_start, w_stop), pay_w, (w_start, w_stop), pay_w)]
            for v in range(w):
                v_start, v_stop = windows[v]
                pay_v = payloads(v_start, v_stop)
                wave_pairs.append(((v_start, v_stop), pay_v, (w_start, w_stop), pay_w))
                wave_pairs.append(((w_start, w_stop), pay_w, (v_start, v_stop), pay_v))
            tasks = [
                PSAWindowTask(
                    block=block,
                    row_data=[row_pay[i] for i in range(block.row_start, block.row_stop)],
                    col_data=[col_pay[j] for j in range(block.col_start, block.col_stop)],
                    row_window=row_win, col_window=col_win,
                )
                for (row_win, row_pay, col_win, col_pay) in wave_pairs
                for block in blocks
            ]
            if journal is not None:
                results = checkpointed_map(framework, execute_psa_window,
                                           tasks, journal, psa_window_key)
            else:
                results = framework.map_tasks(execute_psa_window, tasks)
            for result in results:
                result = np.asarray(result, dtype=np.float64)
                for row in result.reshape(result.shape[0], -1) if result.size else ():
                    gi, gj = int(row[0]), int(row[1])
                    r0, la = int(row[2]), int(row[3])
                    c0, lb = int(row[4]), int(row[5])
                    pair = (gi, gj)
                    fwd[pair][r0:r0 + la] = np.minimum(fwd[pair][r0:r0 + la],
                                                       row[6:6 + la])
                    bwd[pair][c0:c0 + lb] = np.minimum(bwd[pair][c0:c0 + lb],
                                                       row[6 + la:6 + la + lb])
            # map_tasks resets the framework metrics each call; fold this
            # wave into the running totals (spill/ingest counters mirror
            # the store's cumulative values, so merge() takes their max)
            totals = framework.metrics if totals is None else totals.merge(framework.metrics)
            waves += 1
        values = np.zeros((n, n), dtype=np.float64)
        for (i, j) in fwd:
            d = np.sqrt(max(fwd[(i, j)].max(), bwd[(i, j)].max()) / n_atoms)
            values[i, j] = values[j, i] = float(d)
    finally:
        if override:
            framework.data_plane = configured_plane
            if owns_store:
                framework.store = None
        if owns_store:
            store.cleanup()
    wall = time.perf_counter() - start_t
    matrix = DistanceMatrix(values, labels=ensemble.labels)
    report = RunReport(
        algorithm="psa_stream[hausdorff_windowed]",
        framework=framework.name,
        parameters={
            "n_trajectories": n,
            "n_frames": n_frames,
            "n_atoms": n_atoms,
            "n_windows": len(windows),
            "n_waves": waves,
            "n_blocks": len(blocks),
            "metric": metric,
            "data_plane": plane,
        },
        wall_time_s=wall,
        n_tasks=totals.tasks_submitted if totals is not None else 0,
        metrics=totals if totals is not None else framework.metrics,
    )
    return matrix, report
