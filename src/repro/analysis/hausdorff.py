"""Hausdorff and related path metrics.

The Path Similarity Analysis of the paper (Algorithm 1) quantifies the
similarity of two trajectories with the symmetric Hausdorff distance under
the per-frame ``dRMS`` metric:

.. math::

    d_H(T_1, T_2) = \\max\\Big(
        \\max_{f_1 \\in T_1} \\min_{f_2 \\in T_2} dRMS(f_1, f_2),\\;
        \\max_{f_2 \\in T_2} \\min_{f_1 \\in T_1} dRMS(f_2, f_1) \\Big)

Implementations provided:

* :func:`hausdorff_naive` — the double loop exactly as written in
  Algorithm 1 (reference implementation),
* :func:`hausdorff` — vectorized: one 2D-RMSD matrix then min/max
  reductions (what the parallel tasks execute),
* :func:`hausdorff_earlybreak` — the early-break algorithm of Taha &
  Hanbury (2015) that the paper cites as a potential optimization
  (our ablation benchmark quantifies the speedup), and
* :func:`discrete_frechet` — the discrete Fréchet distance, the other
  metric offered by MDAnalysis' PSA module, included for completeness.
"""

from __future__ import annotations

import numpy as np

from .engine import resolve_kernel_method
from .rmsd import rmsd, rmsd_matrix

__all__ = [
    "hausdorff",
    "hausdorff_naive",
    "hausdorff_earlybreak",
    "hausdorff_windowed",
    "window_minima",
    "directed_hausdorff",
    "discrete_frechet",
]


def _flatten_paths(traj_a: np.ndarray, traj_b: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Validate a pair of trajectories and return flattened path views."""
    a = np.asarray(traj_a, dtype=np.float64)
    b = np.asarray(traj_b, dtype=np.float64)
    if a.ndim != 3 or b.ndim != 3 or a.shape[2] != 3 or b.shape[2] != 3:
        raise ValueError("trajectories must have shape (n_frames, n_atoms, 3)")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"trajectories must have the same atom count: {a.shape[1]} vs {b.shape[1]}"
        )
    if a.shape[0] == 0 or b.shape[0] == 0:
        raise ValueError("trajectories must contain at least one frame")
    n_atoms = a.shape[1]
    return a.reshape(a.shape[0], -1), b.reshape(b.shape[0], -1), n_atoms


def hausdorff_naive(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Hausdorff distance computed with the literal double loop of Algorithm 1.

    Quadratic in the number of frames and slow in Python; kept as the
    executable specification against which the vectorized and early-break
    variants are verified.
    """
    a = np.asarray(traj_a, dtype=np.float64)
    b = np.asarray(traj_b, dtype=np.float64)
    _flatten_paths(a, b)  # shape validation only
    d_t1 = []
    for frame1 in a:
        d1 = [rmsd(frame1, frame2) for frame2 in b]
        d_t1.append(min(d1))
    d_t2 = []
    for frame2 in b:
        d2 = [rmsd(frame2, frame1) for frame1 in a]
        d_t2.append(min(d2))
    return float(max(max(d_t1), max(d_t2)))


def directed_hausdorff(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Directed Hausdorff distance ``h(A, B) = max_a min_b dRMS(a, b)``."""
    matrix = rmsd_matrix(np.asarray(traj_a, dtype=np.float64),
                         np.asarray(traj_b, dtype=np.float64))
    return float(matrix.min(axis=1).max())


def hausdorff(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Symmetric Hausdorff distance (vectorized).

    Builds the full 2D-RMSD matrix once and takes min/max reductions in
    both directions; this is what each PSA task computes for its block of
    trajectory pairs.
    """
    matrix = rmsd_matrix(np.asarray(traj_a, dtype=np.float64),
                         np.asarray(traj_b, dtype=np.float64))
    forward = matrix.min(axis=1).max()
    backward = matrix.min(axis=0).max()
    return float(max(forward, backward))


def hausdorff_earlybreak(traj_a: np.ndarray, traj_b: np.ndarray,
                         shuffle_seed: int | None = 0, *,
                         method: str | None = None,
                         block_size: int = 64) -> float:
    """Hausdorff distance with the early-break optimization.

    Implements the algorithm of Taha & Hanbury (IEEE TPAMI 2015) cited by
    the paper: for each point of ``A`` we scan points of ``B`` and break as
    soon as a distance below the current global maximum ``cmax`` is found
    (that point can no longer contribute to the directed Hausdorff value).
    Scanning order is randomized once, which on structured inputs makes
    early breaks much more likely.

    On the kernel engine's default ``"vectorized"`` method the scan is
    *blockwise*: squared-distance sub-blocks of ``block_size x
    block_size`` frames are evaluated with the same GEMM expansion as
    :func:`repro.analysis.rmsd.rmsd_matrix` and the cmax pruning is
    applied per block — a running minimum over the processed columns
    retires a row as soon as it drops to ``cmax``, and fully retired row
    blocks skip their remaining column blocks.  ``method="reference"``
    keeps the literal per-pair double loop.  Both return exactly the
    symmetric Hausdorff distance; only the work performed changes.
    """
    flat_a, flat_b, n_atoms = _flatten_paths(traj_a, traj_b)
    rng = np.random.default_rng(shuffle_seed) if shuffle_seed is not None else None
    if resolve_kernel_method(method) == "reference":
        forward = _directed_earlybreak_reference(flat_a, flat_b, rng)
        backward = _directed_earlybreak_reference(flat_b, flat_a, rng)
        return float(np.sqrt(max(forward, backward) / n_atoms))
    forward = _directed_earlybreak_blockwise(flat_a, flat_b, rng, block_size)
    backward = _directed_earlybreak_blockwise(flat_b, flat_a, rng, block_size)
    return float(np.sqrt(max(forward, backward) / n_atoms))


def _directed_earlybreak_reference(points_a: np.ndarray, points_b: np.ndarray,
                                   rng: np.random.Generator | None) -> float:
    """The per-pair early-break scan exactly as Taha & Hanbury write it."""
    order_a = np.arange(points_a.shape[0])
    order_b = np.arange(points_b.shape[0])
    if rng is not None:
        rng.shuffle(order_a)
        rng.shuffle(order_b)
    cmax = 0.0
    for ia in order_a:
        a_vec = points_a[ia]
        cmin = np.inf
        # squared distances to all of B for this point, but scanned with
        # early break in the randomized order
        for ib in order_b:
            diff = a_vec - points_b[ib]
            d2 = float(diff @ diff)
            if d2 < cmin:
                cmin = d2
                if cmin <= cmax:
                    break
        if cmin > cmax and np.isfinite(cmin):
            cmax = cmin
    return cmax


def _exact_row_min_d2(a_vec: np.ndarray, points_b: np.ndarray) -> float:
    """Exact min squared distance from one row to all of B, per-pair formula.

    Recomputes with the same ``diff @ diff`` accumulation the reference
    scan uses, so the blockwise kernel returns a bit-identical distance
    (GEMM-expanded block values can differ from the per-pair formula in
    the last ulp).
    """
    best = np.inf
    for b_vec in points_b:
        diff = a_vec - b_vec
        d2 = float(diff @ diff)
        if d2 < best:
            best = d2
    return best


def _directed_earlybreak_blockwise(points_a: np.ndarray, points_b: np.ndarray,
                                   rng: np.random.Generator | None,
                                   block: int) -> float:
    """Blockwise directed early-break pass; returns the exact directed d2.

    Processes the (shuffled) distance matrix in ``block x block`` tiles:
    each row block keeps a running minimum over the column blocks seen so
    far and retires rows whose minimum has dropped to ``cmax`` (they can
    no longer raise the directed maximum), so later column blocks shrink
    — the array-native analogue of the reference scan's inner break.
    """
    if block < 1:
        raise ValueError("block_size must be >= 1")
    order_a = np.arange(points_a.shape[0])
    order_b = np.arange(points_b.shape[0])
    if rng is not None:
        rng.shuffle(order_a)
        rng.shuffle(order_b)
    a = points_a[order_a]
    b = points_b[order_b]
    # remove the common offset before the |a|^2 + |b|^2 - 2ab expansion:
    # pairwise differences are unchanged, but without it a large shared
    # coordinate magnitude cancels catastrophically in the expansion and
    # the pruning would retire the wrong rows
    shift = (a.sum(axis=0) + b.sum(axis=0)) / (a.shape[0] + b.shape[0])
    a = a - shift
    b = b - shift
    sq_a = np.einsum("ij,ij->i", a, a)
    sq_b = np.einsum("ij,ij->i", b, b)
    n_a, n_b = a.shape[0], b.shape[0]
    cmax = 0.0
    best_row = -1
    for i0 in range(0, n_a, block):
        i1 = min(i0 + block, n_a)
        row_min = np.full(i1 - i0, np.inf)
        active = np.arange(i1 - i0)
        for j0 in range(0, n_b, block):
            j1 = min(j0 + block, n_b)
            rows = a[i0:i1][active]
            d2 = (sq_a[i0:i1][active][:, None] + sq_b[j0:j1][None, :]
                  - 2.0 * (rows @ b[j0:j1].T))
            np.maximum(d2, 0.0, out=d2)
            row_min[active] = np.minimum(row_min[active], d2.min(axis=1))
            active = active[row_min[active] > cmax]
            if not active.size:
                break
        if active.size:
            mins = row_min[active]
            winner = int(np.argmax(mins))
            if mins[winner] > cmax:
                cmax = float(mins[winner])
                best_row = int(order_a[i0 + active[winner]])
    if best_row < 0:
        return 0.0
    # the pruning decisions above used GEMM-expanded block values; the
    # returned distance is recomputed with the reference per-pair formula
    return _exact_row_min_d2(points_a[best_row], points_b)


def window_minima(win_a: np.ndarray, win_b: np.ndarray,
                  tile: int = 256) -> tuple[np.ndarray, np.ndarray]:
    """Per-frame minimum squared distances between two frame windows.

    The decomposable core of the streamed Hausdorff computation: for a
    window pair it returns ``(row_min_d2, col_min_d2)`` — for each frame
    of ``win_a`` the minimum squared flat-coordinate distance to any
    frame of ``win_b``, and vice versa.  Squared distances are evaluated
    with the explicit difference formula
    ``((a - b) ** 2).sum()`` rather than the GEMM expansion of
    :func:`repro.analysis.rmsd.rmsd_matrix`: the difference formula is
    *partition independent* (each entry depends only on its own frame
    pair), so minima merged across any window partition via
    ``np.minimum`` are bit-identical to a single whole-trajectory pass —
    the property the streamed driver's bit-identity guarantee rests on.
    GEMM values are shape-dependent in the last ulp and would break it.

    Parameters
    ----------
    win_a, win_b : numpy.ndarray
        Frame windows of shape ``(m, n_atoms, 3)`` over the same atoms.
    tile : int, optional
        Frames per evaluation tile (bounds the ``tile x tile x 3N``
        temporary; tiling does not change any entry).

    Returns
    -------
    tuple of numpy.ndarray
        ``(row_min_d2, col_min_d2)`` with shapes ``(len(win_a),)`` and
        ``(len(win_b),)``.
    """
    if tile < 1:
        raise ValueError("tile must be >= 1")
    flat_a, flat_b, _ = _flatten_paths(win_a, win_b)
    n_a, n_b = flat_a.shape[0], flat_b.shape[0]
    row_min = np.full(n_a, np.inf)
    col_min = np.full(n_b, np.inf)
    for i0 in range(0, n_a, tile):
        i1 = min(i0 + tile, n_a)
        for j0 in range(0, n_b, tile):
            j1 = min(j0 + tile, n_b)
            diff = flat_a[i0:i1, None, :] - flat_b[None, j0:j1, :]
            # (diff ** 2).sum(axis=-1), NOT einsum/GEMM: numpy's pairwise
            # summation over the contiguous last axis reduces each (i, j)
            # entry in the same order as the per-pair rmsd formula, so
            # the result is bit-identical to the naive double loop
            d2 = (diff * diff).sum(axis=-1)
            row_min[i0:i1] = np.minimum(row_min[i0:i1], d2.min(axis=1))
            col_min[j0:j1] = np.minimum(col_min[j0:j1], d2.min(axis=0))
    return row_min, col_min


def hausdorff_windowed(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Symmetric Hausdorff distance via the partition-independent kernel.

    Batch counterpart of the streamed driver: computes
    :func:`window_minima` over the whole pair and reduces.  Because each
    squared distance uses the per-pair difference formula, this equals
    :func:`hausdorff_naive` bit-for-bit, and a streamed run that merges
    per-window minima reproduces it bit-identically regardless of the
    window partition — which is why it is the metric the streaming path
    accepts.
    """
    a = np.asarray(traj_a, dtype=np.float64)
    b = np.asarray(traj_b, dtype=np.float64)
    row_min, col_min = window_minima(a, b)
    n_atoms = a.shape[1]
    return float(np.sqrt(max(row_min.max(), col_min.max()) / n_atoms))


def discrete_frechet(traj_a: np.ndarray, traj_b: np.ndarray) -> float:
    """Discrete Fréchet distance between two trajectories under ``dRMS``.

    Dynamic-programming formulation (Eiter & Mannila 1994).  The Fréchet
    distance is always >= the Hausdorff distance for the same pair; the
    property-based tests assert this invariant.
    """
    matrix = rmsd_matrix(np.asarray(traj_a, dtype=np.float64),
                         np.asarray(traj_b, dtype=np.float64))
    n_a, n_b = matrix.shape
    ca = np.full((n_a, n_b), -1.0)
    ca[0, 0] = matrix[0, 0]
    for i in range(1, n_a):
        ca[i, 0] = max(ca[i - 1, 0], matrix[i, 0])
    for j in range(1, n_b):
        ca[0, j] = max(ca[0, j - 1], matrix[0, j])
    for i in range(1, n_a):
        row_prev = ca[i - 1]
        row_cur = ca[i]
        for j in range(1, n_b):
            row_cur[j] = max(
                min(row_prev[j], row_prev[j - 1], row_cur[j - 1]),
                matrix[i, j],
            )
    return float(ca[-1, -1])
