"""Pairwise distance kernels used by the Leaflet Finder's edge discovery.

Approaches 1–3 of the paper discover graph edges by computing the pairwise
distance between (blocks of) atom positions with ``scipy.spatial.distance
.cdist`` and keeping the pairs closer than the cutoff.  This module wraps
that kernel plus a memory-bounded chunked variant and helpers for
converting the result into edge lists with *global* atom indices (needed
because each task only sees its 2-D block of the full system).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "pairwise_distances",
    "edges_from_block",
    "edges_within_cutoff",
    "self_edges_within_cutoff",
    "iter_distance_blocks",
    "estimate_pairwise_memory",
]


def _as_positions(block) -> np.ndarray:
    """Coerce a position block to a float64 array.

    Accepts anything with a ``resolve()`` method (duck-typed so this
    module stays independent of the frameworks layer), which lets the
    kernels consume :class:`~repro.frameworks.shm.BlockRef` handles from
    the shared-memory data plane without an extra copy.
    """
    resolver = getattr(block, "resolve", None)
    if resolver is not None and not isinstance(block, np.ndarray):
        block = resolver()
    return np.asarray(block, dtype=np.float64)


def pairwise_distances(block_a: np.ndarray, block_b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two position blocks.

    Thin wrapper over :func:`scipy.spatial.distance.cdist` (the paper uses
    exactly this call); both blocks must be ``(n, 3)`` arrays or
    shared-memory refs to them.
    """
    a = _as_positions(block_a)
    b = _as_positions(block_b)
    if a.ndim != 2 or a.shape[1] != 3 or b.ndim != 2 or b.shape[1] != 3:
        raise ValueError("position blocks must have shape (n, 3)")
    return cdist(a, b)


def edges_from_block(
    block_a: np.ndarray,
    block_b: np.ndarray,
    cutoff: float,
    offset_a: int = 0,
    offset_b: int = 0,
    *,
    exclude_self: bool = False,
) -> np.ndarray:
    """Find edges between two position blocks.

    Returns a ``(n_edges, 2)`` integer array of *global* atom index pairs
    ``(offset_a + i, offset_b + j)`` with ``dist(a_i, b_j) <= cutoff``.

    Parameters
    ----------
    exclude_self:
        When the two blocks are the same part of the system (diagonal block
        of the 2-D decomposition), set this to drop ``i == j`` self edges
        and keep each undirected edge once (``i < j``).
    """
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    dist = pairwise_distances(block_a, block_b)
    if exclude_self and dist.shape[0] != dist.shape[1]:
        raise ValueError("exclude_self requires the two blocks to be the same block")
    rows, cols = np.nonzero(dist <= cutoff)
    if exclude_self:
        # keep strictly upper-triangular entries only: drops i == j self
        # edges and keeps each undirected edge exactly once (filtering the
        # hit list beats materializing an n x n triangular mask)
        keep = rows < cols
        rows, cols = rows[keep], cols[keep]
    edges = np.column_stack([rows + offset_a, cols + offset_b]).astype(np.int64)
    return edges


def edges_within_cutoff(
    positions_a: np.ndarray,
    positions_b: np.ndarray,
    cutoff: float,
    offset_a: int = 0,
    offset_b: int = 0,
) -> np.ndarray:
    """Edges between two disjoint position blocks (no self-edge handling)."""
    return edges_from_block(positions_a, positions_b, cutoff, offset_a, offset_b)


def self_edges_within_cutoff(positions: np.ndarray, cutoff: float,
                             offset: int = 0) -> np.ndarray:
    """Edges inside a single position block, each undirected edge once."""
    return edges_from_block(positions, positions, cutoff, offset, offset,
                            exclude_self=True)


def iter_distance_blocks(
    positions: np.ndarray,
    block_size: int,
) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
    """Iterate over the upper-triangular 2-D blocks of an all-pairs problem.

    Yields ``(row_offset, col_offset, block_rows, block_cols)`` for every
    block with ``row_offset <= col_offset``; this is the task decomposition
    of the paper's approaches 2–4 (each yielded block is one map task).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (n_atoms, 3)")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n = positions.shape[0]
    starts = list(range(0, n, block_size))
    for i in starts:
        rows = positions[i:i + block_size]
        for j in starts:
            if j < i:
                continue
            yield i, j, rows, positions[j:j + block_size]


def estimate_pairwise_memory(n_rows: int, n_cols: int, dtype_bytes: int = 8) -> int:
    """Bytes needed by one dense ``cdist`` block of shape ``(n_rows, n_cols)``.

    The paper notes that ``cdist``'s double-precision output forced the 4M
    atom dataset to use 42k tasks for approach 3; this helper makes that
    constraint explicit so the planner can size blocks to a memory budget.
    """
    if n_rows < 0 or n_cols < 0:
        raise ValueError("matrix dimensions must be non-negative")
    return int(n_rows) * int(n_cols) * int(dtype_bytes)
