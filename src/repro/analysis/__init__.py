"""MD analysis kernels: RMSD, Hausdorff/Fréchet, pairwise distances,
neighbor search, graph components and sub-setting.

These are the serial building blocks that the task-parallel algorithms in
:mod:`repro.core` distribute across frameworks.
"""

from .engine import (
    KERNEL_METHODS,
    get_kernel_method,
    resolve_kernel_method,
    set_kernel_method,
    use_kernel_method,
)
from .rmsd import (
    kabsch_rmsd,
    kabsch_rotation,
    pairwise_rmsd_loop,
    rmsd,
    rmsd_matrix,
    rmsd_matrix_blocked,
    rmsd_trajectory,
)
from .hausdorff import (
    directed_hausdorff,
    discrete_frechet,
    hausdorff,
    hausdorff_earlybreak,
    hausdorff_naive,
)
from .pairwise import (
    edges_from_block,
    edges_within_cutoff,
    estimate_pairwise_memory,
    iter_distance_blocks,
    pairwise_distances,
    self_edges_within_cutoff,
)
from .neighbors import (
    BallTree,
    GridNeighborSearch,
    brute_force_radius,
    brute_force_radius_pairs,
    radius_edges,
)
from .graph import (
    DisjointSet,
    components_to_labels,
    connected_components,
    connected_components_networkx,
    label_components,
    merge_component_sets,
    normalize_components,
)
from .subsetting import (
    stride_frames,
    subset_atoms,
    subset_ensemble,
    subset_frames,
    subset_trajectory,
    within_sphere,
)

__all__ = [
    "KERNEL_METHODS",
    "get_kernel_method",
    "set_kernel_method",
    "resolve_kernel_method",
    "use_kernel_method",
    "rmsd",
    "kabsch_rmsd",
    "kabsch_rotation",
    "rmsd_trajectory",
    "rmsd_matrix",
    "rmsd_matrix_blocked",
    "pairwise_rmsd_loop",
    "hausdorff",
    "hausdorff_naive",
    "hausdorff_earlybreak",
    "directed_hausdorff",
    "discrete_frechet",
    "pairwise_distances",
    "edges_from_block",
    "edges_within_cutoff",
    "self_edges_within_cutoff",
    "iter_distance_blocks",
    "estimate_pairwise_memory",
    "BallTree",
    "GridNeighborSearch",
    "brute_force_radius",
    "brute_force_radius_pairs",
    "radius_edges",
    "DisjointSet",
    "label_components",
    "connected_components",
    "connected_components_networkx",
    "components_to_labels",
    "merge_component_sets",
    "normalize_components",
    "subset_atoms",
    "subset_frames",
    "stride_frames",
    "subset_trajectory",
    "subset_ensemble",
    "within_sphere",
]
