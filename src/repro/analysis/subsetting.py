"""Sub-setting: isolating parts of interest of an MD simulation.

The paper lists sub-setting among the "commonly used algorithms for
analyzing MD trajectories" (section 2): extract a subset of atoms and/or
frames from a trajectory, typically to shrink the data before a more
expensive analysis.  These helpers operate directly on position arrays and
on :class:`~repro.trajectory.trajectory.Trajectory` objects and are used by
the examples and by the PSA pre-processing step (selecting the atoms the
Hausdorff distance is computed over).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trajectory.selections import select
from ..trajectory.trajectory import Trajectory, TrajectoryEnsemble

__all__ = [
    "subset_atoms",
    "subset_frames",
    "stride_frames",
    "subset_trajectory",
    "subset_ensemble",
    "within_sphere",
]


def subset_atoms(positions: np.ndarray, indices: Sequence[int]) -> np.ndarray:
    """Restrict ``(n_frames, n_atoms, 3)`` positions to the given atom indices."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 3:
        raise ValueError("positions must have shape (n_frames, n_atoms, 3)")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= positions.shape[1]):
        raise IndexError("atom index out of range")
    return positions[:, idx, :]


def subset_frames(positions: np.ndarray, frame_indices: Sequence[int]) -> np.ndarray:
    """Restrict positions to the given frame indices (in the given order)."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 3:
        raise ValueError("positions must have shape (n_frames, n_atoms, 3)")
    idx = np.asarray(frame_indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= positions.shape[0]):
        raise IndexError("frame index out of range")
    return positions[idx]


def stride_frames(positions: np.ndarray, stride: int, offset: int = 0) -> np.ndarray:
    """Take every ``stride``-th frame starting at ``offset``."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    positions = np.asarray(positions, dtype=np.float64)
    return positions[offset::stride]


def subset_trajectory(trajectory: Trajectory, selection: str | None = None,
                      frame_slice: slice | None = None,
                      stride: int | None = None) -> Trajectory:
    """Apply atom selection, frame slicing and/or striding to a trajectory.

    The operations compose in that order.  Returns a new trajectory.
    """
    result = trajectory
    if selection is not None:
        indices = select(selection, result.topology,
                         result.positions[0] if result.n_frames else None)
        result = result.select_atoms_by_index(indices)
    if frame_slice is not None:
        result = result.slice_frames(frame_slice)
    if stride is not None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        result = result.slice_frames(slice(None, None, stride))
    return result


def subset_ensemble(ensemble: TrajectoryEnsemble, selection: str | None = None,
                    stride: int | None = None) -> TrajectoryEnsemble:
    """Apply the same sub-setting to every member of an ensemble."""
    out = TrajectoryEnsemble()
    for traj in ensemble:
        out.add(subset_trajectory(traj, selection=selection, stride=stride))
    return out


def within_sphere(positions: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Indices of atoms within ``radius`` of ``center`` in a single frame."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError("positions must have shape (n_atoms, 3)")
    if radius <= 0:
        raise ValueError("radius must be positive")
    center = np.asarray(center, dtype=np.float64).reshape(3)
    d2 = ((positions - center) ** 2).sum(axis=1)
    return np.flatnonzero(d2 <= radius * radius)
