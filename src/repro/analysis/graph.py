"""Graph kernels: connected components and partial-component merging.

The Leaflet Finder's second stage computes the connected components of the
neighbor graph.  The paper's four approaches differ in *where* this
happens:

* approaches 1 and 2 gather the full edge list on one process and run a
  sequential connected-components pass (:func:`connected_components`),
* approaches 3 and 4 compute *partial* components inside every map task
  and merge them in the reduce phase whenever two partial components share
  an atom (:func:`merge_component_sets`), which shrinks the shuffled data
  from O(edges) to O(atoms).

Both a union-find implementation and a thin networkx wrapper are provided;
the union-find is the default (no per-edge Python object overhead), the
networkx variant serves as a cross-check in tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "DisjointSet",
    "connected_components",
    "connected_components_networkx",
    "components_to_labels",
    "merge_component_sets",
    "normalize_components",
]


class DisjointSet:
    """Union-find over integer elements 0..n-1 with path compression + union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> List[np.ndarray]:
        """All disjoint sets as sorted index arrays (singletons included)."""
        roots = np.array([self.find(i) for i in range(self.n)], dtype=np.int64)
        out: List[np.ndarray] = []
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        if self.n == 0:
            return out
        boundaries = np.flatnonzero(np.diff(sorted_roots)) + 1
        for chunk in np.split(order, boundaries):
            out.append(np.sort(chunk))
        return out


def connected_components(edges: np.ndarray, n_nodes: int,
                         include_singletons: bool = True) -> List[np.ndarray]:
    """Connected components of an undirected graph given as an edge list.

    Parameters
    ----------
    edges:
        ``(n_edges, 2)`` integer array; nodes are 0..n_nodes-1.
    n_nodes:
        Total number of nodes (needed because isolated atoms have no edges).
    include_singletons:
        Whether to return single-node components (isolated atoms).

    Returns
    -------
    list of numpy.ndarray
        Components sorted by decreasing size, each a sorted array of node ids.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n_nodes):
        raise ValueError("edge list references nodes outside [0, n_nodes)")
    dsu = DisjointSet(n_nodes)
    for a, b in edges:
        dsu.union(int(a), int(b))
    groups = dsu.groups()
    if not include_singletons:
        groups = [g for g in groups if len(g) > 1]
    groups.sort(key=lambda g: (-len(g), int(g[0]) if len(g) else 0))
    return groups


def connected_components_networkx(edges: np.ndarray, n_nodes: int,
                                  include_singletons: bool = True) -> List[np.ndarray]:
    """Same as :func:`connected_components` but via networkx (cross-check)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(map(tuple, np.asarray(edges, dtype=np.int64).reshape(-1, 2)))
    groups = [np.array(sorted(c), dtype=np.int64) for c in nx.connected_components(graph)]
    if not include_singletons:
        groups = [g for g in groups if len(g) > 1]
    groups.sort(key=lambda g: (-len(g), int(g[0]) if len(g) else 0))
    return groups


def components_to_labels(components: Sequence[np.ndarray], n_nodes: int) -> np.ndarray:
    """Convert a component list to a per-node label array.

    Nodes not contained in any component get label ``-1``.  Component ids
    follow the order of ``components`` (0 for the first/largest, ...).
    """
    labels = np.full(n_nodes, -1, dtype=np.int64)
    for comp_id, comp in enumerate(components):
        comp = np.asarray(comp, dtype=np.int64)
        if comp.size and (comp.min() < 0 or comp.max() >= n_nodes):
            raise ValueError("component references nodes outside [0, n_nodes)")
        labels[comp] = comp_id
    return labels


def normalize_components(components: Iterable[Iterable[int]]) -> List[np.ndarray]:
    """Sort each component and order components by (-size, smallest member)."""
    normalized = [np.array(sorted(set(int(x) for x in comp)), dtype=np.int64)
                  for comp in components if len(list(comp)) > 0]
    normalized = [c for c in normalized if c.size > 0]
    normalized.sort(key=lambda g: (-len(g), int(g[0])))
    return normalized


def merge_component_sets(component_sets: Iterable[Iterable[Iterable[int]]]) -> List[np.ndarray]:
    """Merge partial connected components from multiple tasks (reduce phase).

    Each element of ``component_sets`` is the list of components one map
    task found on its block of the graph.  Two partial components belong to
    the same global component whenever they share at least one atom; this
    is exactly the reduce step of the paper's approaches 3 and 4.

    The merge itself is a union-find over a relabeling of the atoms that
    appear in any partial component, so its cost is proportional to the
    total number of (atom, partial-component) memberships — O(n), not
    O(edges).
    """
    partials: List[np.ndarray] = []
    for comp_set in component_sets:
        for comp in comp_set:
            arr = np.array(sorted(set(int(x) for x in comp)), dtype=np.int64)
            if arr.size:
                partials.append(arr)
    if not partials:
        return []
    # map the atoms that occur anywhere to a compact index space
    all_atoms = np.unique(np.concatenate(partials))
    index_of = {int(atom): i for i, atom in enumerate(all_atoms)}
    dsu = DisjointSet(len(all_atoms))
    for comp in partials:
        first = index_of[int(comp[0])]
        for atom in comp[1:]:
            dsu.union(first, index_of[int(atom)])
    merged: dict[int, List[int]] = {}
    for atom in all_atoms:
        root = dsu.find(index_of[int(atom)])
        merged.setdefault(root, []).append(int(atom))
    return normalize_components(merged.values())
