"""Graph kernels: connected components and partial-component merging.

The Leaflet Finder's second stage computes the connected components of the
neighbor graph.  The paper's four approaches differ in *where* this
happens:

* approaches 1 and 2 gather the full edge list on one process and run a
  sequential connected-components pass (:func:`connected_components`),
* approaches 3 and 4 compute *partial* components inside every map task
  and merge them in the reduce phase whenever two partial components share
  an atom (:func:`merge_component_sets`), which shrinks the shuffled data
  from O(edges) to O(atoms).

Both kernels run on the kernel engine (:mod:`repro.analysis.engine`):
the default ``"vectorized"`` method propagates minimum labels over the
whole edge array with ``np.minimum.at`` plus pointer jumping — no
per-edge Python work — while ``method="reference"`` keeps the original
union-find loop as the executable specification.  A thin networkx
wrapper serves as an independent cross-check in tests.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import networkx as nx
import numpy as np

from .engine import resolve_kernel_method

__all__ = [
    "DisjointSet",
    "connected_components",
    "connected_components_networkx",
    "components_to_labels",
    "label_components",
    "merge_component_sets",
    "normalize_components",
]


class DisjointSet:
    """Union-find over integer elements 0..n-1 with path compression + union by size."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n = n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression)."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def groups(self) -> List[np.ndarray]:
        """All disjoint sets as sorted index arrays (singletons included)."""
        roots = np.array([self.find(i) for i in range(self.n)], dtype=np.int64)
        out: List[np.ndarray] = []
        order = np.argsort(roots, kind="stable")
        sorted_roots = roots[order]
        if self.n == 0:
            return out
        boundaries = np.flatnonzero(np.diff(sorted_roots)) + 1
        for chunk in np.split(order, boundaries):
            out.append(np.sort(chunk))
        return out


def label_components(edges: np.ndarray, n_nodes: int) -> np.ndarray:
    """Per-node component labels via array-wide minimum-label propagation.

    Every node starts labeled with its own id; each pass lowers both
    endpoints of every edge to their common minimum (``np.minimum.at``
    over the whole edge array at once) and then pointer-jumps
    (``labels = labels[labels]``) until chains are collapsed.  Converges
    in O(log n) passes, so the total work is O((n + e) log n) array
    operations with no per-edge Python involvement.

    Returns
    -------
    numpy.ndarray
        ``(n_nodes,)`` int64 labels; each component is labeled by its
        smallest member id.
    """
    labels = np.arange(n_nodes, dtype=np.int64)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return labels
    e0 = edges[:, 0]
    e1 = edges[:, 1]
    while True:
        before = labels.copy()
        lowest = np.minimum(labels[e0], labels[e1])
        np.minimum.at(labels, e0, lowest)
        np.minimum.at(labels, e1, lowest)
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, before):
            return labels


def _groups_from_labels(labels: np.ndarray, include_singletons: bool) -> List[np.ndarray]:
    """Convert a label array to the canonical component list.

    Components come out sorted by (-size, smallest member), each one an
    ascending array of node ids — the same normal form the reference
    union-find path produces.
    """
    if labels.size == 0:
        return []
    uniq, inverse, counts = np.unique(labels, return_inverse=True, return_counts=True)
    order = np.argsort(inverse, kind="stable")
    groups = np.split(order, np.cumsum(counts)[:-1])
    comp_order = np.lexsort((uniq, -counts))
    return [np.ascontiguousarray(groups[i]) for i in comp_order
            if include_singletons or counts[i] > 1]


def _check_edges(edges: np.ndarray, n_nodes: int) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n_nodes):
        raise ValueError("edge list references nodes outside [0, n_nodes)")
    return edges


def connected_components(edges: np.ndarray, n_nodes: int,
                         include_singletons: bool = True,
                         method: str | None = None) -> List[np.ndarray]:
    """Connected components of an undirected graph given as an edge list.

    Parameters
    ----------
    edges:
        ``(n_edges, 2)`` integer array; nodes are 0..n_nodes-1.
    n_nodes:
        Total number of nodes (needed because isolated atoms have no edges).
    include_singletons:
        Whether to return single-node components (isolated atoms).
    method:
        ``"vectorized"`` (min-label propagation over the whole edge
        array), ``"reference"`` (the per-edge union-find loop), or
        ``None`` for the kernel engine default.

    Returns
    -------
    list of numpy.ndarray
        Components sorted by decreasing size, each a sorted array of node ids.
    """
    edges = _check_edges(edges, n_nodes)
    if resolve_kernel_method(method) == "vectorized":
        return _groups_from_labels(label_components(edges, n_nodes), include_singletons)
    dsu = DisjointSet(n_nodes)
    for a, b in edges:
        dsu.union(int(a), int(b))
    groups = dsu.groups()
    if not include_singletons:
        groups = [g for g in groups if len(g) > 1]
    groups.sort(key=lambda g: (-len(g), int(g[0]) if len(g) else 0))
    return groups


def connected_components_networkx(edges: np.ndarray, n_nodes: int,
                                  include_singletons: bool = True) -> List[np.ndarray]:
    """Same as :func:`connected_components` but via networkx (cross-check)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(map(tuple, np.asarray(edges, dtype=np.int64).reshape(-1, 2)))
    groups = [np.array(sorted(c), dtype=np.int64) for c in nx.connected_components(graph)]
    if not include_singletons:
        groups = [g for g in groups if len(g) > 1]
    groups.sort(key=lambda g: (-len(g), int(g[0]) if len(g) else 0))
    return groups


def components_to_labels(components: Sequence[np.ndarray], n_nodes: int) -> np.ndarray:
    """Convert a component list to a per-node label array.

    Nodes not contained in any component get label ``-1``.  Component ids
    follow the order of ``components`` (0 for the first/largest, ...).
    """
    labels = np.full(n_nodes, -1, dtype=np.int64)
    for comp_id, comp in enumerate(components):
        comp = np.asarray(comp, dtype=np.int64)
        if comp.size and (comp.min() < 0 or comp.max() >= n_nodes):
            raise ValueError("component references nodes outside [0, n_nodes)")
        labels[comp] = comp_id
    return labels


def normalize_components(components: Iterable[Iterable[int]]) -> List[np.ndarray]:
    """Sort each component and order components by (-size, smallest member)."""
    normalized = [np.array(sorted(set(int(x) for x in comp)), dtype=np.int64)
                  for comp in components if len(list(comp)) > 0]
    normalized = [c for c in normalized if c.size > 0]
    normalized.sort(key=lambda g: (-len(g), int(g[0])))
    return normalized


def merge_component_sets(component_sets: Iterable[Iterable[Iterable[int]]],
                         method: str | None = None) -> List[np.ndarray]:
    """Merge partial connected components from multiple tasks (reduce phase).

    Each element of ``component_sets`` is the list of components one map
    task found on its block of the graph.  Two partial components belong to
    the same global component whenever they share at least one atom; this
    is exactly the reduce step of the paper's approaches 3 and 4.

    The merge cost is proportional to the total number of
    (atom, partial-component) memberships — O(n), not O(edges).  On the
    default ``"vectorized"`` method the membership relabeling is one
    ``np.unique(..., return_inverse=True)`` pass and the joining is a
    star-shaped edge array through :func:`label_components`;
    ``method="reference"`` keeps the dict-and-union-find loop.
    """
    if resolve_kernel_method(method) == "reference":
        return _merge_component_sets_reference(component_sets)
    partials: List[np.ndarray] = []
    for comp_set in component_sets:
        for comp in comp_set:
            try:
                arr = np.asarray(comp, dtype=np.int64).ravel()
            except (TypeError, ValueError):  # arbitrary iterables of ints
                arr = np.fromiter((int(x) for x in comp), dtype=np.int64)
            # no per-partial dedup needed: a duplicated member only adds a
            # redundant star edge, which the label propagation absorbs
            if arr.size:
                partials.append(arr)
    if not partials:
        return []
    lengths = np.array([p.size for p in partials], dtype=np.int64)
    all_atoms, inverse = np.unique(np.concatenate(partials), return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    # star edges: each partial's first atom links to the rest of it
    starts = np.cumsum(lengths) - lengths
    rest = np.ones(inverse.size, dtype=bool)
    rest[starts] = False
    edges = np.column_stack([np.repeat(inverse[starts], lengths - 1), inverse[rest]])
    labels = label_components(edges, all_atoms.size)
    return [all_atoms[g] for g in _groups_from_labels(labels, include_singletons=True)]


def _merge_component_sets_reference(
        component_sets: Iterable[Iterable[Iterable[int]]]) -> List[np.ndarray]:
    """The original per-atom dict/union-find merge (executable specification)."""
    partials: List[np.ndarray] = []
    for comp_set in component_sets:
        for comp in comp_set:
            arr = np.array(sorted(set(int(x) for x in comp)), dtype=np.int64)
            if arr.size:
                partials.append(arr)
    if not partials:
        return []
    # map the atoms that occur anywhere to a compact index space
    all_atoms = np.unique(np.concatenate(partials))
    index_of = {int(atom): i for i, atom in enumerate(all_atoms)}
    dsu = DisjointSet(len(all_atoms))
    for comp in partials:
        first = index_of[int(comp[0])]
        for atom in comp[1:]:
            dsu.union(first, index_of[int(atom)])
    merged: dict[int, List[int]] = {}
    for atom in all_atoms:
        root = dsu.find(index_of[int(atom)])
        merged.setdefault(root, []).append(int(atom))
    return normalize_components(merged.values())
