"""Neighbor-search structures for edge discovery.

Approach 4 of the paper ("Tree-Search") replaces the all-pairs ``cdist``
edge discovery with a BallTree fixed-radius query (scikit-learn's
BallTree, Omohundro 1989).  scikit-learn is not a dependency of this
reproduction, so :class:`BallTree` below is a from-scratch implementation
with the two operations the algorithm needs:

* construction over a set of 3-D points, and
* ``query_radius`` — all points within ``r`` of each query point.

Both searchers are **array-backed**: the BallTree stores its nodes in
contiguous ``centers``/``radii``/child-index arrays and answers all
queries at once with an iterative frontier traversal (one NumPy pass per
tree level over every live (query, node) pair, instead of one Python
recursion per query); the uniform grid bins points with a lexsorted
cell-key array and answers queries with ``np.searchsorted`` over the
batched 27-cell stencil.  Results are bit-identical to the brute-force
reference.

The flat-pair surface ``query_radius_pairs`` — parallel ``(query_row,
point_index)`` arrays sorted by query — is what the vectorized
:func:`radius_edges` consumes; ``query_radius`` wraps it into the
classic list-of-arrays view.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "BallTree",
    "GridNeighborSearch",
    "brute_force_radius",
    "brute_force_radius_pairs",
    "radius_edges",
]

#: query rows handled per chunk by the brute-force reference (bounds the
#: dense cdist temporary to ~chunk x n_points doubles)
_BRUTE_CHUNK = 2048


def _grouped_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the Python loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _sort_pairs(q: np.ndarray, p: np.ndarray,
                n_points: int) -> Tuple[np.ndarray, np.ndarray]:
    """Sort flat (query, point) pairs by query then point index.

    Uses one combined integer key so NumPy's stable (radix) integer sort
    applies — measurably faster than ``np.lexsort`` on two keys.
    """
    order = np.argsort(q * np.int64(n_points + 1) + p, kind="stable")
    return q[order], p[order]


def _pairs_to_lists(n_queries: int, q: np.ndarray, p: np.ndarray) -> List[np.ndarray]:
    """Split sorted flat pairs into one sorted index array per query."""
    counts = np.bincount(q, minlength=n_queries) if q.size else np.zeros(n_queries, dtype=np.int64)
    splits = np.cumsum(counts)[:-1]
    return [np.ascontiguousarray(chunk) for chunk in np.split(p, splits)]


def _axis_cell_distance(span: np.ndarray, frac: np.ndarray, h: float) -> np.ndarray:
    """Squared per-axis distance from queries to cells ``span`` offsets away.

    ``frac`` is the query coordinate relative to its own cell's lower
    corner (in ``[0, h)``); offset 0 contributes zero, positive offsets
    measure to the cell's near face on the right, negative to the left.
    """
    gap = np.maximum(span * h - frac[:, None], frac[:, None] - (span + 1) * h)
    gap = np.maximum(gap, 0.0)
    return gap * gap


def _check_queries(queries: np.ndarray, radius: float) -> np.ndarray:
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.ndim != 2 or queries.shape[1] != 3:
        raise ValueError("queries must have shape (m, 3)")
    if radius <= 0:
        raise ValueError("radius must be positive")
    return queries


def brute_force_radius_pairs(points: np.ndarray, queries: np.ndarray,
                             radius: float) -> Tuple[np.ndarray, np.ndarray]:
    """Reference flat pairs: every (query_row, point_index) within ``radius``.

    Evaluated in query chunks so the dense distance block never exceeds
    ``_BRUTE_CHUNK x n_points`` doubles; output order is (query, point)
    ascending, the canonical order every searcher reproduces.
    """
    points = np.asarray(points, dtype=np.float64)
    queries = _check_queries(queries, radius)
    q_chunks: List[np.ndarray] = []
    p_chunks: List[np.ndarray] = []
    for start in range(0, queries.shape[0], _BRUTE_CHUNK):
        block = queries[start:start + _BRUTE_CHUNK]
        rows, cols = np.nonzero(cdist(block, points) <= radius)
        q_chunks.append(rows.astype(np.int64) + start)
        p_chunks.append(cols.astype(np.int64))
    if not q_chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(q_chunks), np.concatenate(p_chunks)


def brute_force_radius(points: np.ndarray, queries: np.ndarray,
                       radius: float) -> List[np.ndarray]:
    """Reference implementation: indices of ``points`` within ``radius`` of each query."""
    queries = _check_queries(queries, radius)
    q, p = brute_force_radius_pairs(points, queries, radius)
    return _pairs_to_lists(queries.shape[0], q, p)


class BallTree:
    """A flat, array-backed BallTree over 3-D points for fixed-radius queries.

    Construction is O(n log n): nodes are split along the dimension of
    largest spread at the median, and every node is one row of the
    contiguous node arrays (``_centers``, ``_radii``, ``_left``/``_right``
    child indices, ``_starts``/``_stops`` slices of the permuted point
    index array ``_idx``).  ``query_radius`` prunes with the same
    ball-distance test as the classic recursion but advances *all* live
    (query, node) pairs one level per NumPy pass.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of points.
    leaf_size:
        Maximum number of points in a leaf; smaller values prune harder but
        build a deeper tree.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 16) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = int(leaf_size)
        self.n_points = points.shape[0]
        self._idx = np.arange(self.n_points, dtype=np.int64)
        self._build()

    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        """Level-synchronous construction: one batch of NumPy passes per level.

        All nodes of a level are processed together — segment means and
        radii via ``np.add.reduceat``/``np.maximum.reduceat`` over the
        level's concatenated point slices, and every splitting node's
        median partition through a single stable ``np.lexsort`` keyed by
        (segment id, split coordinate).  Node ids come out in the same
        breadth-first order a per-node work queue would produce.
        """
        idx = self._idx
        points = self.points
        starts_l: List[np.ndarray] = []
        stops_l: List[np.ndarray] = []
        lefts_l: List[np.ndarray] = []
        rights_l: List[np.ndarray] = []
        centers_l: List[np.ndarray] = []
        radii_l: List[np.ndarray] = []
        if self.n_points:
            seg_start = np.zeros(1, dtype=np.int64)
            seg_stop = np.full(1, self.n_points, dtype=np.int64)
            next_id = 1
        else:
            seg_start = np.empty(0, dtype=np.int64)
            seg_stop = np.empty(0, dtype=np.int64)
            next_id = 0
        while seg_start.size:
            lengths = seg_stop - seg_start
            # the level's points, concatenated in segment order
            positions = np.repeat(seg_start, lengths) + _grouped_arange(lengths)
            pts = points[idx[positions]]
            seg_of = np.repeat(np.arange(seg_start.size, dtype=np.int64), lengths)
            offsets = np.cumsum(lengths) - lengths
            centers = np.add.reduceat(pts, offsets, axis=0) / lengths[:, None]
            delta = pts - centers[seg_of]
            d2 = np.einsum("ij,ij->i", delta, delta)
            radii = np.sqrt(np.maximum.reduceat(d2, offsets))
            centers_l.append(centers)
            radii_l.append(radii)
            starts_l.append(seg_start)
            stops_l.append(seg_stop)
            internal = lengths > self.leaf_size
            n_internal = int(internal.sum())
            left = np.full(seg_start.size, -1, dtype=np.int64)
            right = np.full(seg_start.size, -1, dtype=np.int64)
            # children are allocated consecutively per splitting node, in
            # node order — exactly the ids a FIFO work queue would assign
            left[internal] = next_id + 2 * np.arange(n_internal, dtype=np.int64)
            right[internal] = left[internal] + 1
            lefts_l.append(left)
            rights_l.append(right)
            next_id += 2 * n_internal
            if not n_internal:
                break
            # split every internal segment along its widest dimension at
            # the median: one stable lexsort keyed by (segment, coordinate)
            # applies all the per-node argsorts at once
            spread = (np.maximum.reduceat(pts, offsets, axis=0)
                      - np.minimum.reduceat(pts, offsets, axis=0))
            dim = np.argmax(spread, axis=1)
            split_mask = internal[seg_of]
            split_pos = positions[split_mask]
            key = pts[np.arange(pts.shape[0]), dim[seg_of]][split_mask]
            order = np.lexsort((key, seg_of[split_mask]))
            idx[split_pos] = idx[split_pos][order]
            halves = lengths[internal] // 2
            seg_mid = seg_start[internal] + halves
            seg_start, seg_stop = (
                np.column_stack([seg_start[internal], seg_mid]).reshape(-1),
                np.column_stack([seg_mid, seg_stop[internal]]).reshape(-1),
            )
        if next_id:
            self._centers = np.concatenate(centers_l, axis=0)
            self._radii = np.concatenate(radii_l)
            self._left = np.concatenate(lefts_l)
            self._right = np.concatenate(rights_l)
            self._starts = np.concatenate(starts_l)
            self._stops = np.concatenate(stops_l)
        else:
            self._centers = np.empty((0, 3), dtype=np.float64)
            self._radii = np.empty(0, dtype=np.float64)
            self._left = np.empty(0, dtype=np.int64)
            self._right = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._stops = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _frontier(self, queries: np.ndarray, radius: float):
        """Iterate pruned (leaf_nodes, leaf_queries) frontiers level by level.

        Yields, per tree level, the surviving leaf-pair arrays after the
        ball-distance pruning test (``d2 <= (radius + node_radius)^2``,
        evaluated without square roots); internal pairs are expanded into
        their two children for the next level.
        """
        pair_nodes = np.zeros(queries.shape[0], dtype=np.int64)
        pair_q = np.arange(queries.shape[0], dtype=np.int64)
        while pair_nodes.size:
            delta = queries[pair_q] - self._centers[pair_nodes]
            d2 = np.einsum("ij,ij->i", delta, delta)
            reach = radius + self._radii[pair_nodes]
            keep = d2 <= reach * reach
            nodes = pair_nodes[keep]
            qs = pair_q[keep]
            is_leaf = self._left[nodes] < 0
            yield nodes[is_leaf], qs[is_leaf]
            inner = nodes[~is_leaf]
            inner_q = qs[~is_leaf]
            pair_nodes = np.concatenate([self._left[inner], self._right[inner]])
            pair_q = np.concatenate([inner_q, inner_q])

    def query_radius_pairs(self, queries: np.ndarray,
                           radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All (query_row, point_index) pairs within ``radius``, sorted by query.

        This is the flat, allocation-friendly form of :meth:`query_radius`:
        two parallel int64 arrays ordered by (query row, point index).
        """
        queries = _check_queries(queries, radius)
        hits_q: List[np.ndarray] = []
        hits_p: List[np.ndarray] = []
        if self.n_points and queries.shape[0]:
            r2 = radius * radius
            for leaves, leaf_q in self._frontier(queries, radius):
                if not leaves.size:
                    continue
                starts = self._starts[leaves]
                counts = self._stops[leaves] - starts
                pos = np.repeat(starts, counts) + _grouped_arange(counts)
                cand_p = self._idx[pos]
                cand_q = np.repeat(leaf_q, counts)
                delta = self.points[cand_p] - queries[cand_q]
                mask = np.einsum("ij,ij->i", delta, delta) <= r2
                hits_q.append(cand_q[mask])
                hits_p.append(cand_p[mask])
        if not hits_q:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return _sort_pairs(np.concatenate(hits_q), np.concatenate(hits_p),
                           self.n_points)

    def query_radius(self, queries: np.ndarray, radius: float) -> List[np.ndarray]:
        """Indices of tree points within ``radius`` of each query point.

        Returns a list with one sorted index array per query row.
        """
        queries = _check_queries(queries, radius)
        q, p = self.query_radius_pairs(queries, radius)
        return _pairs_to_lists(queries.shape[0], q, p)

    def count_within(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Number of tree points within ``radius`` of each query point.

        Counts during the frontier traversal instead of materializing
        index lists: a node ball entirely inside the query sphere
        contributes its subtree count wholesale, and only boundary leaves
        are distance-tested.
        """
        queries = _check_queries(queries, radius)
        counts = np.zeros(queries.shape[0], dtype=np.int64)
        if not self.n_points or not queries.shape[0]:
            return counts
        r2 = radius * radius
        pair_nodes = np.zeros(queries.shape[0], dtype=np.int64)
        pair_q = np.arange(queries.shape[0], dtype=np.int64)
        while pair_nodes.size:
            delta = queries[pair_q] - self._centers[pair_nodes]
            d2 = np.einsum("ij,ij->i", delta, delta)
            radii = self._radii[pair_nodes]
            margin = radius - radii
            inside = (margin >= 0.0) & (d2 <= margin * margin)
            if inside.any():
                sizes = self._stops[pair_nodes[inside]] - self._starts[pair_nodes[inside]]
                np.add.at(counts, pair_q[inside], sizes)
            reach = radius + radii
            keep = ~inside & (d2 <= reach * reach)
            nodes = pair_nodes[keep]
            qs = pair_q[keep]
            is_leaf = self._left[nodes] < 0
            leaves = nodes[is_leaf]
            if leaves.size:
                starts = self._starts[leaves]
                leaf_counts = self._stops[leaves] - starts
                pos = np.repeat(starts, leaf_counts) + _grouped_arange(leaf_counts)
                cand_p = self._idx[pos]
                cand_q = np.repeat(qs[is_leaf], leaf_counts)
                delta = self.points[cand_p] - queries[cand_q]
                mask = np.einsum("ij,ij->i", delta, delta) <= r2
                if mask.any():
                    np.add.at(counts, cand_q[mask], 1)
            inner = nodes[~is_leaf]
            inner_q = qs[~is_leaf]
            pair_nodes = np.concatenate([self._left[inner], self._right[inner]])
            pair_q = np.concatenate([inner_q, inner_q])
        return counts


class GridNeighborSearch:
    """Uniform-grid (cell list) fixed-radius neighbor search.

    Bins points into cubic cells of edge ``cell_size`` (default: the query
    radius) and answers radius queries by scanning the 27 neighboring
    cells.  The bins are a lexsorted array of scalar cell keys, so a
    batch of queries gathers every stencil bucket with two
    ``np.searchsorted`` calls instead of per-cell dict lookups.  For
    homogeneous systems such as lipid bilayers this is O(n) build and
    O(1) expected per query; included as an ablation against the
    BallTree.
    """

    #: dense start/count tables are built while ``prod(dims)`` stays below
    #: ``max(_DENSE_MIN_CELLS, _DENSE_CELLS_PER_POINT * n)``; pathologically
    #: sparse clouds fall back to ``np.searchsorted`` over the sorted keys
    _DENSE_MIN_CELLS = 4096
    _DENSE_CELLS_PER_POINT = 16

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.n_points = points.shape[0]
        self._origin = points.min(axis=0) if self.n_points else np.zeros(3)
        self._cell_starts: np.ndarray | None = None
        self._cell_counts: np.ndarray | None = None
        if self.n_points:
            cells = np.floor((points - self._origin) / self.cell_size).astype(np.int64)
            self._dims = cells.max(axis=0) + 1
            keys = self._encode(cells)
            self._order = np.argsort(keys, kind="stable")
            self._sorted_keys = keys[self._order]
            n_cells = int(self._dims.prod())
            if n_cells <= max(self._DENSE_MIN_CELLS,
                              self._DENSE_CELLS_PER_POINT * self.n_points):
                # dense per-cell bucket tables: O(1) lookups per stencil cell
                self._cell_counts = np.bincount(self._sorted_keys, minlength=n_cells)
                self._cell_starts = np.concatenate(
                    [np.zeros(1, dtype=np.int64),
                     np.cumsum(self._cell_counts)[:-1]])
        else:
            self._dims = np.ones(3, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._sorted_keys = np.empty(0, dtype=np.int64)

    def _encode(self, cells: np.ndarray) -> np.ndarray:
        """Scalar cell key for in-range integer cell coordinates."""
        return (cells[..., 0] * self._dims[1] + cells[..., 1]) * self._dims[2] + cells[..., 2]

    def _stencil_buckets(self, queries: np.ndarray,
                         radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """Bucket (start, count) arrays, shape ``(m, S)``, for every stencil cell.

        The stencil key of cell ``(cx+a, cy+b, cz+c)`` separates into three
        per-axis terms, so the ``(m, S)`` key matrix is one broadcast sum of
        three ``(m, 2*reach+1)`` arrays instead of ``(m, S, 3)`` temporaries.
        """
        m = queries.shape[0]
        h = self.cell_size
        reach = int(np.ceil(radius / h))
        span = np.arange(-reach, reach + 1, dtype=np.int64)
        width = span.size
        local = queries - self._origin
        qcells = np.floor(local / h).astype(np.int64)
        ax = qcells[:, 0, None] + span
        ay = qcells[:, 1, None] + span
        az = qcells[:, 2, None] + span
        # per-axis distance from the query to each offset cell's slab; the
        # broadcast sum lower-bounds the query-to-cell box distance, so
        # cells farther than the radius are dropped before any gathering
        frac = local - qcells * h
        d_x = _axis_cell_distance(span, frac[:, 0], h)
        d_y = _axis_cell_distance(span, frac[:, 1], h)
        d_z = _axis_cell_distance(span, frac[:, 2], h)
        near = (d_x[:, :, None, None] + d_y[:, None, :, None]
                + d_z[:, None, None, :]) <= radius * radius
        valid = ((ax >= 0) & (ax < self._dims[0]))[:, :, None, None] \
            & ((ay >= 0) & (ay < self._dims[1]))[:, None, :, None] \
            & ((az >= 0) & (az < self._dims[2]))[:, None, None, :] \
            & near
        keys = (ax * (self._dims[1] * self._dims[2]))[:, :, None, None] \
            + (ay * self._dims[2])[:, None, :, None] \
            + az[:, None, None, :]
        valid = valid.reshape(m, width ** 3)
        keys = keys.reshape(m, width ** 3)
        if self._cell_starts is not None:
            keys = np.where(valid, keys, 0)
            starts = self._cell_starts[keys]
            counts = np.where(valid, self._cell_counts[keys], 0)
        else:
            keys = np.where(valid, keys, -1)
            starts = np.searchsorted(self._sorted_keys, keys, side="left")
            stops = np.searchsorted(self._sorted_keys, keys, side="right")
            counts = np.where(valid, stops - starts, 0)
        return starts, counts

    def query_radius_pairs(self, queries: np.ndarray,
                           radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All (query_row, point_index) pairs within ``radius``, sorted by query."""
        queries = _check_queries(queries, radius)
        empty = np.empty(0, dtype=np.int64)
        if not self.n_points or not queries.shape[0]:
            return empty, empty.copy()
        starts, counts = self._stencil_buckets(queries, radius)
        n_stencil = counts.shape[1]
        counts = counts.ravel()
        pos = np.repeat(starts.ravel(), counts) + _grouped_arange(counts)
        cand_p = self._order[pos]
        cell_q = np.repeat(np.arange(queries.shape[0], dtype=np.int64), n_stencil)
        cand_q = np.repeat(cell_q, counts)
        delta = self.points[cand_p] - queries[cand_q]
        mask = np.einsum("ij,ij->i", delta, delta) <= radius * radius
        return _sort_pairs(cand_q[mask], cand_p[mask], self.n_points)

    def query_radius(self, queries: np.ndarray, radius: float) -> List[np.ndarray]:
        """Indices of stored points within ``radius`` of each query point."""
        queries = _check_queries(queries, radius)
        q, p = self.query_radius_pairs(queries, radius)
        return _pairs_to_lists(queries.shape[0], q, p)

    def count_within(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Number of stored points within ``radius`` of each query point."""
        queries = _check_queries(queries, radius)
        q, _p = self.query_radius_pairs(queries, radius)
        return np.bincount(q, minlength=queries.shape[0]).astype(np.int64)

    #: subset fraction above which the half-stencil self-join (n·d/2
    #: distance tests, then a membership filter) beats querying the full
    #: stencil for every subset point (m·d tests); measured crossover on
    #: a 20k uniform cloud is ~0.7
    _SUBSET_JOIN_FRACTION = 0.7

    def subset_join_pairs(self, query_indices: np.ndarray,
                          radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """Edges ``(q, p)``, ``q`` in ``query_indices`` and ``p > q``.

        The ``query_indices`` form of :meth:`self_join_pairs` (approach
        4 hands every task a slice of query atoms searched against the
        global grid).  The wanted edge set is exactly the unordered
        close pairs whose *smaller* endpoint is a query — a pair with
        both endpoints in the subset is emitted from its smaller index
        and suppressed (``p > q``) from its larger, and a cross pair is
        emitted only when the query is the smaller side.  For subsets
        above :data:`_SUBSET_JOIN_FRACTION` of the points it is
        therefore cheaper to run the half-stencil self-join — each
        unordered pair distance-tested exactly once instead of once per
        in-subset endpoint — and filter on the smaller endpoint's
        membership; smaller subsets keep the per-query stencil scan.
        Output is bit-identical either way: grouped by the queries'
        order in ``query_indices``, neighbor index ascending.

        Parameters
        ----------
        query_indices : numpy.ndarray
            Unique indices into the stored points (the grid side always
            contains *all* points).
        radius : float
            Search radius.

        Returns
        -------
        q, p : numpy.ndarray
            Parallel int64 arrays of edge endpoints, ``p > q``.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        query_indices = np.asarray(query_indices, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        m = query_indices.size
        if m == 0 or not self.n_points:
            return empty, empty.copy()
        if np.unique(query_indices).size != m:
            raise ValueError("query_indices must be unique for the subset join")
        if m < self._SUBSET_JOIN_FRACTION * self.n_points:
            # per-query stencil scan; its (row, point) order filtered on
            # p > q is already the canonical output order
            q, p = self.query_radius_pairs(self.points[query_indices], radius)
            qg = query_indices[q]
            keep = p > qg
            return np.ascontiguousarray(qg[keep]), np.ascontiguousarray(p[keep])
        lo, hi = self.self_join_pairs(radius)
        in_set = np.zeros(self.n_points, dtype=bool)
        in_set[query_indices] = True
        keep = in_set[lo]
        qs, ps = lo[keep], hi[keep]
        if not qs.size:
            return empty, empty.copy()
        # canonical order: group position in query_indices, then neighbor
        rank = np.full(self.n_points, -1, dtype=np.int64)
        rank[query_indices] = np.arange(m, dtype=np.int64)
        order = np.argsort(rank[qs] * np.int64(self.n_points + 1) + ps,
                           kind="stable")
        return qs[order], ps[order]

    def self_join_pairs(self, radius: float) -> Tuple[np.ndarray, np.ndarray]:
        """All stored-point pairs ``(i, j)``, ``i < j``, closer than ``radius``.

        The classic half cell list: every unordered cell pair is visited
        once (own cell plus the lexicographically forward half of the
        stencil), so each candidate pair is distance-tested exactly once —
        half the work of querying every point against the full stencil.
        Output matches :func:`radius_edges` with ``method="brute"``:
        sorted by ``(i, j)``.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        empty = np.empty(0, dtype=np.int64)
        if self.n_points < 2:
            return empty, empty.copy()
        h = self.cell_size
        reach = int(np.ceil(radius / h))
        # occupied cells as groups of the key-sorted point order
        uniq, gstart, gcount = np.unique(self._sorted_keys,
                                         return_index=True, return_counts=True)
        d1, d2 = int(self._dims[1]), int(self._dims[2])
        cx = uniq // (d1 * d2)
        rem = uniq - cx * (d1 * d2)
        cy = rem // d2
        cz = rem - cy * d2
        span = np.arange(-reach, reach + 1, dtype=np.int64)
        offs = np.stack(np.meshgrid(span, span, span, indexing="ij"),
                        axis=-1).reshape(-1, 3)
        forward = (offs[:, 0] > 0) | ((offs[:, 0] == 0) & (
            (offs[:, 1] > 0) | ((offs[:, 1] == 0) & (offs[:, 2] >= 0))))
        offs = offs[forward]
        # minimum box-to-box distance per offset prunes far stencil cells
        gap = np.maximum(np.abs(offs) - 1, 0) * h
        offs = offs[(gap * gap).sum(axis=1) <= radius * radius]
        own = (offs == 0).all(axis=1)                 # the (0, 0, 0) offset
        tx = cx[:, None] + offs[:, 0]
        ty = cy[:, None] + offs[:, 1]
        tz = cz[:, None] + offs[:, 2]                 # (G, F)
        valid = ((tx >= 0) & (tx < self._dims[0])
                 & (ty >= 0) & (ty < self._dims[1])
                 & (tz >= 0) & (tz < self._dims[2]))
        tkey = (tx * d1 + ty) * d2 + tz
        if self._cell_starts is not None:
            tkey = np.where(valid, tkey, 0)
            bstart = self._cell_starts[tkey]
            bcount = np.where(valid, self._cell_counts[tkey], 0)
        else:
            tkey = np.where(valid, tkey, -1)
            bstart = np.searchsorted(self._sorted_keys, tkey, side="left")
            bstop = np.searchsorted(self._sorted_keys, tkey, side="right")
            bcount = np.where(valid, bstop - bstart, 0)
        n_pairs = (gcount[:, None] * bcount).ravel()  # candidates per cell pair
        r = _grouped_arange(n_pairs)
        b_sizes = np.repeat(bcount.ravel(), n_pairs)
        a_local = r // b_sizes
        b_local = r - a_local * b_sizes
        a_pos = np.repeat(np.repeat(gstart, offs.shape[0]), n_pairs) + a_local
        b_pos = np.repeat(bstart.ravel(), n_pairs) + b_local
        pi = self._order[a_pos]
        pj = self._order[b_pos]
        delta = self.points[pi] - self.points[pj]
        keep = np.einsum("ij,ij->i", delta, delta) <= radius * radius
        # own-cell products contain both orders and the diagonal: keep i < j
        keep &= (pi < pj) | ~np.repeat(np.tile(own, uniq.size), n_pairs)
        pi, pj = pi[keep], pj[keep]
        lo = np.minimum(pi, pj)
        hi = np.maximum(pi, pj)
        return _sort_pairs(lo, hi, self.n_points)


def radius_edges(points: np.ndarray, cutoff: float, *,
                 query_indices: Sequence[int] | np.ndarray | None = None,
                 method: str = "balltree", leaf_size: int = 16) -> np.ndarray:
    """Undirected edges (i, j), i < j, between points closer than ``cutoff``.

    The edge array is assembled from the searcher's flat (query, point)
    pairs with one vectorized filter — no per-query Python loop — and is
    bit-identical across methods: grouped by query (in ``query_indices``
    order), neighbor index ascending within each group.

    Parameters
    ----------
    points:
        ``(n, 3)`` positions of the full system.
    query_indices:
        If given, only edges incident to these points are searched for (the
        tree still contains *all* points).  This is how approach 4
        parallelizes: every task owns a slice of query atoms but queries
        against the global tree.
    method:
        ``"balltree"``, ``"grid"`` or ``"brute"``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if query_indices is None:
        if method == "grid":
            # full self-join: the half-stencil cell list touches every
            # unordered pair once instead of querying the full stencil
            i, j = GridNeighborSearch(points, cell_size=cutoff).self_join_pairs(cutoff)
            if not i.size:
                return np.empty((0, 2), dtype=np.int64)
            return np.column_stack([i, j])
        query_indices = np.arange(n, dtype=np.int64)
    else:
        query_indices = np.asarray(query_indices, dtype=np.int64)
    queries = points[query_indices]
    if method == "balltree":
        q, p = BallTree(points, leaf_size=leaf_size).query_radius_pairs(queries, cutoff)
    elif method == "grid":
        grid = GridNeighborSearch(points, cell_size=cutoff)
        if np.unique(query_indices).size == query_indices.size:
            # subset join: large query subsets run the half-stencil
            # self-join (each unordered pair tested once) plus a
            # membership filter; small ones the per-query stencil scan
            i, j = grid.subset_join_pairs(query_indices, cutoff)
            if not i.size:
                return np.empty((0, 2), dtype=np.int64)
            return np.column_stack([i, j])
        # duplicate query indices: the per-query scan reproduces the
        # duplicates exactly like the other methods
        q, p = grid.query_radius_pairs(queries, cutoff)
    elif method == "brute":
        q, p = brute_force_radius_pairs(points, queries, cutoff)
    else:
        raise ValueError(f"unknown neighbor search method {method!r}")
    qi = query_indices[q]
    keep = p > qi  # i < j, drops self edge
    if not keep.any():
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([qi[keep], p[keep]])
