"""Neighbor-search structures for edge discovery.

Approach 4 of the paper ("Tree-Search") replaces the all-pairs ``cdist``
edge discovery with a BallTree fixed-radius query (scikit-learn's
BallTree, Omohundro 1989).  scikit-learn is not a dependency of this
reproduction, so :class:`BallTree` below is a from-scratch implementation
with the two operations the algorithm needs:

* construction over a set of 3-D points, and
* ``query_radius`` — all points within ``r`` of each query point.

A uniform-grid (cell list) search, the classic MD neighbor-search
structure, is included as a second implementation for the ablation
benchmarks, plus a brute-force reference used to verify both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy.spatial.distance import cdist

__all__ = ["BallTree", "GridNeighborSearch", "brute_force_radius", "radius_edges"]


def brute_force_radius(points: np.ndarray, queries: np.ndarray,
                       radius: float) -> List[np.ndarray]:
    """Reference implementation: indices of ``points`` within ``radius`` of each query."""
    points = np.asarray(points, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")
    dist = cdist(queries, points)
    return [np.flatnonzero(row <= radius) for row in dist]


@dataclass
class _Node:
    """A BallTree node: a bounding ball plus children or a leaf point set."""

    center: np.ndarray
    radius: float
    indices: np.ndarray | None = None   # leaf only
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class BallTree:
    """A BallTree over 3-D points supporting fixed-radius queries.

    Construction is O(n log n): nodes are split along the dimension of
    largest spread at the median.  ``query_radius`` walks the tree pruning
    every ball farther than ``radius`` from the query point.

    Parameters
    ----------
    points:
        ``(n, 3)`` array of points.
    leaf_size:
        Maximum number of points in a leaf; smaller values prune harder but
        build a deeper tree.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 32) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self.points = points
        self.leaf_size = int(leaf_size)
        self.n_points = points.shape[0]
        if self.n_points == 0:
            self._root: _Node | None = None
        else:
            self._root = self._build(np.arange(self.n_points, dtype=np.int64))

    # ------------------------------------------------------------------ #
    def _make_node(self, indices: np.ndarray) -> _Node:
        pts = self.points[indices]
        center = pts.mean(axis=0)
        radius = float(np.sqrt(((pts - center) ** 2).sum(axis=1).max())) if len(indices) else 0.0
        return _Node(center=center, radius=radius)

    def _build(self, indices: np.ndarray) -> _Node:
        node = self._make_node(indices)
        if len(indices) <= self.leaf_size:
            node.indices = indices
            return node
        pts = self.points[indices]
        spread = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spread))
        order = np.argsort(pts[:, dim], kind="stable")
        half = len(indices) // 2
        left_idx = indices[order[:half]]
        right_idx = indices[order[half:]]
        if len(left_idx) == 0 or len(right_idx) == 0:
            # degenerate (all points identical along every axis): make a leaf
            node.indices = indices
            return node
        node.left = self._build(left_idx)
        node.right = self._build(right_idx)
        return node

    # ------------------------------------------------------------------ #
    def query_radius(self, queries: np.ndarray, radius: float) -> List[np.ndarray]:
        """Indices of tree points within ``radius`` of each query point.

        Returns a list with one sorted index array per query row.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != 3:
            raise ValueError("queries must have shape (m, 3)")
        if radius <= 0:
            raise ValueError("radius must be positive")
        results: List[np.ndarray] = []
        for q in queries:
            hits: List[np.ndarray] = []
            if self._root is not None:
                self._query_single(self._root, q, radius, hits)
            if hits:
                found = np.sort(np.concatenate(hits))
            else:
                found = np.empty(0, dtype=np.int64)
            results.append(found)
        return results

    def _query_single(self, node: _Node, q: np.ndarray, radius: float,
                      hits: List[np.ndarray]) -> None:
        dist_to_center = float(np.sqrt(((q - node.center) ** 2).sum()))
        if dist_to_center > radius + node.radius:
            return  # ball entirely outside the query sphere
        if node.is_leaf:
            pts = self.points[node.indices]
            d2 = ((pts - q) ** 2).sum(axis=1)
            mask = d2 <= radius * radius
            if mask.any():
                hits.append(node.indices[mask])
            return
        assert node.left is not None and node.right is not None
        self._query_single(node.left, q, radius, hits)
        self._query_single(node.right, q, radius, hits)

    def count_within(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Number of tree points within ``radius`` of each query point."""
        return np.array([len(idx) for idx in self.query_radius(queries, radius)],
                        dtype=np.int64)


class GridNeighborSearch:
    """Uniform-grid (cell list) fixed-radius neighbor search.

    Bins points into cubic cells of edge ``cell_size`` (default: the query
    radius) and answers radius queries by scanning the 27 neighboring
    cells.  For homogeneous systems such as lipid bilayers this is O(n)
    build and O(1) expected per query; included as an ablation against the
    BallTree.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError("points must have shape (n, 3)")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.n_points = points.shape[0]
        self._origin = points.min(axis=0) if self.n_points else np.zeros(3)
        cells = np.floor((points - self._origin) / self.cell_size).astype(np.int64) if self.n_points else np.empty((0, 3), dtype=np.int64)
        self._cells: dict[tuple[int, int, int], list[int]] = {}
        for idx, cell in enumerate(map(tuple, cells)):
            self._cells.setdefault(cell, []).append(idx)

    def query_radius(self, queries: np.ndarray, radius: float) -> List[np.ndarray]:
        """Indices of stored points within ``radius`` of each query point."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            queries = queries[None, :]
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        results: List[np.ndarray] = []
        offsets = range(-reach, reach + 1)
        for q in queries:
            cell = tuple(np.floor((q - self._origin) / self.cell_size).astype(np.int64))
            candidates: List[int] = []
            for dx in offsets:
                for dy in offsets:
                    for dz in offsets:
                        key = (cell[0] + dx, cell[1] + dy, cell[2] + dz)
                        bucket = self._cells.get(key)
                        if bucket:
                            candidates.extend(bucket)
            if candidates:
                cand = np.asarray(candidates, dtype=np.int64)
                d2 = ((self.points[cand] - q) ** 2).sum(axis=1)
                results.append(np.sort(cand[d2 <= radius * radius]))
            else:
                results.append(np.empty(0, dtype=np.int64))
        return results


def radius_edges(points: np.ndarray, cutoff: float, *, query_indices: Sequence[int] | np.ndarray | None = None,
                 method: str = "balltree", leaf_size: int = 32) -> np.ndarray:
    """Undirected edges (i, j), i < j, between points closer than ``cutoff``.

    Parameters
    ----------
    points:
        ``(n, 3)`` positions of the full system.
    query_indices:
        If given, only edges incident to these points are searched for (the
        tree still contains *all* points).  This is how approach 4
        parallelizes: every task owns a slice of query atoms but queries
        against the global tree.
    method:
        ``"balltree"``, ``"grid"`` or ``"brute"``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if query_indices is None:
        query_indices = np.arange(n, dtype=np.int64)
    else:
        query_indices = np.asarray(query_indices, dtype=np.int64)
    queries = points[query_indices]
    if method == "balltree":
        searcher = BallTree(points, leaf_size=leaf_size)
        neighbor_lists = searcher.query_radius(queries, cutoff)
    elif method == "grid":
        searcher = GridNeighborSearch(points, cell_size=cutoff)
        neighbor_lists = searcher.query_radius(queries, cutoff)
    elif method == "brute":
        neighbor_lists = brute_force_radius(points, queries, cutoff)
    else:
        raise ValueError(f"unknown neighbor search method {method!r}")
    edge_chunks: List[np.ndarray] = []
    for qi, neighbors in zip(query_indices, neighbor_lists):
        if neighbors.size == 0:
            continue
        keep = neighbors[neighbors > qi]  # i < j, drops self edge
        if keep.size:
            edge_chunks.append(np.column_stack([np.full(keep.size, qi, dtype=np.int64), keep]))
    if not edge_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(edge_chunks, axis=0)
