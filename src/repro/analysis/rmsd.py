"""RMSD kernels.

Three flavours are needed by the paper's algorithms:

* :func:`rmsd` — plain coordinate RMSD between two frames (no fitting),
  which is the ``dRMS`` metric used inside the Hausdorff distance
  (Algorithm 1, line 5),
* :func:`kabsch_rmsd` — minimum RMSD after optimal superposition
  (Kabsch algorithm), the quantity MDAnalysis' ``rms.RMSD`` computes, and
* :func:`rmsd_matrix` / :func:`rmsd_matrix_blocked` — the all-pairs
  2D-RMSD between the frames of two trajectories, the inner kernel of PSA
  and of the CPPTraj comparison (Figure 6).  The vectorized variant plays
  the role of the "compiled" CPPTraj implementation: it evaluates the
  whole ``n1 x n2`` block with matrix algebra instead of a Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rmsd",
    "kabsch_rotation",
    "kabsch_rmsd",
    "rmsd_trajectory",
    "rmsd_matrix",
    "rmsd_matrix_blocked",
    "pairwise_rmsd_loop",
]


def _as_frame(x: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"{name} must have shape (n_atoms, 3), got {arr.shape}")
    return arr


def rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Coordinate RMSD between two frames (no superposition).

    This is ``dRMS(frame1, frame2)`` in Algorithm 1 of the paper:
    ``sqrt(mean(|a_i - b_i|^2))`` over atoms.
    """
    a = _as_frame(a, "a")
    b = _as_frame(b, "b")
    if a.shape != b.shape:
        raise ValueError(f"frames have different shapes: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.sqrt((diff * diff).sum() / a.shape[0]))


def kabsch_rotation(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Optimal rotation matrix aligning centered ``mobile`` onto centered ``reference``.

    Implements the Kabsch algorithm via SVD; the returned ``R`` satisfies
    ``mobile @ R ≈ reference`` in the least-squares sense (both inputs are
    assumed already centered at the origin).
    """
    mobile = _as_frame(mobile, "mobile")
    reference = _as_frame(reference, "reference")
    if mobile.shape != reference.shape:
        raise ValueError("mobile and reference must have the same shape")
    covariance = mobile.T @ reference
    u, _s, vt = np.linalg.svd(covariance)
    sign = np.sign(np.linalg.det(u @ vt))
    d = np.diag([1.0, 1.0, sign])
    return u @ d @ vt


def kabsch_rmsd(a: np.ndarray, b: np.ndarray) -> float:
    """Minimum RMSD between two frames after optimal superposition."""
    a = _as_frame(a, "a")
    b = _as_frame(b, "b")
    if a.shape != b.shape:
        raise ValueError(f"frames have different shapes: {a.shape} vs {b.shape}")
    a_c = a - a.mean(axis=0)
    b_c = b - b.mean(axis=0)
    rotation = kabsch_rotation(a_c, b_c)
    return rmsd(a_c @ rotation, b_c)


def rmsd_trajectory(positions: np.ndarray, reference: np.ndarray | None = None,
                    superposition: bool = False) -> np.ndarray:
    """Per-frame RMSD of a trajectory against a reference frame.

    Parameters
    ----------
    positions:
        ``(n_frames, n_atoms, 3)`` trajectory positions.
    reference:
        ``(n_atoms, 3)`` reference frame; the first frame when omitted.
    superposition:
        Use the Kabsch-minimised RMSD instead of the plain coordinate RMSD.

    Returns
    -------
    numpy.ndarray
        ``(n_frames,)`` array of RMSD values.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 3 or positions.shape[2] != 3:
        raise ValueError("positions must have shape (n_frames, n_atoms, 3)")
    if reference is None:
        reference = positions[0]
    reference = _as_frame(reference, "reference")
    if superposition:
        if positions.shape[1] != reference.shape[0]:
            raise ValueError("reference must have the trajectory's atom count")
        # batched Kabsch: all frames at once — stacked 3x3 covariances via
        # einsum, one batched SVD, and a batched rotation apply — instead
        # of a Python loop over frames
        centered = positions - positions.mean(axis=1, keepdims=True)
        ref_centered = reference - reference.mean(axis=0)
        covariances = np.einsum("fai,aj->fij", centered, ref_centered)
        u, _s, vt = np.linalg.svd(covariances)
        # proper rotations only: flip the last singular direction where
        # det(u @ vt) is negative (the classic Kabsch sign correction)
        signs = np.sign(np.linalg.det(u @ vt))
        u[:, :, 2] *= signs[:, None]
        rotations = u @ vt
        diff = centered @ rotations - ref_centered[None]
        return np.sqrt((diff * diff).sum(axis=(1, 2)) / positions.shape[1])
    diff = positions - reference[None]
    return np.sqrt((diff * diff).sum(axis=(1, 2)) / positions.shape[1])


def pairwise_rmsd_loop(traj_a: np.ndarray, traj_b: np.ndarray) -> np.ndarray:
    """Naive double-loop all-pairs RMSD matrix between two trajectories.

    This mirrors the per-pair structure of Algorithm 1 and is kept as the
    reference implementation for the vectorized kernels (and as the
    "unoptimized" baseline in the Figure 6 ablation).
    """
    traj_a = np.asarray(traj_a, dtype=np.float64)
    traj_b = np.asarray(traj_b, dtype=np.float64)
    _check_traj_pair(traj_a, traj_b)
    out = np.empty((traj_a.shape[0], traj_b.shape[0]), dtype=np.float64)
    for i, frame_a in enumerate(traj_a):
        for j, frame_b in enumerate(traj_b):
            out[i, j] = rmsd(frame_a, frame_b)
    return out


def rmsd_matrix(traj_a: np.ndarray, traj_b: np.ndarray) -> np.ndarray:
    """Vectorized all-pairs (2D) RMSD matrix between two trajectories.

    Uses the expansion ``|a - b|^2 = |a|^2 + |b|^2 - 2 a.b`` over frames
    flattened to ``3N``-dimensional vectors, so the whole matrix is one
    GEMM plus broadcasting — the same trick a compiled implementation
    (CPPTraj's 2D-RMSD) exploits.

    Returns
    -------
    numpy.ndarray
        ``(n_frames_a, n_frames_b)`` matrix ``D[i, j] = dRMS(a_i, b_j)``.
    """
    traj_a = np.asarray(traj_a, dtype=np.float64)
    traj_b = np.asarray(traj_b, dtype=np.float64)
    _check_traj_pair(traj_a, traj_b)
    n_atoms = traj_a.shape[1]
    flat_a = traj_a.reshape(traj_a.shape[0], -1)
    flat_b = traj_b.reshape(traj_b.shape[0], -1)
    sq_a = (flat_a * flat_a).sum(axis=1)
    sq_b = (flat_b * flat_b).sum(axis=1)
    cross = flat_a @ flat_b.T
    sq_dist = sq_a[:, None] + sq_b[None, :] - 2.0 * cross
    np.maximum(sq_dist, 0.0, out=sq_dist)  # guard tiny negative round-off
    return np.sqrt(sq_dist / n_atoms)


def rmsd_matrix_blocked(traj_a: np.ndarray, traj_b: np.ndarray,
                        block: int = 32) -> np.ndarray:
    """Blocked all-pairs RMSD matrix.

    Identical result to :func:`rmsd_matrix` but evaluated block by block,
    bounding the size of the temporary ``cross`` matrix.  This is the
    memory-friendly variant used when the trajectories are long enough
    that the full GEMM temporary would not fit comfortably in memory.
    """
    traj_a = np.asarray(traj_a, dtype=np.float64)
    traj_b = np.asarray(traj_b, dtype=np.float64)
    _check_traj_pair(traj_a, traj_b)
    if block < 1:
        raise ValueError("block must be >= 1")
    n_a, n_b = traj_a.shape[0], traj_b.shape[0]
    out = np.empty((n_a, n_b), dtype=np.float64)
    for i0 in range(0, n_a, block):
        i1 = min(i0 + block, n_a)
        for j0 in range(0, n_b, block):
            j1 = min(j0 + block, n_b)
            out[i0:i1, j0:j1] = rmsd_matrix(traj_a[i0:i1], traj_b[j0:j1])
    return out


def _check_traj_pair(traj_a: np.ndarray, traj_b: np.ndarray) -> None:
    if traj_a.ndim != 3 or traj_a.shape[2] != 3:
        raise ValueError(f"traj_a must have shape (n_frames, n_atoms, 3), got {traj_a.shape}")
    if traj_b.ndim != 3 or traj_b.shape[2] != 3:
        raise ValueError(f"traj_b must have shape (n_frames, n_atoms, 3), got {traj_b.shape}")
    if traj_a.shape[1] != traj_b.shape[1]:
        raise ValueError(
            "trajectories must have the same number of atoms: "
            f"{traj_a.shape[1]} vs {traj_b.shape[1]}"
        )
