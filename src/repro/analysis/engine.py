"""Kernel engine: selects between reference and vectorized kernel variants.

Several analysis kernels exist in two equivalent implementations:

* ``"reference"`` — the literal per-element Python formulation (the
  executable specification: union-find loops, per-query tree recursion,
  the Taha & Hanbury scan written as a double loop).  Slow, obviously
  correct, and what every vectorized variant is verified against.
* ``"vectorized"`` — the array-native formulation (batched frontier
  traversal, min-label propagation, blockwise early-break) that does the
  same work through NumPy and is the default everywhere.

Kernels that offer both take a ``method`` keyword; passing ``None``
(the default) defers to the engine-wide default, which experiments and
benchmarks flip with :func:`use_kernel_method` to report the
reference-vs-vectorized ablation without threading a flag through every
call site:

>>> from repro.analysis.engine import use_kernel_method
>>> with use_kernel_method("reference"):
...     pass  # every method=None kernel call in here runs the reference
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "KERNEL_METHODS",
    "get_kernel_method",
    "set_kernel_method",
    "resolve_kernel_method",
    "use_kernel_method",
]

#: The two kernel engine variants every dual-implementation kernel offers.
KERNEL_METHODS = ("reference", "vectorized")

# process-wide (not thread-local) on purpose: the task frameworks run map
# tasks on worker threads, and an ablation that flips the engine must
# reach the kernels *inside* those tasks, not just the driver thread
_current_method = "vectorized"


def _check(method: str) -> str:
    if method not in KERNEL_METHODS:
        raise ValueError(
            f"unknown kernel method {method!r}; choose from {KERNEL_METHODS}"
        )
    return method


def get_kernel_method() -> str:
    """Current engine-wide default method (``"vectorized"`` unless overridden)."""
    return _current_method


def set_kernel_method(method: str) -> None:
    """Set the engine-wide default method (affects every thread)."""
    global _current_method
    _current_method = _check(method)


def resolve_kernel_method(method: str | None) -> str:
    """Resolve an explicit ``method`` argument (``None`` -> engine default)."""
    if method is None:
        return get_kernel_method()
    return _check(method)


@contextmanager
def use_kernel_method(method: str) -> Iterator[str]:
    """Temporarily switch the engine default (restores the prior value)."""
    previous = get_kernel_method()
    set_kernel_method(method)
    try:
        yield method
    finally:
        set_kernel_method(previous)
