"""repro: task-parallel analysis of molecular dynamics trajectories.

A reproduction of Paraskevakos et al., *Task-parallel Analysis of
Molecular Dynamics Trajectories* (ICPP 2018): PSA (Hausdorff) and the
Leaflet Finder implemented over four task-parallel framework substrates
(Spark-, Dask-, RADICAL-Pilot- and MPI-style), plus the benchmark harness
that regenerates every figure and table of the paper's evaluation.

Quickstart
----------
>>> from repro import paper_psa_ensemble, psa
>>> ensemble = paper_psa_ensemble("small", 16, scale=0.02)   # doctest: +SKIP
>>> matrix, report = psa(ensemble, framework="dask")          # doctest: +SKIP

See ``examples/`` for runnable scenarios and ``README.md`` for the full
architecture overview.
"""

from .version import PAPER, __version__
from .core import (
    DistanceMatrix,
    LeafletFinder,
    LeafletResult,
    RunReport,
    compare_frameworks,
    compare_leaflet_approaches,
    leaflet_finder,
    leaflet_serial,
    psa,
    psa_serial,
    recommend_framework,
    run_leaflet_finder,
    run_leaflet_stream,
    run_psa,
    run_psa_windows,
    stream_windows,
)
from .frameworks import (
    DaskLiteClient,
    MPIFramework,
    PilotFramework,
    SparkLiteContext,
    TaskFramework,
    make_framework,
)
from .trajectory import (
    StreamingEnsemble,
    Trajectory,
    TrajectoryEnsemble,
    Universe,
    make_bilayer,
    make_bilayer_universe,
    paper_leaflet_system,
    open_streaming_ensemble,
    paper_psa_ensemble,
)

__all__ = [
    "__version__",
    "PAPER",
    # core API
    "psa",
    "psa_serial",
    "run_psa",
    "run_psa_windows",
    "stream_windows",
    "leaflet_finder",
    "leaflet_serial",
    "run_leaflet_finder",
    "run_leaflet_stream",
    "LeafletFinder",
    "compare_frameworks",
    "compare_leaflet_approaches",
    "recommend_framework",
    "DistanceMatrix",
    "LeafletResult",
    "RunReport",
    # frameworks
    "TaskFramework",
    "make_framework",
    "SparkLiteContext",
    "DaskLiteClient",
    "PilotFramework",
    "MPIFramework",
    # data
    "Trajectory",
    "TrajectoryEnsemble",
    "Universe",
    "paper_psa_ensemble",
    "StreamingEnsemble",
    "open_streaming_ensemble",
    "make_bilayer",
    "make_bilayer_universe",
    "paper_leaflet_system",
]
