"""Shared helpers for the experiment drivers.

Every ``figN_*`` module exposes:

* ``modeled_rows()`` — the paper-scale configuration swept through the
  calibrated performance model (this regenerates the published figure's
  series), and
* ``measured_rows()`` — a laptop-scale live run of the same code path on
  the real substrates (small synthetic data, real wall clocks), used by
  the pytest-benchmark harness and to sanity-check the model's shape.

``main()`` prints both as aligned text tables.
"""

from __future__ import annotations

import argparse
from typing import Iterable, Mapping, Sequence

__all__ = ["format_rows", "print_rows", "standard_argparser", "geometric_factor"]


def format_rows(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                float_fmt: str = "{:.3f}") -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    def fmt(value):
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)
    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    lines = ["  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)),
             "  ".join("-" * w for w in widths)]
    lines += ["  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in table]
    return "\n".join(lines)


def print_rows(title: str, rows: Sequence[Mapping],
               columns: Sequence[str] | None = None) -> None:
    """Print a titled table."""
    print(f"\n== {title} ==")
    print(format_rows(rows, columns))


def standard_argparser(description: str) -> argparse.ArgumentParser:
    """Argument parser shared by the experiment entry points."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--live", action="store_true",
                        help="also run the laptop-scale live measurement")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker threads for live runs (default: 4)")
    return parser


def geometric_factor(values: Iterable[float]) -> float:
    """Geometric mean ratio between consecutive values (sweep growth factor)."""
    values = [float(v) for v in values]
    if len(values) < 2:
        raise ValueError("need at least two values")
    ratios = [values[i + 1] / values[i] for i in range(len(values) - 1) if values[i] > 0]
    if not ratios:
        raise ValueError("values must be positive")
    prod = 1.0
    for r in ratios:
        prod *= r
    return prod ** (1.0 / len(ratios))
