"""Figure 9 — RADICAL-Pilot running Leaflet Finder approach 2.

Paper setup: approach 2 (task API + 2-D partitioning) on RADICAL-Pilot
for the 131k, 262k and 524k atom systems, 32-256 cores.  Published
findings: runtimes (roughly 200-600 s) are dominated by RADICAL-Pilot's
per-unit overheads — they are similar regardless of the system size — and
are worst on a single 32-core node; adding nodes improves the runtime
substantially because units are dispatched to more agents concurrently.

``measured_rows`` runs approach 2 on the pilot substrate with a non-zero
simulated database latency so the same overhead-dominated behaviour is
observable at laptop scale.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.leaflet import leaflet_task_2d
from ..frameworks.pilot import PilotFramework
from ..perfmodel.machines import WRANGLER
from ..perfmodel.scaling import PAPER_LEAFLET_CORE_COUNTS, model_leaflet_runtime
from ..trajectory.bilayer import BilayerSpec, make_bilayer
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]

PAPER_ATOM_COUNTS = (131_072, 262_144, 524_288)


def modeled_rows(atom_counts: Sequence[int] = PAPER_ATOM_COUNTS,
                 core_counts: Sequence[int] = PAPER_LEAFLET_CORE_COUNTS,
                 n_tasks: int = 1024) -> List[dict]:
    """Paper-scale modeled RADICAL-Pilot runtimes for approach 2."""
    rows: List[dict] = []
    for n_atoms in atom_counts:
        for cores in core_counts:
            runtime = model_leaflet_runtime("pilot", "task-2d", WRANGLER,
                                            cores=cores, n_atoms=n_atoms,
                                            n_tasks=n_tasks)
            rows.append({
                "framework": "pilot",
                "approach": "task-2d",
                "n_atoms": n_atoms,
                "cores": cores,
                "nodes": WRANGLER.nodes_for_cores(cores),
                "n_tasks": n_tasks,
                "runtime_s": runtime,
            })
    return rows


def measured_rows(n_atoms: int = 1500, cutoff: float = 15.0, n_tasks: int = 24,
                  workers: int = 4, database_latency_s: float = 0.002) -> List[dict]:
    """Laptop-scale live run on the pilot substrate, with and without DB latency."""
    positions, _labels = make_bilayer(BilayerSpec(n_atoms=n_atoms, seed=13))
    rows: List[dict] = []
    for latency in (0.0, database_latency_s):
        fw = PilotFramework(executor="threads", workers=workers,
                            database_latency_s=latency)
        _result, report = leaflet_task_2d(positions, cutoff, fw, n_tasks=n_tasks)
        db_stats = next((v for k, v in report.metrics.events if k == "database"), {})
        rows.append({
            "database_latency_s": latency,
            "n_atoms": n_atoms,
            "n_tasks": report.n_tasks,
            "wall_time_s": report.wall_time_s,
            "overhead_s": report.metrics.overhead_s,
            "db_round_trips": db_stats.get("round_trips", 0),
        })
        fw.close()
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig9_rp_leaflet``."""
    args = standard_argparser(__doc__ or "figure 9").parse_args(argv)
    print_rows("Figure 9 (modeled, paper scale): RADICAL-Pilot, approach 2",
               modeled_rows(),
               columns=["n_atoms", "cores", "nodes", "n_tasks", "runtime_s"])
    if args.live:
        print_rows("Figure 9 (measured, laptop scale)", measured_rows(workers=args.workers))


if __name__ == "__main__":  # pragma: no cover
    main()
