"""Figure 2 — task throughput by framework on a single node.

Paper setup: submit 16 ... 131072 zero-workload tasks (``/bin/hostname``)
to RADICAL-Pilot, Spark and Dask on one Wrangler node and measure the
total execution time and the sustained throughput.  Published findings:
Dask is fastest and reaches the highest throughput, Spark is roughly an
order of magnitude lower, RADICAL-Pilot plateaus below 100 tasks/s and
could not run 32k or more tasks.

``modeled_rows`` regenerates the paper-scale curve from the calibrated
cost models; ``measured_rows`` submits real zero-workload tasks to the
three substrates at laptop scale.
"""

from __future__ import annotations

import time
from typing import List

from ..frameworks import make_framework
from ..perfmodel.throughput import PAPER_TASK_COUNTS, throughput_sweep
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]

#: task counts used for the laptop-scale live measurement
LIVE_TASK_COUNTS = (16, 64, 256, 1024, 4096)


def _noop(_value: int) -> int:
    """The zero-workload task (the analogue of /bin/hostname)."""
    return 0


def modeled_rows(task_counts=None) -> List[dict]:
    """Paper-scale modeled series (single Wrangler node)."""
    points = throughput_sweep(frameworks=("spark", "dask", "pilot"),
                              task_counts=task_counts or PAPER_TASK_COUNTS,
                              nodes=1)
    return [p.as_dict() for p in points]


def measured_rows(task_counts=LIVE_TASK_COUNTS, workers: int = 4) -> List[dict]:
    """Laptop-scale live measurement on the real substrates."""
    rows: List[dict] = []
    for name in ("sparklite", "dasklite", "pilot"):
        for n in task_counts:
            fw = make_framework(name, executor="threads", workers=workers)
            start = time.perf_counter()
            results = fw.map_tasks(_noop, list(range(n)))
            elapsed = time.perf_counter() - start
            assert len(results) == n
            rows.append({
                "framework": name,
                "n_tasks": n,
                "time_s": elapsed,
                "throughput_tasks_per_s": n / elapsed if elapsed > 0 else float("inf"),
            })
            fw.close()
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig2_throughput``."""
    args = standard_argparser(__doc__ or "figure 2").parse_args(argv)
    print_rows("Figure 2 (modeled, paper scale): task throughput, single node",
               modeled_rows(),
               columns=["framework", "n_tasks", "time_s", "throughput_tasks_per_s", "supported"])
    if args.live:
        print_rows("Figure 2 (measured, laptop scale)", measured_rows(workers=args.workers))


if __name__ == "__main__":  # pragma: no cover
    main()
