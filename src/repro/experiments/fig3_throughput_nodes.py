"""Figure 3 — task throughput scaling with node count (100k tasks).

Paper setup: submit 100k zero-workload tasks on 1-4 nodes of Comet and
Wrangler.  Published findings: Dask's throughput grows almost linearly
with nodes, Spark's stays an order of magnitude lower, RADICAL-Pilot
plateaus below 100 tasks/s; Comet slightly outperforms Wrangler.

The live measurement varies the worker count instead of the node count
(one node is all a laptop has) and scales the task count down.
"""

from __future__ import annotations

import time
from typing import List

from ..frameworks import make_framework
from ..perfmodel.machines import COMET, WRANGLER
from ..perfmodel.throughput import node_scaling_sweep
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]


def _noop(_value: int) -> int:
    return 0


def modeled_rows(node_counts=(1, 2, 3, 4), n_tasks: int = 100_000) -> List[dict]:
    """Paper-scale modeled series for both machines."""
    rows: List[dict] = []
    for machine in (COMET, WRANGLER):
        for point in node_scaling_sweep(frameworks=("spark", "dask", "pilot"),
                                        node_counts=node_counts,
                                        n_tasks=n_tasks, machine=machine):
            row = point.as_dict()
            row["machine"] = machine.name
            rows.append(row)
    return rows


def measured_rows(worker_counts=(1, 2, 4), n_tasks: int = 2048) -> List[dict]:
    """Laptop-scale live scaling over worker counts."""
    rows: List[dict] = []
    for name in ("sparklite", "dasklite", "pilot"):
        for workers in worker_counts:
            fw = make_framework(name, executor="threads", workers=workers)
            start = time.perf_counter()
            results = fw.map_tasks(_noop, list(range(n_tasks)))
            elapsed = time.perf_counter() - start
            assert len(results) == n_tasks
            rows.append({
                "framework": name,
                "workers": workers,
                "n_tasks": n_tasks,
                "time_s": elapsed,
                "throughput_tasks_per_s": n_tasks / elapsed if elapsed > 0 else float("inf"),
            })
            fw.close()
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig3_throughput_nodes``."""
    args = standard_argparser(__doc__ or "figure 3").parse_args(argv)
    print_rows("Figure 3 (modeled, paper scale): 100k tasks vs node count",
               modeled_rows(),
               columns=["machine", "framework", "nodes", "n_tasks",
                        "throughput_tasks_per_s", "supported"])
    if args.live:
        print_rows("Figure 3 (measured, laptop scale)", measured_rows())


if __name__ == "__main__":  # pragma: no cover
    main()
