"""Figure 7 — Leaflet Finder: the four architectural approaches.

Paper setup: bilayers of 131k, 262k, 524k and 4M atoms, 1024 map tasks
(42k for the 4M system with approach 3), Spark, Dask and MPI4py, 32-256
cores of Wrangler.  Published findings:

* approach 1 (broadcast + 1-D) is the slowest and stops scaling beyond
  262k (Dask) / 524k (Spark, MPI) atoms,
* approach 2 (task API + 2-D) removes the broadcast and scales to 524k,
* approach 3 (parallel connected components) cuts the shuffle by >50% and
  improves runtime by ~20% for Spark and Dask; Spark and MPI handle the
  4M system with 42k tasks,
* approach 4 (tree search) is slower for the two small systems but wins
  for 524k and 4M atoms and has a much smaller memory footprint,
* MPI4py scales almost linearly; Spark and Dask reach speedups of ~4.5-5.

``measured_rows`` runs all four approaches live on every substrate with a
scaled-down bilayer and verifies they agree on the leaflet assignment.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.engine import use_kernel_method
from ..bench import Distribution
from ..core.leaflet import LEAFLET_APPROACHES, run_leaflet_finder
from ..frameworks import make_framework
from ..perfmodel.machines import WRANGLER
from ..perfmodel.scaling import PAPER_LEAFLET_CORE_COUNTS, leaflet_sweep
from ..trajectory.bilayer import BilayerSpec, make_bilayer
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]

PAPER_FRAMEWORKS = ("spark", "dask", "mpi")
PAPER_ATOM_COUNTS = (131_072, 262_144, 524_288, 4_194_304)


def modeled_rows(frameworks: Sequence[str] = PAPER_FRAMEWORKS,
                 atom_counts: Sequence[int] = PAPER_ATOM_COUNTS,
                 core_counts: Sequence[int] = PAPER_LEAFLET_CORE_COUNTS) -> List[dict]:
    """Paper-scale modeled grid: every cell of Figure 7."""
    points = leaflet_sweep(frameworks=frameworks, machine=WRANGLER,
                           atom_counts=atom_counts, core_counts=core_counts)
    return [p.as_dict() for p in points]


def measured_rows(n_atoms: int = 2000, cutoff: float = 15.0, n_tasks: int = 32,
                  workers: int = 4,
                  frameworks: Sequence[str] = ("sparklite", "dasklite", "mpilite"),
                  approaches: Sequence[str] | None = None,
                  kernel_methods: Sequence[str] = ("vectorized",),
                  samples: int = 3) -> List[dict]:
    """Laptop-scale live run of every (framework, approach) combination.

    ``kernel_methods`` selects the kernel engine variants to ablate;
    passing ``("vectorized", "reference")`` reruns the grid with the
    Python reference kernels and reports the engine as an explicit
    ``kernel`` column (all cells must agree on the leaflet assignment
    regardless of engine).

    Each cell runs ``samples`` times on a fresh substrate;
    ``wall_time_s`` is the **median** of the per-run wall clocks and
    ``wall_time_mad_s`` their MAD, so one preempted run cannot reorder
    the approaches in the reported table.
    """
    approaches = list(approaches or LEAFLET_APPROACHES)
    positions, labels = make_bilayer(BilayerSpec(n_atoms=n_atoms, seed=7))
    rows: List[dict] = []
    reference_sizes = None
    for kernel in kernel_methods:
        for name in frameworks:
            for approach in approaches:
                walls: List[float] = []
                result = report = None
                for _ in range(max(1, samples)):
                    fw = make_framework(name, executor="threads", workers=workers)
                    with use_kernel_method(kernel):
                        result, report = run_leaflet_finder(positions, cutoff, fw,
                                                            approach=approach,
                                                            n_tasks=n_tasks)
                    walls.append(report.wall_time_s)
                    fw.close()
                dist = Distribution(samples=tuple(walls),
                                    label=f"{name}/{approach}/{kernel}")
                sizes = result.sizes[:2]
                if reference_sizes is None:
                    reference_sizes = sizes
                elif sizes != reference_sizes:
                    raise AssertionError(
                        f"{name}/{approach}/{kernel} disagrees on leaflet sizes: "
                        f"{sizes} vs {reference_sizes}"
                    )
                rows.append({
                    "framework": name,
                    "approach": approach,
                    "kernel": kernel,
                    "n_atoms": n_atoms,
                    "n_tasks": report.n_tasks,
                    "wall_time_s": dist.median,
                    "wall_time_mad_s": dist.mad,
                    "n_samples": dist.n,
                    "bytes_broadcast": report.metrics.bytes_broadcast,
                    "bytes_shuffled": report.metrics.bytes_shuffled,
                    "agreement": result.agreement_with(labels),
                })
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig7_leaflet_approaches``."""
    args = standard_argparser(__doc__ or "figure 7").parse_args(argv)
    rows = modeled_rows()
    print_rows("Figure 7 (modeled, paper scale): Leaflet Finder approaches",
               rows, columns=["framework", "approach", "n_atoms", "cores",
                              "runtime_s", "speedup", "feasible"])
    if args.live:
        print_rows("Figure 7 (measured, laptop scale)",
                   measured_rows(workers=args.workers))


if __name__ == "__main__":  # pragma: no cover
    main()
