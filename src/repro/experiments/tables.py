"""Tables 1-3 — the paper's qualitative comparisons.

* Table 1: framework properties (abstractions, schedulers, shuffle,
  limitations),
* Table 2: the MapReduce operations used by each Leaflet Finder approach,
* Table 3: the decision framework (criteria and per-framework rankings).

All three are encoded as data in :mod:`repro.core.characterization`; this
driver renders them and, for Table 3, additionally demonstrates the
recommendation logic on the two applications of the paper.
"""

from __future__ import annotations

import argparse

from ..core.characterization import (
    decision_framework_table,
    framework_comparison_table,
    leaflet_operations_table,
    recommend_framework,
)

__all__ = ["render_table_text", "main"]


def render_table_text(table: int) -> str:
    """Render table 1, 2 or 3 as text."""
    if table == 1:
        return framework_comparison_table()
    if table == 2:
        return leaflet_operations_table()
    if table == 3:
        text = decision_framework_table()
        psa_pick = recommend_framework({"python_native_code": 1.0, "task_api": 1.0,
                                        "mpi_hpc_tasks": 0.5})
        lf_pick = recommend_framework({"shuffle": 1.0, "broadcast": 1.0,
                                       "large_number_of_tasks": 1.0,
                                       "higher_level_abstraction": 0.5})
        text += "\n\nrecommendation for PSA-like (coarse-grained, Python-native) workloads:\n"
        text += "  " + ", ".join(f"{fw}={score:.2f}" for fw, score in psa_pick)
        text += "\nrecommendation for LeafletFinder-like (shuffle-heavy, fine-grained) workloads:\n"
        text += "  " + ", ".join(f"{fw}={score:.2f}" for fw, score in lf_pick)
        return text
    raise ValueError("table must be 1, 2 or 3")


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.tables [--table N]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, choices=(1, 2, 3), default=None,
                        help="render only this table (default: all)")
    args = parser.parse_args(argv)
    tables = [args.table] if args.table else [1, 2, 3]
    for t in tables:
        print(f"\n== Table {t} ==")
        print(render_table_text(t))


if __name__ == "__main__":  # pragma: no cover
    main()
