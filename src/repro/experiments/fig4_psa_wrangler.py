"""Figure 4 — PSA (Hausdorff) runtimes on Wrangler.

Paper setup: ensembles of 128 and 256 trajectories of three sizes
(small = 3341, medium = 6682, large = 13364 atoms/frame; 102 frames),
run with MPI4py, Spark, Dask and RADICAL-Pilot on 16/1, 64/2 and 256/8
cores/nodes of Wrangler.  Published findings: all frameworks perform
similarly for this embarrassingly parallel workload, every framework
scales by roughly a factor of 6 from 16 to 256 cores, MPI4py is fastest,
and RADICAL-Pilot shows large variance due to database latency.

``measured_rows`` runs the same code path live on reduced ensembles
(scaled-down atom counts) across all four substrates and reports real
wall-clock times.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.psa import run_psa
from ..frameworks import make_framework
from ..perfmodel.machines import WRANGLER
from ..perfmodel.scaling import PAPER_PSA_CORE_COUNTS, psa_sweep
from ..trajectory.generators import PAPER_PSA_SIZES, paper_psa_ensemble
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]

PAPER_FRAMEWORKS = ("mpi", "spark", "dask", "pilot")


def modeled_rows(ensemble_sizes: Sequence[int] = (128, 256),
                 trajectory_sizes: Sequence[str] = ("small", "medium", "large"),
                 core_counts: Sequence[int] = PAPER_PSA_CORE_COUNTS) -> List[dict]:
    """Paper-scale modeled grid: every cell of Figure 4."""
    rows: List[dict] = []
    for n_traj in ensemble_sizes:
        for size in trajectory_sizes:
            n_atoms = PAPER_PSA_SIZES[size]
            for point in psa_sweep(frameworks=PAPER_FRAMEWORKS, machine=WRANGLER,
                                   core_counts=core_counts,
                                   n_trajectories=n_traj, n_atoms=n_atoms,
                                   figure="fig4"):
                row = point.as_dict()
                row.update({"n_trajectories": n_traj, "trajectory_size": size})
                rows.append(row)
    return rows


def measured_rows(n_trajectories: int = 12, size: str = "small",
                  scale: float = 0.02, workers: int = 4,
                  frameworks: Sequence[str] = ("mpilite", "sparklite", "dasklite", "pilot"),
                  n_frames: int = 24) -> List[dict]:
    """Laptop-scale live PSA on every substrate (same code path, small data)."""
    ensemble = paper_psa_ensemble(size, n_trajectories, n_frames=n_frames, scale=scale)
    rows: List[dict] = []
    for name in frameworks:
        fw = make_framework(name, executor="threads", workers=workers)
        matrix, report = run_psa(ensemble, fw, n_tasks=workers * 2)
        rows.append({
            "framework": name,
            "n_trajectories": n_trajectories,
            "n_atoms": ensemble[0].n_atoms,
            "n_frames": n_frames,
            "n_tasks": report.n_tasks,
            "wall_time_s": report.wall_time_s,
            "overhead_s": report.metrics.overhead_s,
            "max_distance": float(matrix.values.max()),
        })
        fw.close()
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig4_psa_wrangler``."""
    args = standard_argparser(__doc__ or "figure 4").parse_args(argv)
    rows = modeled_rows()
    print_rows("Figure 4 (modeled, paper scale): PSA on Wrangler",
               rows, columns=["n_trajectories", "trajectory_size", "framework",
                              "cores", "nodes", "runtime_s", "speedup"])
    if args.live:
        print_rows("Figure 4 (measured, laptop scale)", measured_rows(workers=args.workers))


if __name__ == "__main__":  # pragma: no cover
    main()
