"""Figure 5 — PSA runtime and speedup on Comet vs Wrangler.

Paper setup: 128 large trajectories (13364 atoms/frame), all four
frameworks, 16/64/256 cores on both machines.  Published findings: the
frameworks behave similarly on both systems, Comet gives slightly better
runtimes and higher speedups than Wrangler because Wrangler's extra slots
are hyper-threads (half the nodes for the same core count), and MPI4py
achieves the best speedup (~12 on Comet).
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.psa import run_psa
from ..frameworks import make_framework
from ..perfmodel.machines import COMET, WRANGLER
from ..perfmodel.scaling import PAPER_PSA_CORE_COUNTS, psa_sweep
from ..trajectory.generators import PAPER_PSA_SIZES, paper_psa_ensemble
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]

PAPER_FRAMEWORKS = ("mpi", "spark", "dask", "pilot")


def modeled_rows(core_counts: Sequence[int] = PAPER_PSA_CORE_COUNTS,
                 n_trajectories: int = 128) -> List[dict]:
    """Paper-scale modeled grid: both machines, 128 large trajectories."""
    n_atoms = PAPER_PSA_SIZES["large"]
    rows: List[dict] = []
    for machine in (COMET, WRANGLER):
        for point in psa_sweep(frameworks=PAPER_FRAMEWORKS, machine=machine,
                               core_counts=core_counts,
                               n_trajectories=n_trajectories, n_atoms=n_atoms,
                               figure="fig5"):
            rows.append(point.as_dict())
    return rows


def measured_rows(workers_grid: Sequence[int] = (1, 2, 4),
                  n_trajectories: int = 10, scale: float = 0.02,
                  n_frames: int = 24) -> List[dict]:
    """Laptop-scale speedup curve: same workload, growing worker counts."""
    ensemble = paper_psa_ensemble("large", n_trajectories, n_frames=n_frames, scale=scale)
    rows: List[dict] = []
    for name in ("mpilite", "dasklite"):
        base = None
        for workers in workers_grid:
            fw = make_framework(name, executor="threads", workers=workers)
            _matrix, report = run_psa(ensemble, fw, n_tasks=max(2, workers * 2))
            if base is None:
                base = report.wall_time_s
            rows.append({
                "framework": name,
                "workers": workers,
                "wall_time_s": report.wall_time_s,
                "speedup": base / report.wall_time_s if report.wall_time_s > 0 else float("nan"),
            })
            fw.close()
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig5_psa_comet_wrangler``."""
    args = standard_argparser(__doc__ or "figure 5").parse_args(argv)
    print_rows("Figure 5 (modeled, paper scale): PSA, Comet vs Wrangler, 128 large",
               modeled_rows(),
               columns=["machine", "framework", "cores", "nodes", "runtime_s", "speedup"])
    if args.live:
        print_rows("Figure 5 (measured, laptop scale)", measured_rows())


if __name__ == "__main__":  # pragma: no cover
    main()
