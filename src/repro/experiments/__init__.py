"""Experiment drivers: one module per figure/table of the paper's evaluation.

Each ``figN_*`` module exposes ``modeled_rows()`` (paper-scale series from
the calibrated performance model), ``measured_rows()`` (laptop-scale live
run of the same code path) and a ``main()`` CLI.  ``report`` runs them all.
"""

from . import (
    fig2_throughput,
    fig3_throughput_nodes,
    fig4_psa_wrangler,
    fig5_psa_comet_wrangler,
    fig6_cpptraj,
    fig7_leaflet_approaches,
    fig8_broadcast,
    fig9_rp_leaflet,
    report,
    tables,
)

__all__ = [
    "fig2_throughput",
    "fig3_throughput_nodes",
    "fig4_psa_wrangler",
    "fig5_psa_comet_wrangler",
    "fig6_cpptraj",
    "fig7_leaflet_approaches",
    "fig8_broadcast",
    "fig9_rp_leaflet",
    "tables",
    "report",
]
