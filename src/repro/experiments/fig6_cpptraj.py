"""Figure 6 — 2D-RMSD with the compiled comparator (CPPTraj).

Paper setup: CPPTraj's MPI/OpenMP 2D-RMSD (Algorithm 1 without the
min-max reduction) on 128 small trajectories, 1-240 cores of 20-core
Haswell nodes, compiled with GNU (no optimization) and Intel ``-O3``.
Published findings: the compiled implementation has much lower absolute
runtimes than the Python frameworks, scales close to linearly to ~100
cores and then saturates; the Intel build is roughly 2x faster than the
GNU build.

Substitution (see DESIGN.md): CPPTraj itself is C++ and not
redistributable here, so the "compiled" comparator is our fully
vectorized NumPy 2D-RMSD kernel (one GEMM per trajectory pair) run
through the same sweep, with the naive per-frame Python loop standing in
for the unoptimized build.  This preserves exactly the contrast the
figure makes: optimized compiled-style kernel vs interpreter-bound loop.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..analysis.hausdorff import hausdorff_earlybreak
from ..analysis.rmsd import pairwise_rmsd_loop, rmsd_matrix
from ..bench import Sampler
from ..perfmodel.scaling import cpptraj_sweep
from ..trajectory.generators import paper_psa_ensemble
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "main"]


def modeled_rows(core_counts: Sequence[int] = (1, 20, 40, 80, 120, 160, 200, 240)) -> List[dict]:
    """Paper-scale modeled series: GNU vs Intel builds over core counts."""
    return [p.as_dict() for p in cpptraj_sweep(core_counts=core_counts)]


def measured_rows(n_pairs: int = 6, n_frames: int = 40, scale: float = 0.02,
                  samples: int = 3) -> List[dict]:
    """Laptop-scale measurement of the optimized vs naive 2D-RMSD kernels.

    Every row carries an explicit ``kernel_engine`` column (vectorized vs
    the Python reference), and the 2D-RMSD contrast is followed by the
    same contrast for the early-break Hausdorff: the blockwise engine
    kernel vs the literal Taha & Hanbury scan on identical pairs.

    Each cell is sampled ``samples`` times (after one warmup run,
    overhead-subtracted, via :class:`repro.bench.Sampler`); ``time_s``
    is the distribution **median** and ``time_mad_s`` its MAD, so a
    single scheduler hiccup cannot distort the reported contrast.
    """
    ensemble = paper_psa_ensemble("small", max(4, n_pairs), n_frames=n_frames, scale=scale)
    arrays = ensemble.as_arrays()
    pairs = [(arrays[i], arrays[(i + 1) % len(arrays)]) for i in range(n_pairs)]
    sampler = Sampler(n_samples=max(1, samples), warmup=1)
    rows: List[dict] = []
    for label, kernel, engine in (
            ("vectorized (compiled-equivalent)", rmsd_matrix, "vectorized"),
            ("naive python loop", pairwise_rmsd_loop, "reference")):
        checksum = sum(float(np.sum(kernel(a, b))) for a, b in pairs)
        dist = sampler.sample(
            lambda: [kernel(a, b) for a, b in pairs], label=label)
        rows.append({
            "kernel": label,
            "kernel_engine": engine,
            "n_pairs": n_pairs,
            "n_frames": n_frames,
            "n_atoms": arrays[0].shape[1],
            "time_s": dist.median,
            "time_mad_s": dist.mad,
            "n_samples": dist.n,
            "checksum": checksum,
        })
    rows[0]["speedup_vs_naive"] = (rows[1]["time_s"] / rows[0]["time_s"]
                                   if rows[0]["time_s"] > 0 else float("inf"))
    for label, engine in (("earlybreak (blockwise)", "vectorized"),
                          ("earlybreak (python reference)", "reference")):
        checksum = sum(hausdorff_earlybreak(a, b, method=engine) for a, b in pairs)
        dist = sampler.sample(
            lambda: [hausdorff_earlybreak(a, b, method=engine) for a, b in pairs],
            label=label)
        rows.append({
            "kernel": label,
            "kernel_engine": engine,
            "n_pairs": n_pairs,
            "n_frames": n_frames,
            "n_atoms": arrays[0].shape[1],
            "time_s": dist.median,
            "time_mad_s": dist.mad,
            "n_samples": dist.n,
            "checksum": checksum,
        })
    if rows[2]["time_s"] > 0:
        rows[2]["speedup_vs_reference"] = rows[3]["time_s"] / rows[2]["time_s"]
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig6_cpptraj``."""
    args = standard_argparser(__doc__ or "figure 6").parse_args(argv)
    print_rows("Figure 6 (modeled, paper scale): compiled 2D-RMSD comparator",
               modeled_rows(),
               columns=["framework", "cores", "runtime_s", "speedup"])
    if args.live:
        print_rows("Figure 6 (measured, laptop scale): kernel comparison", measured_rows())


if __name__ == "__main__":  # pragma: no cover
    main()
