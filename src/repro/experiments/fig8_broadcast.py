"""Figure 8 — broadcast-time breakdown of Leaflet Finder approach 1.

Paper setup: approach 1 (broadcast + 1-D partitioning) on the 131k and
262k atom systems, 32-256 cores, reporting total runtime and the
broadcast time for Spark, Dask and MPI4py.  Published findings: broadcast
time is 3-15% of the edge-discovery time for Spark, 40-65% for Dask and
<1-10% for MPI; MPI's broadcast time grows linearly with the process
count while Spark's and Dask's stay roughly constant; Dask could not
broadcast the 524k system at all.

``measured_rows`` times the broadcast and the map phase live on the real
substrates and reports the same breakdown.  ``data_plane_rows`` runs the
identical workload on the pickle and shm data planes and reports the
moved-vs-shared byte split in *both directions*: on the shm plane the
broadcast volume collapses from the full system to a per-node ref, and
the edge lists the tasks produce return as refs too instead of being
pickled back.  ``bytes_shared`` / ``bytes_shared_results`` (from
:class:`~repro.frameworks.base.RunMetrics`) count the array bytes the
tasks accessed / returned through shared memory (summed per task, the
analogue of what the pickle plane would have moved), while
``bytes_resident`` counts the segment bytes actually held in the store
— the broadcast system appears there exactly once, plus the adopted
result blocks.  This is the serialization saving the paper identifies
as the frameworks' main deficit against MPI.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Sequence

import numpy as np

from ..core.leaflet import leaflet_broadcast_1d
from ..core.psa import run_psa, run_psa_windows
from ..frameworks import make_framework
from ..perfmodel.scaling import model_broadcast_breakdown
from ..trajectory.bilayer import BilayerSpec, make_bilayer
from ..trajectory.generators import EnsembleSpec, make_clustered_ensemble
from ..trajectory.streaming import open_streaming_ensemble, write_frame_chunks
from .common import print_rows, standard_argparser

__all__ = ["modeled_rows", "measured_rows", "data_plane_rows", "streamed_rows", "main"]


def modeled_rows(atom_counts: Sequence[int] = (131_072, 262_144)) -> List[dict]:
    """Paper-scale modeled breakdown (runtime + broadcast time)."""
    return [p.as_dict() for p in model_broadcast_breakdown(atom_counts=atom_counts)]


def measured_rows(n_atoms: int = 3000, cutoff: float = 15.0, n_tasks: int = 16,
                  workers: int = 4,
                  frameworks: Sequence[str] = ("sparklite", "dasklite", "mpilite"),
                  data_plane: str = "pickle") -> List[dict]:
    """Laptop-scale live broadcast/map breakdown for approach 1."""
    positions, _labels = make_bilayer(BilayerSpec(n_atoms=n_atoms, seed=11))
    rows: List[dict] = []
    for name in frameworks:
        fw = make_framework(name, executor="threads", workers=workers,
                            data_plane=data_plane)
        _result, report = leaflet_broadcast_1d(positions, cutoff, fw, n_tasks=n_tasks)
        broadcast_s = report.parameters.get("phase_broadcast_s", 0.0)
        map_s = report.parameters.get("phase_map_s", 0.0)
        store = getattr(fw, "store", None)
        rows.append({
            "framework": name,
            "data_plane": data_plane,
            "n_atoms": n_atoms,
            "wall_time_s": report.wall_time_s,
            "broadcast_s": broadcast_s,
            "map_s": map_s,
            "broadcast_fraction_of_map": (broadcast_s / map_s) if map_s > 0 else float("nan"),
            "bytes_broadcast": report.metrics.bytes_broadcast,
            # array bytes tasks accessed through the plane (per-task sum)
            "bytes_shared": report.metrics.bytes_shared,
            # result direction: bytes moved back serialized vs returned
            # through shared segments
            "bytes_results_moved": report.metrics.bytes_results_pickled,
            "bytes_shared_results": report.metrics.bytes_shared_results,
            "bytes_spilled": report.metrics.bytes_spilled,
            # segment bytes resident in the store (broadcast system once,
            # plus adopted result blocks)
            "bytes_resident": store.bytes_resident if store is not None else 0,
        })
        fw.close()
    return rows


def data_plane_rows(n_atoms: int = 3000, cutoff: float = 15.0, n_tasks: int = 16,
                    workers: int = 4,
                    frameworks: Sequence[str] = ("sparklite", "dasklite", "mpilite")) -> List[dict]:
    """Moved-vs-shared byte split: pickle plane against the shm plane.

    One row per framework, covering both directions of the data plane:

    * task direction — the bytes a distributed deployment would move for
      the approach-1 broadcast on each plane (``bytes_moved_*``), the
      array bytes the tasks accessed through shared memory instead
      (``bytes_accessed_shm``, a per-task sum), and the segment bytes
      resident in the store (``bytes_resident_shm``);
    * result direction — the bytes the gathered edge lists would move on
      each plane (``bytes_results_moved_*``: whole arrays on the pickle
      plane, just the refs on the shm plane) and the array bytes
      returned through shared segments (``bytes_shared_results``).

    ``moved_reduction`` / ``results_moved_reduction`` are the factors by
    which the shm plane shrinks each direction's moved volume.
    """
    rows: List[dict] = []
    pickle_rows = measured_rows(n_atoms, cutoff, n_tasks, workers, frameworks,
                                data_plane="pickle")
    shm_rows = measured_rows(n_atoms, cutoff, n_tasks, workers, frameworks,
                             data_plane="shm")
    for pickled, shared in zip(pickle_rows, shm_rows):
        moved_pickle = pickled["bytes_broadcast"]
        moved_shm = shared["bytes_broadcast"]
        results_pickle = pickled["bytes_results_moved"]
        results_shm = shared["bytes_results_moved"]
        rows.append({
            "framework": pickled["framework"],
            "n_atoms": n_atoms,
            "bytes_moved_pickle": moved_pickle,
            "bytes_moved_shm": moved_shm,
            "bytes_accessed_shm": shared["bytes_shared"],
            "bytes_resident_shm": shared["bytes_resident"],
            "moved_reduction": (moved_pickle / moved_shm) if moved_shm else float("inf"),
            "bytes_results_moved_pickle": results_pickle,
            "bytes_results_moved_shm": results_shm,
            "bytes_shared_results": shared["bytes_shared_results"],
            "results_moved_reduction": (results_pickle / results_shm)
            if results_shm else float("inf"),
            "wall_time_pickle_s": pickled["wall_time_s"],
            "wall_time_shm_s": shared["wall_time_s"],
        })
    return rows


def streamed_rows(n_trajectories: int = 8, n_frames: int = 32, n_atoms: int = 64,
                  workers: int = 4,
                  frameworks: Sequence[str] = ("sparklite", "dasklite", "mpilite"),
                  capacity_fraction: float = 0.25) -> List[dict]:
    """Streamed-vs-materialized ingestion on the shm plane (one row each).

    The out-of-core extension of the data-plane comparison: the same PSA
    workload runs once with the whole ensemble materialized into the
    store (the batch path) and once streamed from chunk files through
    :meth:`~repro.frameworks.shm.SharedMemoryStore.ingest` with a store
    watermark of ``capacity_fraction`` times the ensemble — so the
    streamed run *cannot* hold its inputs resident.  Rows report both
    peaks, the residency reduction, and whether the streamed matrix is
    bit-identical to the materialized one (it must be:
    ``hausdorff_windowed`` merges per-window minima with a
    partition-independent kernel).
    """
    spec = EnsembleSpec(n_trajectories=n_trajectories, n_frames=n_frames,
                        n_atoms=n_atoms, seed=23)
    ensemble = make_clustered_ensemble(spec)
    total_bytes = ensemble.nbytes
    capacity = max(1, int(total_bytes * capacity_fraction))
    rows: List[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-fig8-stream-") as tmp:
        paths = [
            write_frame_chunks(array, os.path.join(tmp, f"{label}.fchunk"),
                               frames_per_chunk=max(1, n_frames // 4), name=label)
            for label, array in zip(ensemble.labels, ensemble.as_arrays())
        ]
        streaming = open_streaming_ensemble(paths)
        for name in frameworks:
            fw = make_framework(name, executor="threads", workers=workers,
                                data_plane="shm")
            try:
                batch_matrix, batch_report = run_psa(
                    ensemble, fw, metric="hausdorff_windowed", n_tasks=workers)
            finally:
                fw.close()
            fw = make_framework(name, executor="threads", workers=workers,
                                data_plane="shm", store_capacity_bytes=capacity)
            try:
                stream_matrix, stream_report = run_psa_windows(
                    streaming, fw, n_tasks=workers)
            finally:
                fw.close()
            peak_stream = stream_report.metrics.peak_resident_bytes
            rows.append({
                "framework": name,
                "ensemble_bytes": total_bytes,
                "store_capacity_bytes": capacity,
                "bytes_ingested": stream_report.metrics.bytes_ingested,
                "peak_resident_streamed": peak_stream,
                "peak_resident_materialized": batch_report.metrics.peak_resident_bytes,
                "bytes_spilled_streamed": stream_report.metrics.bytes_spilled,
                "residency_reduction": (total_bytes / peak_stream)
                if peak_stream else float("inf"),
                "bit_identical": bool(np.array_equal(batch_matrix.values,
                                                     stream_matrix.values)),
                "wall_time_materialized_s": batch_report.wall_time_s,
                "wall_time_streamed_s": stream_report.wall_time_s,
            })
    return rows


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.fig8_broadcast``."""
    args = standard_argparser(__doc__ or "figure 8").parse_args(argv)
    print_rows("Figure 8 (modeled, paper scale): approach-1 broadcast breakdown",
               modeled_rows(),
               columns=["framework", "workload", "cores", "runtime_s",
                        "broadcast_s", "broadcast_fraction"])
    if args.live:
        print_rows("Figure 8 (measured, laptop scale)", measured_rows(workers=args.workers))
        print_rows("Figure 8 extension: pickle vs shm data plane",
                   data_plane_rows(workers=args.workers))
        print_rows("Figure 8 extension: streamed vs materialized ingestion",
                   streamed_rows(workers=args.workers))


if __name__ == "__main__":  # pragma: no cover
    main()
