"""Run every experiment and produce one consolidated report.

``python -m repro.experiments.report`` prints the modeled (paper-scale)
series for every figure and all three tables; ``--live`` adds the
laptop-scale live measurements.  This is the single command a reviewer
runs to regenerate the paper's evaluation section.
"""

from __future__ import annotations

from . import (
    fig2_throughput,
    fig3_throughput_nodes,
    fig4_psa_wrangler,
    fig5_psa_comet_wrangler,
    fig6_cpptraj,
    fig7_leaflet_approaches,
    fig8_broadcast,
    fig9_rp_leaflet,
    tables,
)
from .common import print_rows, standard_argparser

__all__ = ["main", "all_modeled"]

FIGURES = {
    "fig2": fig2_throughput,
    "fig3": fig3_throughput_nodes,
    "fig4": fig4_psa_wrangler,
    "fig5": fig5_psa_comet_wrangler,
    "fig6": fig6_cpptraj,
    "fig7": fig7_leaflet_approaches,
    "fig8": fig8_broadcast,
    "fig9": fig9_rp_leaflet,
}


def all_modeled() -> dict:
    """All modeled series keyed by figure id."""
    return {name: module.modeled_rows() for name, module in FIGURES.items()}


def main(argv=None) -> None:
    """Entry point: ``python -m repro.experiments.report [--live]``."""
    parser = standard_argparser(__doc__ or "report")
    parser.add_argument("--figure", choices=sorted(FIGURES), default=None,
                        help="only this figure (default: all)")
    args = parser.parse_args(argv)
    selected = {args.figure: FIGURES[args.figure]} if args.figure else FIGURES
    for name, module in selected.items():
        print_rows(f"{name} (modeled, paper scale)", module.modeled_rows())
        if args.live:
            print_rows(f"{name} (measured, laptop scale)", module.measured_rows())
    if not args.figure:
        for t in (1, 2, 3):
            print(f"\n== Table {t} ==")
            print(tables.render_table_text(t))


if __name__ == "__main__":  # pragma: no cover
    main()
