"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER = (
    "Paraskevakos et al., 'Task-parallel Analysis of Molecular Dynamics "
    "Trajectories', ICPP 2018 (arXiv:1801.07630)"
)
