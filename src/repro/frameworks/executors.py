"""Task executors: the physical layer under every framework substrate.

Each framework (sparklite, dasklite, pilot, mpilite) needs to actually run
Python callables over collections of inputs.  To keep that concern in one
place the frameworks delegate to one of four executors:

* :class:`SerialExecutor` — runs tasks in the calling thread; fully
  deterministic, used by default in tests.
* :class:`ThreadExecutor` — a thread pool; NumPy/SciPy kernels release the
  GIL, so this gives real parallel speedup for the compute-heavy tasks of
  the paper (2D-RMSD blocks, cdist blocks) without pickling overhead.
* :class:`ProcessExecutor` — a process pool (``spawn`` not required, the
  default start method is used); incurs pickling of inputs and outputs,
  which is exactly the serialization cost the paper discusses for
  Python frameworks.
* :class:`SharedMemoryExecutor` — a process pool with the zero-copy data
  plane of :mod:`repro.frameworks.shm`: array payloads are registered in
  a :class:`~repro.frameworks.shm.SharedMemoryStore` once and workers
  receive tiny :class:`~repro.frameworks.shm.BlockRef` handles that
  rehydrate as views — and the same happens in reverse for results,
  which workers publish into shared segments and the driver adopts
  zero-copy instead of unpickling.

All executors record per-task wall-clock durations so the frameworks can
report scheduling overhead separately from useful work; the process-based
executors additionally record, per task, ``bytes_pickled`` /
``bytes_results_pickled`` (payload bytes that crossed the process
boundary serialized, in each direction) and ``bytes_shared`` /
``bytes_results_shared`` (array bytes the task accessed or returned
through shared memory instead).

Fault tolerance
---------------
Every executor honours an optional
:class:`~repro.frameworks.faults.FaultPolicy` (plus a deterministic
:class:`~repro.frameworks.faults.FaultInjector` for chaos testing).
The in-process executors retry failing tasks in place; the process-pool
executors run a full recovery loop: tasks are fed to a set of
single-slot *worker lanes* (one single-process pool per worker, so the
driver chooses which worker runs which task), a worker death (detected
by its lane's broken sentinel, or by the driver killing a worker whose
heartbeat went stale) marks that lane's in-flight task lost, the
orphaned result segments of the dead worker are swept, the lane is
rebuilt, and the lost task is resubmitted — the other lanes keep
executing throughout, so one killed worker costs one task re-execution
instead of the whole run.  Per-task ``retries`` / ``lost`` /
``recovery_seconds`` land in the :class:`TaskTiming` records and roll
up into :class:`~repro.frameworks.base.RunMetrics`.

Locality-aware placement
------------------------
With ``FaultPolicy.locality`` set, the lane layer additionally routes
tasks by data affinity: workers report the block names they hold
resident (piggybacked on the heartbeat directory), the driver scores
pending tasks against each free lane's resident set, and a task whose
input blocks *spilled* is steered to the lane that still has them
mapped instead of paying a cold disk read on an arbitrary worker — with
bounded delay scheduling so affinity never idles a lane (see
:mod:`repro.frameworks.locality`).  Placement lands in ``tasks_local``
/ ``tasks_remote`` and the steered-around reads in
``bytes_spill_reads_avoided``.
"""

from __future__ import annotations

import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..bench.stats import median as _median
from .faults import (
    NO_RETRIES,
    RESIDENT_PREFIX,
    BlockLost,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    WorkerLost,
    apply_block_fault,
    clear_heartbeat,
    execute_worker_fault,
    kill_heartbeat_workers,
    kill_stale_workers,
    read_resident_set,
    reap_dead_heartbeats,
    report_resident_set,
    simulate_in_process_fault,
    unlink_result_refs,
    write_heartbeat,
)
from .locality import LocalityScheduler, TaskBlocks
from .shm import (
    BlockRef,
    SharedMemoryStore,
    adopt_payload,
    collect_refs,
    mark_handed_off,
    prefetch_hints_dropped,
    prefetch_refs,
    publish_payload,
    refs_nbytes,
    resolve_payload,
    share_payload,
    sweep_orphan_segments,
)

__all__ = [
    "TaskTiming",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "default_worker_count",
]


def default_worker_count() -> int:
    """Return a sensible default worker count for the local machine.

    One core is reserved for the driver (scheduler loops, result
    gathering, the interactive session), matching the deployment the
    paper's single-node runs use; the floor of 1 keeps single-core
    machines working.

    Returns
    -------
    int
        ``max(1, cpu_count - 1)``.
    """
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class TaskTiming:
    """Wall-clock timing and data-plane accounting of one executed task.

    Parameters
    ----------
    index : int
        Position of the task in the submitted batch.
    start, stop : float
        ``perf_counter`` timestamps bracketing the task (including its
        payload deserialization and result serialization, where a real
        deployment pays them).
    bytes_pickled : int, optional
        The task's *input payload* bytes serialized across a process
        boundary.
    bytes_shared : int, optional
        Array bytes the task accessed through the shared-memory plane
        instead of receiving them in the payload.
    bytes_results_pickled : int, optional
        The task's *result payload* bytes serialized back across the
        boundary (for the shm plane this is just the refs).
    bytes_results_shared : int, optional
        Array bytes the task returned through shared memory instead of
        the result payload.
    spill_wait_seconds : float, optional
        Seconds the driver's store stalled the hot path on spill
        eviction while staging this task's payload and adopting its
        results (the full file write for synchronous stores,
        backpressure blocking for write-behind stores).
    spill_hidden_seconds : float, optional
        Spill-writer seconds that elapsed in the background during the
        same windows — file writes the write-behind pipeline hid from
        the put path.
    retries : int, optional
        Times this task was re-executed before the recorded (successful)
        attempt; ``start``/``stop`` bracket the final attempt only.
    lost : int, optional
        How many of those failures were worker deaths or lost blocks
        (the resilience layer's ``tasks_lost`` events).
    recovery_seconds : float, optional
        Driver-observed recovery time attributed to this task: backoff
        pauses, block healing, and (for the task that triggered it) the
        process-pool rebuild after a worker death.
    speculated : int, optional
        Speculative duplicate attempts launched because this task
        straggled past the policy's ``speculation_factor`` threshold.
    speculation_won : int, optional
        1 when the recorded result came from a speculative duplicate
        that beat the original attempt.
    placed_local : int, optional
        1 when locality-aware placement ran this task on a lane whose
        resident set covered every spilled input block (no cold disk
        read required; tasks without spilled inputs count local too).
    placed_remote : int, optional
        1 when the task was placed despite uncovered spilled inputs —
        the first toucher of a cold block, or a steal after the
        delay-scheduling bound expired.
    bytes_spill_reads_avoided : int, optional
        Spilled-block bytes this task found already mapped on its
        chosen lane instead of reading them cold from disk.
    prefetch_hints_dropped : int, optional
        Read-ahead hints dropped on a full prefetch queue while
        dispatching or executing this task (driver- and worker-side
        drops combined) — the observable for tuning the prefetch depth
        against ``spill_queue_depth``.

    Notes
    -----
    All byte and spill counters stay 0 for in-process executors, where
    no boundary is crossed and the framework's store is driven directly.
    """

    index: int
    start: float
    stop: float
    bytes_pickled: int = 0
    bytes_shared: int = 0
    bytes_results_pickled: int = 0
    bytes_results_shared: int = 0
    spill_wait_seconds: float = 0.0
    spill_hidden_seconds: float = 0.0
    retries: int = 0
    lost: int = 0
    recovery_seconds: float = 0.0
    speculated: int = 0
    speculation_won: int = 0
    placed_local: int = 0
    placed_remote: int = 0
    bytes_spill_reads_avoided: int = 0
    prefetch_hints_dropped: int = 0

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.stop - self.start


@dataclass
class ExecutorBase:
    """Common interface: ``map_tasks(fn, items)`` -> list of results.

    Results are always returned in input order.  ``timings`` holds the
    per-task wall clock of the most recent ``map_tasks`` call.

    ``fault_policy`` / ``fault_injector`` opt the executor into the
    resilience layer (``None`` keeps the fail-fast behaviour); a
    framework running on the shm data plane also points ``fault_store``
    at its store so lost-block healing can reach the registered source
    arrays.
    """

    workers: int = 1
    timings: List[TaskTiming] = field(default_factory=list, repr=False)
    fault_policy: Optional[FaultPolicy] = field(default=None, repr=False)
    fault_injector: Optional[FaultInjector] = field(default=None, repr=False)
    fault_store: Optional[SharedMemoryStore] = field(default=None, repr=False)
    #: heartbeat files left in ``hb_dir`` at the end of the last pooled
    #: run (after dead-pid reaping) — the clean-shutdown hygiene
    #: invariant the chaos suite asserts is that this list is empty
    last_hb_leftovers: List[str] = field(default_factory=list, repr=False)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in order.

        Parameters
        ----------
        fn : callable
            Task function applied to each item.
        items : sequence
            Task payloads.

        Returns
        -------
        list
            ``[fn(item) for item in items]``, computed on this
            executor's resources.
        """
        raise NotImplementedError

    def map_with_args(self, fn: Callable[..., Any],
                      items: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple in ``items``."""
        return self.map_tasks(lambda args: fn(*args), items)

    @property
    def total_task_time(self) -> float:
        """Sum of task durations from the last ``map_tasks`` call."""
        return sum(t.duration for t in self.timings)

    @property
    def total_bytes_pickled(self) -> int:
        """Input payload bytes pickled across process boundaries (last call)."""
        return sum(t.bytes_pickled for t in self.timings)

    @property
    def total_bytes_shared(self) -> int:
        """Array bytes accessed through shared memory (last call)."""
        return sum(t.bytes_shared for t in self.timings)

    @property
    def total_bytes_results_pickled(self) -> int:
        """Result payload bytes pickled back across the boundary (last call)."""
        return sum(t.bytes_results_pickled for t in self.timings)

    @property
    def total_bytes_results_shared(self) -> int:
        """Array bytes returned through shared memory (last call)."""
        return sum(t.bytes_results_shared for t in self.timings)

    @property
    def total_spill_wait_seconds(self) -> float:
        """Seconds spill eviction stalled the hot path (last call)."""
        return sum(t.spill_wait_seconds for t in self.timings)

    @property
    def total_spill_hidden_seconds(self) -> float:
        """Background spill-writer seconds observed during the last call."""
        return sum(t.spill_hidden_seconds for t in self.timings)

    @property
    def total_tasks_retried(self) -> int:
        """Task re-executions performed during the last call."""
        return sum(t.retries for t in self.timings)

    @property
    def total_tasks_lost(self) -> int:
        """Worker-death / lost-block failures recovered during the last call."""
        return sum(t.lost for t in self.timings)

    @property
    def total_recovery_seconds(self) -> float:
        """Driver-observed recovery time spent during the last call."""
        return sum(t.recovery_seconds for t in self.timings)

    @property
    def total_tasks_speculated(self) -> int:
        """Speculative duplicate attempts launched during the last call."""
        return sum(t.speculated for t in self.timings)

    @property
    def total_speculation_wins(self) -> int:
        """Speculative duplicates that beat their original (last call)."""
        return sum(t.speculation_won for t in self.timings)

    @property
    def total_tasks_local(self) -> int:
        """Tasks placed with full spilled-input coverage (last call)."""
        return sum(t.placed_local for t in self.timings)

    @property
    def total_tasks_remote(self) -> int:
        """Tasks placed despite uncovered spilled inputs (last call)."""
        return sum(t.placed_remote for t in self.timings)

    @property
    def total_bytes_spill_reads_avoided(self) -> int:
        """Cold disk reads locality placement steered around (last call)."""
        return sum(t.bytes_spill_reads_avoided for t in self.timings)

    @property
    def total_prefetch_hints_dropped(self) -> int:
        """Read-ahead hints dropped on a full queue (last call)."""
        return sum(t.prefetch_hints_dropped for t in self.timings)

    def _fault_context(self) -> Tuple[FaultPolicy, Optional[FaultInjector],
                                      Optional[SharedMemoryStore]]:
        """The (policy, injector, store) triple the retry loops consult."""
        store = getattr(self, "store", None) or self.fault_store
        return self.fault_policy or NO_RETRIES, self.fault_injector, store

    def _call_retrying(self, fn: Callable[[Any], Any], index: int,
                       item: Any) -> Tuple[Any, TaskTiming]:
        """Run one task in-process under the executor's fault policy.

        Claims the dispatch's fault from the injector (simulating
        ``kill_worker`` as :class:`~repro.frameworks.faults.WorkerLost`,
        since a real kill would take the driver down), re-executes per
        the policy, and heals lost payload blocks from their registered
        source arrays between attempts.

        Parameters
        ----------
        fn : callable
            Task function.
        index : int
            Task position in the submitted batch.
        item : Any
            Task payload.

        Returns
        -------
        result : Any
            The successful attempt's return value.
        timing : TaskTiming
            Timing of the final attempt, carrying the retry counters.
        """
        policy, injector, store = self._fault_context()
        retries = lost = 0
        recovery = 0.0
        speculated = spec_won = 0
        attempt = 0
        while True:
            spec = injector.claim(attempt) if injector is not None else None
            start = time.perf_counter()
            try:
                if spec is not None:
                    if spec.is_block_fault:
                        apply_block_fault(spec, store)
                    elif (spec.kind == "delay"
                          and policy.speculation_factor is not None):
                        # in-process straggler simulation: a real pool
                        # would race a duplicate attempt and take its
                        # result; here the duplicate "wins" immediately
                        # instead of sleeping out the injected delay
                        speculated = spec_won = 1
                    else:
                        simulate_in_process_fault(spec)
                result = fn(item)
                return result, TaskTiming(index, start, time.perf_counter(),
                                          retries=retries, lost=lost,
                                          recovery_seconds=recovery,
                                          speculated=speculated,
                                          speculation_won=spec_won)
            except Exception as exc:  # noqa: BLE001 - the policy decides
                if not policy.should_retry(exc, attempt):
                    raise
                recover_start = time.perf_counter()
                if isinstance(exc, BlockLost) and store is not None:
                    store.recover_spilled_block(exc.segment)
                pause = policy.backoff_for(attempt)
                if pause:
                    time.sleep(pause)
                attempt += 1
                retries += 1
                lost += int(isinstance(exc, (WorkerLost, BlockLost)))
                recovery += time.perf_counter() - recover_start

    def _after_pool_break(self) -> None:
        """Hook run between reaping a broken pool and rebuilding it.

        The shm executor sweeps the dead workers' orphaned result
        segments and settles the spill pipeline here; the base hook does
        nothing.
        """

    def shutdown(self) -> None:
        """Release any pooled resources (no-op for stateless executors)."""


class SerialExecutor(ExecutorBase):
    """Run every task in the calling thread, in order."""

    def __init__(self, fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=1, fault_policy=fault_policy,
                         fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks one after another in the calling thread."""
        self.timings = []
        results: List[Any] = []
        for i, item in enumerate(items):
            result, timing = self._call_retrying(fn, i, item)
            results.append(result)
            self.timings.append(timing)
        return results


class ThreadExecutor(ExecutorBase):
    """Thread-pool executor (shared memory, no pickling).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    fault_policy : FaultPolicy, optional
        Per-task retry policy (``None`` keeps fail-fast behaviour).
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on the thread pool, preserving input order."""
        self.timings = []
        items = list(items)
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = [None] * len(items)  # type: ignore[list-item]

        def run(index: int, item: Any) -> None:
            results[index], timings[index] = self._call_retrying(fn, index, item)

        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, i, item) for i, item in enumerate(items)]
            for future in futures:
                future.result()  # re-raise worker exceptions here
        self.timings = list(timings)
        return results


def _timed_call(payload: tuple) -> tuple:
    """Run one pre-pickled task in a pool worker (pickle plane).

    The item arrives pre-pickled (serialized exactly once, driver-side,
    which is also how its byte count is measured); deserialization and
    the result's serialization both run inside the timed region, where a
    real deployment pays them.  The result returns as a pickle blob so
    the driver can account the exact bytes that crossed back.

    ``spec`` carries a claimed task-side fault to execute here (a real
    SIGKILL for ``kill_worker``), and ``hb_dir`` the heartbeat directory
    this worker stamps for the driver's hung-worker monitor and reports
    its resident block set into for locality-aware placement.

    Both pool shims return the same 7-tuple ``(index, out, start, stop,
    bytes_shared, pid, prefetch_drops)``: the pid keys the worker's
    resident-set report to its lane driver-side, and ``prefetch_drops``
    is the worker-local delta of read-ahead hints dropped while this
    task ran.
    """
    index, fn, blob, spec, hb_dir = payload
    write_heartbeat(hb_dir)
    drops_before = prefetch_hints_dropped()
    try:
        if spec is not None:
            execute_worker_fault(spec)
        start = time.perf_counter()
        result = fn(pickle.loads(blob))
        out = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        stop = time.perf_counter()
        if (spec is not None and spec.kind == "kill_worker"
                and spec.when == "after_publish"):
            os.kill(os.getpid(), signal.SIGKILL)
        report_resident_set(hb_dir)
        return (index, out, start, stop, 0, os.getpid(),
                prefetch_hints_dropped() - drops_before)
    finally:
        clear_heartbeat(hb_dir)


def _speculation_threshold(durations: Sequence[float],
                           policy: FaultPolicy) -> float:
    """Straggler cutoff: ``factor × median(durations)``, floored at one
    heartbeat interval so a batch of microsecond tasks cannot trip
    speculation on dispatch jitter.

    Uses the statistically honest :func:`repro.bench.stats.median`
    (midpoint average on even counts) — indexing ``sorted[n // 2]``
    picks the *upper* element of an even-length list, which biases the
    threshold upward and delays speculation exactly when half the
    completed durations are fast.
    """
    return policy.speculation_factor * max(_median(durations),
                                           policy.heartbeat_interval_s)


class _WorkerLane:
    """One single-slot worker: a private one-process pool plus lane state.

    Replacing the single shared pool with per-worker lanes is what makes
    placement *routable*: submitting on a lane runs the task on that
    lane's worker process, so the driver can steer a task to the process
    whose resident set covers the task's blocks.  It also shrinks the
    failure domain — a dead worker breaks its own lane only, and
    recovery rebuilds one process while the other lanes keep executing.
    """

    __slots__ = ("lane_id", "pool", "future", "index", "is_dup", "launched",
                 "resident", "pid")

    def __init__(self, lane_id: int) -> None:
        self.lane_id = lane_id
        self.pool = ProcessPoolExecutor(max_workers=1)
        self.future: Optional[Any] = None
        self.index: Optional[int] = None
        self.is_dup = False
        self.launched = 0.0
        self.resident: frozenset = frozenset()
        self.pid: Optional[int] = None

    @property
    def busy(self) -> bool:
        """Whether a task is currently in flight on this lane."""
        return self.future is not None

    def clear(self) -> None:
        """Forget the in-flight task (completed or handed to recovery)."""
        self.future = None
        self.index = None
        self.is_dup = False

    def rebuild(self) -> None:
        """Fresh worker process after a death.

        The resident set dies with the worker — a reaped lane must
        never attract tasks on the strength of blocks only the dead
        process held mapped.
        """
        self.pool = ProcessPoolExecutor(max_workers=1)
        self.resident = frozenset()
        self.pid = None


class _PooledMapEngine:
    """Fault-tolerant task feeder shared by the two process-pool executors.

    Runs tasks on ``workers`` single-slot :class:`_WorkerLane` objects
    (so worker death loses at most the one task on that lane) and
    implements the whole recovery protocol:

    * a *task exception* returned by a worker is retried per the policy
      (lost payload blocks are healed from their registered sources
      between attempts);
    * a *broken lane* (worker SIGKILLed, OOM-killed, or killed by the
      heartbeat monitor below) marks that lane's in-flight task lost,
      reaps the lane's pool, runs the owner's
      :meth:`ExecutorBase._after_pool_break` hook (the shm executor
      sweeps the dead worker's orphaned result segments there), rebuilds
      the lane and resubmits — tasks queued or in flight on healthy
      lanes are never touched;
    * with ``heartbeat_timeout_s`` set, the driver checks worker
      heartbeat files while waiting and SIGKILLs any worker whose
      current task overran the timeout — converting a hang into the
      broken-lane path above;
    * with ``speculation_factor`` set, a task still in flight past
      :func:`_speculation_threshold` gets a *duplicate attempt*
      submitted to a free lane (never a chosen one: duplicates do not
      inherit affinity pins).  The first attempt to return wins and is
      recorded; the loser's result is discarded (``on_discard``, so
      published segments never leak), and a loser that never returns —
      the straggler itself — is SIGKILLed once every result is in, its
      leftovers reclaimed by the ordinary broken-lane sweep;
    * a result whose blocks cannot be adopted (``on_result`` raises
      :class:`~repro.frameworks.shm.BlockLost`) is treated as lost and
      the task re-executed;
    * with ``policy.locality`` set and ref-bearing payloads
      (``task_refs``), free lanes are filled by the
      :class:`~repro.frameworks.locality.LocalityScheduler` instead of
      queue order: workers report their resident block names through
      the heartbeat directory after each task, the driver mirrors the
      reports onto the lanes (optimistically extended at dispatch so
      same-wave tasks cluster), and spilled blocks missing from the
      chosen lane are prefetched at dispatch time.

    Faults are claimed from the injector once per first-attempt dispatch
    in dispatch order; task-side faults ship to the worker inside the
    payload, driver-side block faults are applied at dispatch (or, for
    ``target="result"``, remembered and applied to the returned refs
    before adoption).  Speculative duplicates never touch the injector:
    the exactly-once injection contract counts real dispatches only.
    """

    def __init__(self, owner: "ExecutorBase", worker_fn: Callable[[tuple], tuple],
                 payload_for: Callable[[int, Optional[FaultSpec], Optional[str]], tuple],
                 on_result: Callable[[int, tuple, Optional[FaultSpec], tuple], None],
                 n_tasks: int,
                 on_discard: Optional[Callable[[tuple], None]] = None,
                 task_refs: Optional[List[List[BlockRef]]] = None) -> None:
        self.owner = owner
        self.worker_fn = worker_fn
        self.payload_for = payload_for
        self.on_result = on_result
        self.on_discard = on_discard
        self.n_tasks = n_tasks
        policy, injector, store = owner._fault_context()
        self.policy = policy
        self.injector = injector
        self.store = store
        self.attempts = [0] * n_tasks
        self.retries = [0] * n_tasks
        self.lost = [0] * n_tasks
        self.recovery = [0.0] * n_tasks
        self.speculated = [0] * n_tasks
        self.spec_won = [0] * n_tasks
        self.placed_local = [0] * n_tasks
        self.placed_remote = [0] * n_tasks
        self.bytes_avoided = [0] * n_tasks
        self.hints_dropped = [0] * n_tasks
        self.result_faults: Dict[int, FaultSpec] = {}
        self._durations: List[float] = []
        self._completed: set = set()
        self._task_refs = task_refs
        self._scheduler: Optional[LocalityScheduler] = None
        if policy.locality and task_refs is not None and any(task_refs):
            blocks = [TaskBlocks.from_refs(i, refs)
                      for i, refs in enumerate(task_refs)]
            self._scheduler = LocalityScheduler(blocks, policy.locality_wait_s)

    # ------------------------------------------------------------------ #
    def _fail(self, index: int, exc: BaseException, pending: "deque[int]",
              front: bool = False) -> None:
        """Handle one task failure: schedule a retry or re-raise."""
        if not self.policy.should_retry(exc, self.attempts[index]):
            raise exc
        recover_start = time.perf_counter()
        is_lost = isinstance(exc, (WorkerLost, BlockLost))
        if isinstance(exc, BlockLost) and self.store is not None:
            self.store.recover_spilled_block(exc.segment)
        pause = self.policy.backoff_for(self.attempts[index])
        if pause:
            time.sleep(pause)
        self.attempts[index] += 1
        self.retries[index] += 1
        self.lost[index] += int(is_lost)
        self.recovery[index] += time.perf_counter() - recover_start
        if front:
            pending.appendleft(index)
        else:
            pending.append(index)

    def _dispatch_spec(self, index: int) -> Optional[FaultSpec]:
        """Claim and pre-process this dispatch's fault; the worker-side part."""
        if self.injector is None:
            return None
        spec = self.injector.claim(self.attempts[index])
        if spec is None:
            return None
        if spec.is_block_fault:
            if spec.target == "result":
                self.result_faults[index] = spec
            else:
                apply_block_fault(spec, self.store)
            return None
        return spec

    def stats_for(self, index: int) -> tuple:
        """Per-task (retries, lost, recovery_seconds, speculated, wins,
        local, remote, bytes_avoided, hints_dropped)."""
        return (self.retries[index], self.lost[index], self.recovery[index],
                self.speculated[index], self.spec_won[index],
                self.placed_local[index], self.placed_remote[index],
                self.bytes_avoided[index], self.hints_dropped[index])

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Execute every task to completion (or raise the fatal failure)."""
        hb_dir: Optional[str] = None
        if (self.policy.heartbeat_timeout_s is not None
                or self.policy.speculation_factor is not None
                or self._scheduler is not None):
            hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
        pending: "deque[int]" = deque(range(self.n_tasks))
        lanes = [_WorkerLane(i) for i in range(self.owner.workers)]
        try:
            while pending or any(lane.busy for lane in lanes):
                broken = self._pump(lanes, pending, hb_dir)
                if broken:
                    self._recover(broken, pending, hb_dir)
        finally:
            for lane in lanes:
                lane.pool.shutdown(wait=True)
            if hb_dir is not None:
                try:
                    # res- files are driver-consumed state, not leftovers:
                    # they persist by design until their worker is reaped
                    self.owner.last_hb_leftovers = sorted(
                        entry for entry in os.listdir(hb_dir)
                        if not entry.startswith(RESIDENT_PREFIX))
                except OSError:
                    self.owner.last_hb_leftovers = []
                shutil.rmtree(hb_dir, ignore_errors=True)

    def _dispatch(self, lane: _WorkerLane, index: int, pending: "deque[int]",
                  hb_dir: Optional[str],
                  broken: List[_WorkerLane]) -> bool:
        """Submit one first-class attempt of ``index`` on ``lane``.

        Returns ``False`` when the lane's pool turns out to be broken:
        the dispatch never started, so the task goes back to the front
        of the queue un-penalized, any injector claim is rolled back
        (the exactly-once dispatch counter stays exact), and the lane is
        handed to recovery.
        """
        first_attempt = self.attempts[index] == 0
        spec = self._dispatch_spec(index)
        try:
            lane.future = lane.pool.submit(
                self.worker_fn, self.payload_for(index, spec, hb_dir))
        except BrokenProcessPool:
            if self.injector is not None and first_attempt:
                self.injector.unclaim(spec or self.result_faults.pop(index, None))
            pending.appendleft(index)
            lane.clear()
            broken.append(lane)
            return False
        lane.index = index
        lane.is_dup = False
        lane.launched = time.monotonic()
        return True

    def _fill(self, lanes: List[_WorkerLane], pending: "deque[int]",
              hb_dir: Optional[str], broken: List[_WorkerLane]) -> None:
        """Assign pending tasks to free lanes (locality-aware when enabled).

        Without a scheduler this is plain queue order.  With one, each
        free lane asks :meth:`LocalityScheduler.choose` for the task it
        covers best; the lane's resident estimate is extended with the
        dispatched task's blocks immediately (so same-wave tasks over
        the same blocks cluster onto one lane instead of fanning out),
        and spilled blocks the lane is missing are prefetch-hinted so
        the page cache warms while the payload travels.
        """
        if self._scheduler is None:
            for lane in lanes:
                if not pending:
                    return
                if lane.busy or lane in broken:
                    continue
                self._dispatch(lane, pending.popleft(), pending, hb_dir, broken)
            return
        spilled = (self.store.spilled_names() if self.store is not None
                   else frozenset())
        progress = True
        while progress and pending:
            progress = False
            for lane in lanes:
                if not pending:
                    return
                if lane.busy or lane in broken:
                    continue
                others = {o.lane_id: o.resident for o in lanes
                          if o is not lane and o not in broken}
                placement = self._scheduler.choose(
                    pending, lane.lane_id, lane.resident, others, spilled)
                if placement is None:
                    continue  # hold: better-affine lanes may free in time
                pending.remove(placement.index)
                if placement.missing and self._task_refs is not None:
                    missing_refs = [r for r in self._task_refs[placement.index]
                                    if r.segment in placement.missing]
                    drops0 = prefetch_hints_dropped()
                    prefetch_refs(missing_refs)
                    self.hints_dropped[placement.index] += (
                        prefetch_hints_dropped() - drops0)
                if self._dispatch(lane, placement.index, pending, hb_dir,
                                  broken):
                    # last dispatch wins: a retried task re-scores, so the
                    # flags describe the attempt that actually produced
                    # the result
                    self.placed_local[placement.index] = int(placement.local)
                    self.placed_remote[placement.index] = int(not placement.local)
                    self.bytes_avoided[placement.index] += placement.bytes_avoided
                    lane.resident = lane.resident | self._scheduler.names_for(
                        placement.index)
                    progress = True

    def _pump(self, lanes: List[_WorkerLane], pending: "deque[int]",
              hb_dir: Optional[str]) -> List[_WorkerLane]:
        """Fill free lanes, wait for completions, and process them.

        Returns the lanes found broken this round (empty when none):
        the caller runs one recovery pass over all of them, so several
        simultaneous worker deaths cost one sweep-and-rebuild — and
        tasks queued or running on healthy lanes are never disturbed.
        """
        broken: List[_WorkerLane] = []
        self._fill(lanes, pending, hb_dir, broken)
        if broken:
            return broken
        busy = [lane for lane in lanes if lane.busy]
        if not busy:
            return []
        if (not pending and hb_dir is not None
                and all(lane.index in self._completed for lane in busy)):
            # every result is in; the only occupied lanes are beaten
            # straggler attempts.  SIGKILL them (ownership-verified via
            # the heartbeat files) and let the broken-lane path below
            # reap, sweep and rebuild with nothing left to resubmit.
            kill_heartbeat_workers(hb_dir)
        timeout = self.policy.heartbeat_interval_s if hb_dir is not None else None
        done, _ = futures_wait({lane.future for lane in busy}, timeout=timeout,
                               return_when=FIRST_COMPLETED)
        if not done:
            if hb_dir is not None and self.policy.heartbeat_timeout_s is not None:
                kill_stale_workers(hb_dir, self.policy.heartbeat_timeout_s)
            self._maybe_speculate(lanes, pending, hb_dir)
            return []
        for lane in busy:
            if lane.future not in done:
                continue
            index, was_dup = lane.index, lane.is_dup
            future = lane.future
            lane.clear()
            try:
                out = future.result()
            except BrokenProcessPool:
                # restore the slot so recovery counts this task lost
                lane.future, lane.index, lane.is_dup = future, index, was_dup
                broken.append(lane)
                continue
            except Exception as exc:  # noqa: BLE001 - policy decides below
                if index in self._completed:
                    continue  # a beaten attempt failed; the winner landed
                self._fail(index, exc, pending)
                continue
            self._observe_worker(lane, index, out, hb_dir)
            if index in self._completed:
                # the losing attempt of a speculated task finished after
                # the winner: discard its result (and published segments)
                if self.on_discard is not None:
                    self.on_discard(out)
                continue
            self._completed.add(index)
            if was_dup:
                self.spec_won[index] += 1
            if self.policy.speculation_factor is not None:
                self._durations.append(max(0.0, out[3] - out[2]))
            try:
                self.on_result(index, out, self.result_faults.pop(index, None),
                               self.stats_for(index))
            except BlockLost as exc:
                # the result's segments vanished before adoption:
                # re-execute the producing task
                self._completed.discard(index)
                if was_dup and self.spec_won[index]:
                    self.spec_won[index] -= 1
                self._fail(index, exc, pending)
        if broken:
            return broken
        self._maybe_speculate(lanes, pending, hb_dir)
        return []

    def _observe_worker(self, lane: _WorkerLane, index: int, out: tuple,
                        hb_dir: Optional[str]) -> None:
        """Absorb the worker-reported tail of a result tuple.

        Every successful result carries ``(pid, prefetch_drops)`` after
        the payload fields; with locality on, the worker's resident-set
        report (written beside its heartbeat) replaces the driver's
        optimistic estimate — ground truth from the process itself.
        """
        pid, dropped = out[5], out[6]
        lane.pid = pid
        if dropped:
            self.hints_dropped[index] += dropped
        if self._scheduler is not None and hb_dir is not None:
            names = read_resident_set(hb_dir, pid)
            if names is not None:
                lane.resident = names

    def _maybe_speculate(self, lanes: List[_WorkerLane], pending: "deque[int]",
                         hb_dir: Optional[str]) -> None:
        """Launch duplicate attempts for tasks straggling past the threshold.

        The threshold comes from :func:`_speculation_threshold`.  At
        most one duplicate per task, only onto genuinely free lanes
        (pending tasks always fill lanes first) with no regard for
        affinity — a duplicate exists to dodge a slow *worker*, so it
        must not inherit the placement that put the straggler there —
        and never through the injector: duplicates cannot fire or
        consume injected faults.
        """
        factor = self.policy.speculation_factor
        if factor is None or pending or not self._durations:
            return
        threshold = _speculation_threshold(self._durations, self.policy)
        now = time.monotonic()
        free = [lane for lane in lanes if not lane.busy]
        for lane in lanes:
            if not free:
                return
            if not lane.busy:
                continue
            index = lane.index
            if (lane.is_dup or self.speculated[index]
                    or index in self._completed):
                continue
            if now - lane.launched <= threshold:
                continue
            dup_lane = free.pop(0)
            try:
                dup_lane.future = dup_lane.pool.submit(
                    self.worker_fn, self.payload_for(index, None, hb_dir))
            except BrokenProcessPool:
                dup_lane.clear()
                return  # the primary's failure handling owns this path
            dup_lane.index = index
            dup_lane.is_dup = True
            dup_lane.launched = now
            self.speculated[index] += 1

    def _recover(self, broken: List[_WorkerLane], pending: "deque[int]",
                 hb_dir: Optional[str]) -> None:
        """Broken-lane path: account lost tasks, sweep, rebuild, resubmit.

        Only the broken lanes are torn down; healthy lanes keep their
        workers, queues and resident sets.  Rebuilding resets each
        broken lane's resident set — a fresh worker holds nothing, so
        the scheduler must not route tasks on the dead process's
        affinity — and ``reap_dead_heartbeats`` drops the dead pids'
        heartbeat *and* resident-set files.
        """
        recover_start = time.perf_counter()
        doomed = sorted({lane.index for lane in broken if lane.busy})
        for lane in broken:
            lane.clear()
            lane.pool.shutdown(wait=True)  # reap the dead worker first
        self.owner._after_pool_break()
        if hb_dir is not None:
            # a SIGKILLed worker never ran its clear_heartbeat; drop the
            # files of dead/recycled pids so hb_dir ends the run empty
            reap_dead_heartbeats(hb_dir)
        alive = [i for i in doomed if i not in self._completed]
        for index in reversed(alive):
            self._fail(index, WorkerLost(
                f"worker died while task {index} was in flight"),
                pending, front=True)
        for lane in broken:
            lane.rebuild()
        if alive:
            self.recovery[alive[0]] += time.perf_counter() - recover_start


class ProcessExecutor(ExecutorBase):
    """Process-pool executor (pays pickling costs, bypasses the GIL).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    fault_policy : FaultPolicy, optional
        Opt into worker-death recovery and task retries (see the module
        docstring); ``None`` keeps the fail-fast behaviour.
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool, measuring both crossings."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # serialize each payload exactly once: the blob is both the bytes
        # shipped to the worker and the measurement of what crossed
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in items]
        results: List[Any] = [None] * len(items)
        timings: List[Optional[TaskTiming]] = [None] * len(items)

        def payload_for(i: int, spec: Optional[FaultSpec],
                        hb_dir: Optional[str]) -> tuple:
            return (i, fn, blobs[i], spec, hb_dir)

        def on_result(i: int, out_tuple: tuple, result_fault: Optional[FaultSpec],
                      stats: tuple) -> None:
            _, out, start, stop = out_tuple[:4]
            # result-target block faults act on shm segments; the pickle
            # plane has none, so they are inert here
            results[i] = pickle.loads(out)
            (retries, lost, recovery, speculated, spec_won,
             local, remote, avoided, hints_dropped) = stats
            timings[i] = TaskTiming(i, start, stop,
                                    bytes_pickled=len(blobs[i]),
                                    bytes_results_pickled=len(out),
                                    retries=retries, lost=lost,
                                    recovery_seconds=recovery,
                                    speculated=speculated,
                                    speculation_won=spec_won,
                                    placed_local=local, placed_remote=remote,
                                    bytes_spill_reads_avoided=avoided,
                                    prefetch_hints_dropped=hints_dropped)

        # the pickle plane carries no BlockRefs unless the caller put
        # some in the payloads (mixed plane); collect them so locality
        # placement works wherever refs are present
        task_refs = None
        if self.fault_policy is not None and self.fault_policy.locality:
            task_refs = [collect_refs(item) for item in items]
        _PooledMapEngine(self, _timed_call, payload_for, on_result,
                         len(items), task_refs=task_refs).run()
        self.timings = [t for t in timings if t is not None]
        return results


def _shm_timed_call(payload: tuple) -> tuple:
    """Run one task in a pool worker on the shm plane, both directions.

    Unpickling the (tiny) ref payload plus attaching to the segments
    *is* this data plane's deserialization cost, and publishing the
    result arrays into shared segments is its serialization cost — both
    run inside the timed region, exactly where pickling/unpickling shows
    up for :class:`ProcessExecutor`.  Only the published refs travel
    back through the pickle channel.

    ``spec`` carries a claimed task-side fault: a ``kill_worker`` with
    ``when="after_publish"`` SIGKILLs *between* publishing and the
    hand-off — the crash window whose pid-keyed orphan segments the
    driver's recovery sweep reclaims.
    """
    index, fn, blob, spec, hb_dir = payload
    write_heartbeat(hb_dir)
    drops_before = prefetch_hints_dropped()
    try:
        if spec is not None:
            execute_worker_fault(spec)
        start = time.perf_counter()
        result = fn(resolve_payload(pickle.loads(blob)))
        published, shared = publish_payload(result)
        out = pickle.dumps(published, protocol=pickle.HIGHEST_PROTOCOL)
        stop = time.perf_counter()
        if (spec is not None and spec.kind == "kill_worker"
                and spec.when == "after_publish"):
            # die with the refs unreturned: the segments are orphans only
            # the pid-keyed sweep can reclaim (SIGKILL skips every hook)
            os.kill(os.getpid(), signal.SIGKILL)
        # the blob is on its way to the driver, whose store adopts the
        # segments; this worker's crash-cleanup hook must leave them alone
        mark_handed_off(published)
        report_resident_set(hb_dir)
        return (index, out, start, stop, shared, os.getpid(),
                prefetch_hints_dropped() - drops_before)
    finally:
        clear_heartbeat(hb_dir)


class SharedMemoryExecutor(ExecutorBase):
    """Process-pool executor with a zero-copy shared-memory data plane.

    Before submission every task payload is walked and its NumPy arrays
    are registered in the executor's :class:`SharedMemoryStore` (each
    distinct array exactly once); the workers receive payloads whose
    arrays are replaced by :class:`~repro.frameworks.shm.BlockRef`
    handles and rehydrate them as views of the shared segments.  Results
    travel the same plane in reverse: workers publish result arrays into
    fresh segments, only the refs return through the pickle channel, and
    the driver adopts the segments into the store — so returned arrays
    are read-only views that stay valid until the store is cleaned up
    (:meth:`shutdown`), and they spill to disk with the rest of the
    store when a capacity is configured.

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    store : SharedMemoryStore, optional
        An existing store to register payloads in (shared with a
        framework, for example).  When omitted the executor owns a
        private store and unlinks its segments on :meth:`shutdown`.
    store_capacity_bytes : int, optional
        Capacity watermark for a privately owned store (ignored when
        ``store`` is given); segments past it spill to disk.
    spill_dir : str, optional
        Spill directory for a privately owned store.
    spill_async : bool, optional
        Write-behind spilling for a privately owned store (default
        ``True``; see :class:`~repro.frameworks.shm.SharedMemoryStore`).
    spill_queue_depth : int, optional
        Bounded spill-queue depth for a privately owned store.
    fault_policy : FaultPolicy, optional
        Opt into worker-death recovery, retries, the heartbeat monitor
        and lost-block handling; ``None`` keeps fail-fast behaviour.
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 store: SharedMemoryStore | None = None,
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)
        if store is not None:
            self.store = store
        else:
            self.store = SharedMemoryStore(capacity_bytes=store_capacity_bytes,
                                           spill_dir=spill_dir,
                                           spill_async=spill_async,
                                           spill_queue_depth=spill_queue_depth)
        self._owns_store = store is None

    def _after_pool_break(self) -> None:
        """Reclaim what a dead worker left behind before resubmitting.

        A SIGKILLed worker runs neither ``atexit`` nor its
        ``multiprocessing.util.Finalize`` hooks, so result segments it
        published but never handed off would outlive the run —
        :func:`~repro.frameworks.shm.sweep_orphan_segments` reclaims
        them by their pid-keyed names now that the pool's processes are
        reaped.  The spill pipeline is settled too, so resubmitted tasks
        resolve through a consistent tier state; a sticky spill-writer
        failure is tolerated here — the flush reinstates the enqueued
        blocks as resident (no names leak) and the recovery proceeds
        with spilling disabled.
        """
        sweep_orphan_segments()
        try:
            self.store.flush_spill()
        except RuntimeError:
            pass

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool with zero-copy payloads and results."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # staging payloads can trigger spill eviction; attribute each
        # item's put-path stall (and background-writer progress) so the
        # per-task timings carry the write-behind split
        shared_items: List[Any] = []
        stage_waits: List[float] = []
        stage_hidden: List[float] = []
        for item in items:
            wait0 = self.store.spill_wait_seconds
            hidden0 = self.store.spill_hidden_seconds
            shared_items.append(share_payload(item, self.store)[0])
            stage_waits.append(self.store.spill_wait_seconds - wait0)
            stage_hidden.append(self.store.spill_hidden_seconds - hidden0)
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in shared_items]
        shared_sizes = [refs_nbytes(item) for item in shared_items]
        results: List[Any] = [None] * len(items)
        timings: List[Optional[TaskTiming]] = [None] * len(items)

        def payload_for(i: int, spec: Optional[FaultSpec],
                        hb_dir: Optional[str]) -> tuple:
            return (i, fn, blobs[i], spec, hb_dir)

        def on_result(i: int, out_tuple: tuple, result_fault: Optional[FaultSpec],
                      stats: tuple) -> None:
            _, out, start, stop, shared = out_tuple[:5]
            payload = pickle.loads(out)
            if result_fault is not None:
                # injected handoff crash: the refs' segments vanish before
                # adoption, which must surface as BlockLost → re-execution
                unlink_result_refs(payload)
            # adopt while the pool is alive: the worker that created the
            # segments keeps them mapped until the driver owns them
            wait0 = self.store.spill_wait_seconds
            hidden0 = self.store.spill_hidden_seconds
            results[i] = adopt_payload(payload, self.store)
            (retries, lost, recovery, speculated, spec_won,
             local, remote, avoided, hints_dropped) = stats
            timings[i] = TaskTiming(
                i, start, stop,
                bytes_pickled=len(blobs[i]),
                bytes_shared=shared_sizes[i],
                bytes_results_pickled=len(out),
                bytes_results_shared=shared,
                spill_wait_seconds=stage_waits[i]
                + self.store.spill_wait_seconds - wait0,
                spill_hidden_seconds=stage_hidden[i]
                + self.store.spill_hidden_seconds - hidden0,
                retries=retries, lost=lost, recovery_seconds=recovery,
                speculated=speculated, speculation_won=spec_won,
                placed_local=local, placed_remote=remote,
                bytes_spill_reads_avoided=avoided,
                prefetch_hints_dropped=hints_dropped)

        def on_discard(out_tuple: tuple) -> None:
            # a beaten speculative attempt still published its result
            # segments (and marked them handed off, so its own crash
            # cleanup leaves them alone); unlink them here or they leak
            try:
                unlink_result_refs(pickle.loads(out_tuple[1]))
            except Exception:  # noqa: BLE001 - best-effort reclamation
                pass

        task_refs = None
        if self.fault_policy is not None and self.fault_policy.locality:
            task_refs = [collect_refs(item) for item in shared_items]
        _PooledMapEngine(self, _shm_timed_call, payload_for, on_result,
                         len(items), on_discard=on_discard,
                         task_refs=task_refs).run()
        self.timings = [t for t in timings if t is not None]
        return results

    def shutdown(self) -> None:
        """Unlink the owned store's segments (shared stores are left alone)."""
        if self._owns_store:
            self.store.cleanup()


def make_executor(kind: str = "serial", workers: int | None = None,
                  store_capacity_bytes: int | None = None,
                  spill_dir: str | None = None,
                  spill_async: bool = True,
                  spill_queue_depth: int = 4,
                  fault_policy: FaultPolicy | None = None,
                  fault_injector: FaultInjector | None = None) -> ExecutorBase:
    """Build an executor by name.

    Parameters
    ----------
    kind : str
        ``"serial"``, ``"threads"``, ``"processes"`` or ``"shm"``.
    workers : int, optional
        Pool size for the pooled kinds.
    store_capacity_bytes, spill_dir, spill_async, spill_queue_depth : optional
        Store and spill-pipeline configuration, forwarded to
        :class:`SharedMemoryExecutor` (ignored by the other kinds).
    fault_policy : FaultPolicy, optional
        Retry/recovery policy for the resilience layer (all kinds).
    fault_injector : FaultInjector, optional
        Deterministic chaos source for fault-injection runs (all kinds).

    Returns
    -------
    ExecutorBase
        The requested executor.
    """
    if kind == "serial":
        return SerialExecutor(fault_policy=fault_policy,
                              fault_injector=fault_injector)
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers, fault_policy=fault_policy,
                              fault_injector=fault_injector)
    if kind in ("processes", "process"):
        return ProcessExecutor(workers, fault_policy=fault_policy,
                               fault_injector=fault_injector)
    if kind in ("shm", "sharedmem", "shared-memory"):
        return SharedMemoryExecutor(workers,
                                    store_capacity_bytes=store_capacity_bytes,
                                    spill_dir=spill_dir, spill_async=spill_async,
                                    spill_queue_depth=spill_queue_depth,
                                    fault_policy=fault_policy,
                                    fault_injector=fault_injector)
    raise ValueError(f"unknown executor kind {kind!r}")
