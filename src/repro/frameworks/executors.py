"""Task executors: the physical layer under every framework substrate.

Each framework (sparklite, dasklite, pilot, mpilite) needs to actually run
Python callables over collections of inputs.  To keep that concern in one
place the frameworks delegate to one of three executors:

* :class:`SerialExecutor` — runs tasks in the calling thread; fully
  deterministic, used by default in tests.
* :class:`ThreadExecutor` — a thread pool; NumPy/SciPy kernels release the
  GIL, so this gives real parallel speedup for the compute-heavy tasks of
  the paper (2D-RMSD blocks, cdist blocks) without pickling overhead.
* :class:`ProcessExecutor` — a process pool (``spawn`` not required, the
  default start method is used); incurs pickling of inputs and outputs,
  which is exactly the serialization cost the paper discusses for
  Python frameworks.

All executors record per-task wall-clock durations so the frameworks can
report scheduling overhead separately from useful work.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Sequence

__all__ = [
    "TaskTiming",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "default_worker_count",
]


def default_worker_count() -> int:
    """A sensible default worker count for the local machine."""
    return max(1, (os.cpu_count() or 2) - 0)


@dataclass
class TaskTiming:
    """Wall-clock timing of one executed task."""

    index: int
    start: float
    stop: float

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.stop - self.start


@dataclass
class ExecutorBase:
    """Common interface: ``map_tasks(fn, items)`` -> list of results.

    Results are always returned in input order.  ``timings`` holds the
    per-task wall clock of the most recent ``map_tasks`` call.
    """

    workers: int = 1
    timings: List[TaskTiming] = field(default_factory=list, repr=False)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in order."""
        raise NotImplementedError

    def map_with_args(self, fn: Callable[..., Any],
                      items: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple in ``items``."""
        return self.map_tasks(lambda args: fn(*args), items)

    @property
    def total_task_time(self) -> float:
        """Sum of task durations from the last ``map_tasks`` call."""
        return sum(t.duration for t in self.timings)

    def shutdown(self) -> None:
        """Release any pooled resources (no-op for stateless executors)."""


class SerialExecutor(ExecutorBase):
    """Run every task in the calling thread, in order."""

    def __init__(self) -> None:
        super().__init__(workers=1)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        results: List[Any] = []
        for i, item in enumerate(items):
            start = time.perf_counter()
            results.append(fn(item))
            self.timings.append(TaskTiming(i, start, time.perf_counter()))
        return results


class ThreadExecutor(ExecutorBase):
    """Thread-pool executor (shared memory, no pickling)."""

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        items = list(items)
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = [None] * len(items)  # type: ignore[list-item]

        def run(index: int, item: Any) -> None:
            start = time.perf_counter()
            results[index] = fn(item)
            timings[index] = TaskTiming(index, start, time.perf_counter())

        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, i, item) for i, item in enumerate(items)]
            for future in futures:
                future.result()  # re-raise worker exceptions here
        self.timings = list(timings)
        return results


def _timed_call(payload: tuple) -> tuple:
    """Module-level helper so ProcessExecutor payloads are picklable."""
    index, fn, item = payload
    start = time.perf_counter()
    result = fn(item)
    return index, result, start, time.perf_counter()


class ProcessExecutor(ExecutorBase):
    """Process-pool executor (pays pickling costs, bypasses the GIL)."""

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        items = list(items)
        if not items:
            return []
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(i, fn, item) for i, item in enumerate(items)]
            for index, result, start, stop in pool.map(_timed_call, payloads):
                results[index] = result
                timings.append(TaskTiming(index, start, stop))
        timings.sort(key=lambda t: t.index)
        self.timings = timings
        return results


def make_executor(kind: str = "serial", workers: int | None = None) -> ExecutorBase:
    """Factory: ``"serial"``, ``"threads"`` or ``"processes"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers)
    if kind in ("processes", "process"):
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r}")
