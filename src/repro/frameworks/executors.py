"""Task executors: the physical layer under every framework substrate.

Each framework (sparklite, dasklite, pilot, mpilite) needs to actually run
Python callables over collections of inputs.  To keep that concern in one
place the frameworks delegate to one of four executors:

* :class:`SerialExecutor` — runs tasks in the calling thread; fully
  deterministic, used by default in tests.
* :class:`ThreadExecutor` — a thread pool; NumPy/SciPy kernels release the
  GIL, so this gives real parallel speedup for the compute-heavy tasks of
  the paper (2D-RMSD blocks, cdist blocks) without pickling overhead.
* :class:`ProcessExecutor` — a process pool (``spawn`` not required, the
  default start method is used); incurs pickling of inputs and outputs,
  which is exactly the serialization cost the paper discusses for
  Python frameworks.
* :class:`SharedMemoryExecutor` — a process pool with the zero-copy data
  plane of :mod:`repro.frameworks.shm`: array payloads are registered in
  a :class:`~repro.frameworks.shm.SharedMemoryStore` once and workers
  receive tiny :class:`~repro.frameworks.shm.BlockRef` handles that
  rehydrate as views, removing the per-task array pickling entirely.

All executors record per-task wall-clock durations so the frameworks can
report scheduling overhead separately from useful work; the process-based
executors additionally record per-task ``bytes_pickled`` (input payload
bytes that crossed the process boundary) and ``bytes_shared`` (array
bytes the task accessed through shared memory instead).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

from .shm import SharedMemoryStore, refs_nbytes, resolve_payload, share_payload

__all__ = [
    "TaskTiming",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "default_worker_count",
]


def default_worker_count() -> int:
    """A sensible default worker count for the local machine.

    One core is reserved for the driver (scheduler loops, result
    gathering, the interactive session), matching the deployment the
    paper's single-node runs use; the floor of 1 keeps single-core
    machines working.
    """
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class TaskTiming:
    """Wall-clock timing and data-plane accounting of one executed task.

    ``bytes_pickled`` counts the task's *input payload* bytes that were
    serialized across a process boundary; ``bytes_shared`` counts the
    array bytes the task accessed through the shared-memory plane instead
    of receiving them in the payload.  Both stay 0 for in-process
    executors, where no boundary is crossed.
    """

    index: int
    start: float
    stop: float
    bytes_pickled: int = 0
    bytes_shared: int = 0

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.stop - self.start


@dataclass
class ExecutorBase:
    """Common interface: ``map_tasks(fn, items)`` -> list of results.

    Results are always returned in input order.  ``timings`` holds the
    per-task wall clock of the most recent ``map_tasks`` call.
    """

    workers: int = 1
    timings: List[TaskTiming] = field(default_factory=list, repr=False)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in order."""
        raise NotImplementedError

    def map_with_args(self, fn: Callable[..., Any],
                      items: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple in ``items``."""
        return self.map_tasks(lambda args: fn(*args), items)

    @property
    def total_task_time(self) -> float:
        """Sum of task durations from the last ``map_tasks`` call."""
        return sum(t.duration for t in self.timings)

    @property
    def total_bytes_pickled(self) -> int:
        """Input payload bytes pickled across process boundaries (last call)."""
        return sum(t.bytes_pickled for t in self.timings)

    @property
    def total_bytes_shared(self) -> int:
        """Array bytes accessed through shared memory (last call)."""
        return sum(t.bytes_shared for t in self.timings)

    def shutdown(self) -> None:
        """Release any pooled resources (no-op for stateless executors)."""


class SerialExecutor(ExecutorBase):
    """Run every task in the calling thread, in order."""

    def __init__(self) -> None:
        super().__init__(workers=1)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        results: List[Any] = []
        for i, item in enumerate(items):
            start = time.perf_counter()
            results.append(fn(item))
            self.timings.append(TaskTiming(i, start, time.perf_counter()))
        return results


class ThreadExecutor(ExecutorBase):
    """Thread-pool executor (shared memory, no pickling)."""

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        items = list(items)
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = [None] * len(items)  # type: ignore[list-item]

        def run(index: int, item: Any) -> None:
            start = time.perf_counter()
            results[index] = fn(item)
            timings[index] = TaskTiming(index, start, time.perf_counter())

        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, i, item) for i, item in enumerate(items)]
            for future in futures:
                future.result()  # re-raise worker exceptions here
        self.timings = list(timings)
        return results


def _timed_call(payload: tuple) -> tuple:
    """Module-level helper so ProcessExecutor payloads are picklable.

    The item arrives pre-pickled (serialized exactly once, driver-side,
    which is also how its byte count is measured); deserialization runs
    inside the timed region, where a real deployment pays it.
    """
    index, fn, blob = payload
    start = time.perf_counter()
    result = fn(pickle.loads(blob))
    return index, result, start, time.perf_counter()


class ProcessExecutor(ExecutorBase):
    """Process-pool executor (pays pickling costs, bypasses the GIL)."""

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        items = list(items)
        if not items:
            return []
        # serialize each payload exactly once: the blob is both the bytes
        # shipped to the worker and the measurement of what crossed
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in items]
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(i, fn, blob) for i, blob in enumerate(blobs)]
            for index, result, start, stop in pool.map(_timed_call, payloads):
                results[index] = result
                timings.append(TaskTiming(index, start, stop,
                                          bytes_pickled=len(blobs[index])))
        timings.sort(key=lambda t: t.index)
        self.timings = timings
        return results


def _shm_timed_call(payload: tuple) -> tuple:
    """Worker-side trampoline: unpickle the ref payload and resolve it.

    Both steps happen inside the timed region on purpose — unpickling
    the (tiny) ref payload plus attaching to the segment *is* this data
    plane's deserialization cost, and it must show up where pickling
    showed up for :class:`ProcessExecutor`.
    """
    index, fn, blob = payload
    start = time.perf_counter()
    result = fn(resolve_payload(pickle.loads(blob)))
    return index, result, start, time.perf_counter()


class SharedMemoryExecutor(ExecutorBase):
    """Process-pool executor with a zero-copy shared-memory data plane.

    Before submission every task payload is walked and its NumPy arrays
    are registered in the executor's :class:`SharedMemoryStore` (each
    distinct array exactly once); the workers receive payloads whose
    arrays are replaced by :class:`~repro.frameworks.shm.BlockRef`
    handles and rehydrate them as views of the shared segments.  Results
    still return through the regular pickle channel.

    Parameters
    ----------
    store:
        An existing store to register payloads in (shared with a
        framework, for example).  When omitted the executor owns a
        private store and unlinks its segments on :meth:`shutdown`.
    """

    def __init__(self, workers: int | None = None,
                 store: SharedMemoryStore | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())
        self.store = store if store is not None else SharedMemoryStore()
        self._owns_store = store is None

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        self.timings = []
        items = list(items)
        if not items:
            return []
        shared_items = [share_payload(item, self.store)[0] for item in items]
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in shared_items]
        shared_sizes = [refs_nbytes(item) for item in shared_items]
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(i, fn, blob) for i, blob in enumerate(blobs)]
            for index, result, start, stop in pool.map(_shm_timed_call, payloads):
                results[index] = result
                timings.append(TaskTiming(index, start, stop,
                                          bytes_pickled=len(blobs[index]),
                                          bytes_shared=shared_sizes[index]))
        timings.sort(key=lambda t: t.index)
        self.timings = timings
        return results

    def shutdown(self) -> None:
        """Unlink the owned store's segments (shared stores are left alone)."""
        if self._owns_store:
            self.store.cleanup()


def make_executor(kind: str = "serial", workers: int | None = None) -> ExecutorBase:
    """Factory: ``"serial"``, ``"threads"``, ``"processes"`` or ``"shm"``."""
    if kind == "serial":
        return SerialExecutor()
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers)
    if kind in ("processes", "process"):
        return ProcessExecutor(workers)
    if kind in ("shm", "sharedmem", "shared-memory"):
        return SharedMemoryExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r}")
