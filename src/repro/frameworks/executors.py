"""Task executors: the physical layer under every framework substrate.

Each framework (sparklite, dasklite, pilot, mpilite) needs to actually run
Python callables over collections of inputs.  To keep that concern in one
place the frameworks delegate to one of four executors:

* :class:`SerialExecutor` — runs tasks in the calling thread; fully
  deterministic, used by default in tests.
* :class:`ThreadExecutor` — a thread pool; NumPy/SciPy kernels release the
  GIL, so this gives real parallel speedup for the compute-heavy tasks of
  the paper (2D-RMSD blocks, cdist blocks) without pickling overhead.
* :class:`ProcessExecutor` — a process pool (``spawn`` not required, the
  default start method is used); incurs pickling of inputs and outputs,
  which is exactly the serialization cost the paper discusses for
  Python frameworks.
* :class:`SharedMemoryExecutor` — a process pool with the zero-copy data
  plane of :mod:`repro.frameworks.shm`: array payloads are registered in
  a :class:`~repro.frameworks.shm.SharedMemoryStore` once and workers
  receive tiny :class:`~repro.frameworks.shm.BlockRef` handles that
  rehydrate as views — and the same happens in reverse for results,
  which workers publish into shared segments and the driver adopts
  zero-copy instead of unpickling.

All executors record per-task wall-clock durations so the frameworks can
report scheduling overhead separately from useful work; the process-based
executors additionally record, per task, ``bytes_pickled`` /
``bytes_results_pickled`` (payload bytes that crossed the process
boundary serialized, in each direction) and ``bytes_shared`` /
``bytes_results_shared`` (array bytes the task accessed or returned
through shared memory instead).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence

from .shm import (
    SharedMemoryStore,
    adopt_payload,
    mark_handed_off,
    publish_payload,
    refs_nbytes,
    resolve_payload,
    share_payload,
)

__all__ = [
    "TaskTiming",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "default_worker_count",
]


def default_worker_count() -> int:
    """Return a sensible default worker count for the local machine.

    One core is reserved for the driver (scheduler loops, result
    gathering, the interactive session), matching the deployment the
    paper's single-node runs use; the floor of 1 keeps single-core
    machines working.

    Returns
    -------
    int
        ``max(1, cpu_count - 1)``.
    """
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class TaskTiming:
    """Wall-clock timing and data-plane accounting of one executed task.

    Parameters
    ----------
    index : int
        Position of the task in the submitted batch.
    start, stop : float
        ``perf_counter`` timestamps bracketing the task (including its
        payload deserialization and result serialization, where a real
        deployment pays them).
    bytes_pickled : int, optional
        The task's *input payload* bytes serialized across a process
        boundary.
    bytes_shared : int, optional
        Array bytes the task accessed through the shared-memory plane
        instead of receiving them in the payload.
    bytes_results_pickled : int, optional
        The task's *result payload* bytes serialized back across the
        boundary (for the shm plane this is just the refs).
    bytes_results_shared : int, optional
        Array bytes the task returned through shared memory instead of
        the result payload.
    spill_wait_seconds : float, optional
        Seconds the driver's store stalled the hot path on spill
        eviction while staging this task's payload and adopting its
        results (the full file write for synchronous stores,
        backpressure blocking for write-behind stores).
    spill_hidden_seconds : float, optional
        Spill-writer seconds that elapsed in the background during the
        same windows — file writes the write-behind pipeline hid from
        the put path.

    Notes
    -----
    All byte and spill counters stay 0 for in-process executors, where
    no boundary is crossed and the framework's store is driven directly.
    """

    index: int
    start: float
    stop: float
    bytes_pickled: int = 0
    bytes_shared: int = 0
    bytes_results_pickled: int = 0
    bytes_results_shared: int = 0
    spill_wait_seconds: float = 0.0
    spill_hidden_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.stop - self.start


@dataclass
class ExecutorBase:
    """Common interface: ``map_tasks(fn, items)`` -> list of results.

    Results are always returned in input order.  ``timings`` holds the
    per-task wall clock of the most recent ``map_tasks`` call.
    """

    workers: int = 1
    timings: List[TaskTiming] = field(default_factory=list, repr=False)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in order.

        Parameters
        ----------
        fn : callable
            Task function applied to each item.
        items : sequence
            Task payloads.

        Returns
        -------
        list
            ``[fn(item) for item in items]``, computed on this
            executor's resources.
        """
        raise NotImplementedError

    def map_with_args(self, fn: Callable[..., Any],
                      items: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple in ``items``."""
        return self.map_tasks(lambda args: fn(*args), items)

    @property
    def total_task_time(self) -> float:
        """Sum of task durations from the last ``map_tasks`` call."""
        return sum(t.duration for t in self.timings)

    @property
    def total_bytes_pickled(self) -> int:
        """Input payload bytes pickled across process boundaries (last call)."""
        return sum(t.bytes_pickled for t in self.timings)

    @property
    def total_bytes_shared(self) -> int:
        """Array bytes accessed through shared memory (last call)."""
        return sum(t.bytes_shared for t in self.timings)

    @property
    def total_bytes_results_pickled(self) -> int:
        """Result payload bytes pickled back across the boundary (last call)."""
        return sum(t.bytes_results_pickled for t in self.timings)

    @property
    def total_bytes_results_shared(self) -> int:
        """Array bytes returned through shared memory (last call)."""
        return sum(t.bytes_results_shared for t in self.timings)

    @property
    def total_spill_wait_seconds(self) -> float:
        """Seconds spill eviction stalled the hot path (last call)."""
        return sum(t.spill_wait_seconds for t in self.timings)

    @property
    def total_spill_hidden_seconds(self) -> float:
        """Background spill-writer seconds observed during the last call."""
        return sum(t.spill_hidden_seconds for t in self.timings)

    def shutdown(self) -> None:
        """Release any pooled resources (no-op for stateless executors)."""


class SerialExecutor(ExecutorBase):
    """Run every task in the calling thread, in order."""

    def __init__(self) -> None:
        super().__init__(workers=1)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks one after another in the calling thread."""
        self.timings = []
        results: List[Any] = []
        for i, item in enumerate(items):
            start = time.perf_counter()
            results.append(fn(item))
            self.timings.append(TaskTiming(i, start, time.perf_counter()))
        return results


class ThreadExecutor(ExecutorBase):
    """Thread-pool executor (shared memory, no pickling).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    """

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on the thread pool, preserving input order."""
        self.timings = []
        items = list(items)
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = [None] * len(items)  # type: ignore[list-item]

        def run(index: int, item: Any) -> None:
            start = time.perf_counter()
            results[index] = fn(item)
            timings[index] = TaskTiming(index, start, time.perf_counter())

        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, i, item) for i, item in enumerate(items)]
            for future in futures:
                future.result()  # re-raise worker exceptions here
        self.timings = list(timings)
        return results


def _timed_call(payload: tuple) -> tuple:
    """Run one pre-pickled task in a pool worker (pickle plane).

    The item arrives pre-pickled (serialized exactly once, driver-side,
    which is also how its byte count is measured); deserialization and
    the result's serialization both run inside the timed region, where a
    real deployment pays them.  The result returns as a pickle blob so
    the driver can account the exact bytes that crossed back.
    """
    index, fn, blob = payload
    start = time.perf_counter()
    result = fn(pickle.loads(blob))
    out = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return index, out, start, time.perf_counter()


class ProcessExecutor(ExecutorBase):
    """Process-pool executor (pays pickling costs, bypasses the GIL).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    """

    def __init__(self, workers: int | None = None) -> None:
        super().__init__(workers=workers or default_worker_count())

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool, measuring both crossings."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # serialize each payload exactly once: the blob is both the bytes
        # shipped to the worker and the measurement of what crossed
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in items]
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(i, fn, blob) for i, blob in enumerate(blobs)]
            for index, out, start, stop in pool.map(_timed_call, payloads):
                results[index] = pickle.loads(out)
                timings.append(TaskTiming(index, start, stop,
                                          bytes_pickled=len(blobs[index]),
                                          bytes_results_pickled=len(out)))
        timings.sort(key=lambda t: t.index)
        self.timings = timings
        return results


def _shm_timed_call(payload: tuple) -> tuple:
    """Run one task in a pool worker on the shm plane, both directions.

    Unpickling the (tiny) ref payload plus attaching to the segments
    *is* this data plane's deserialization cost, and publishing the
    result arrays into shared segments is its serialization cost — both
    run inside the timed region, exactly where pickling/unpickling shows
    up for :class:`ProcessExecutor`.  Only the published refs travel
    back through the pickle channel.
    """
    index, fn, blob = payload
    start = time.perf_counter()
    result = fn(resolve_payload(pickle.loads(blob)))
    published, shared = publish_payload(result)
    out = pickle.dumps(published, protocol=pickle.HIGHEST_PROTOCOL)
    stop = time.perf_counter()
    # the blob is on its way to the driver, whose store adopts the
    # segments; this worker's crash-cleanup hook must leave them alone
    mark_handed_off(published)
    return index, out, start, stop, shared


class SharedMemoryExecutor(ExecutorBase):
    """Process-pool executor with a zero-copy shared-memory data plane.

    Before submission every task payload is walked and its NumPy arrays
    are registered in the executor's :class:`SharedMemoryStore` (each
    distinct array exactly once); the workers receive payloads whose
    arrays are replaced by :class:`~repro.frameworks.shm.BlockRef`
    handles and rehydrate them as views of the shared segments.  Results
    travel the same plane in reverse: workers publish result arrays into
    fresh segments, only the refs return through the pickle channel, and
    the driver adopts the segments into the store — so returned arrays
    are read-only views that stay valid until the store is cleaned up
    (:meth:`shutdown`), and they spill to disk with the rest of the
    store when a capacity is configured.

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    store : SharedMemoryStore, optional
        An existing store to register payloads in (shared with a
        framework, for example).  When omitted the executor owns a
        private store and unlinks its segments on :meth:`shutdown`.
    store_capacity_bytes : int, optional
        Capacity watermark for a privately owned store (ignored when
        ``store`` is given); segments past it spill to disk.
    spill_dir : str, optional
        Spill directory for a privately owned store.
    spill_async : bool, optional
        Write-behind spilling for a privately owned store (default
        ``True``; see :class:`~repro.frameworks.shm.SharedMemoryStore`).
    spill_queue_depth : int, optional
        Bounded spill-queue depth for a privately owned store.
    """

    def __init__(self, workers: int | None = None,
                 store: SharedMemoryStore | None = None,
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4) -> None:
        super().__init__(workers=workers or default_worker_count())
        if store is not None:
            self.store = store
        else:
            self.store = SharedMemoryStore(capacity_bytes=store_capacity_bytes,
                                           spill_dir=spill_dir,
                                           spill_async=spill_async,
                                           spill_queue_depth=spill_queue_depth)
        self._owns_store = store is None

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool with zero-copy payloads and results."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # staging payloads can trigger spill eviction; attribute each
        # item's put-path stall (and background-writer progress) so the
        # per-task timings carry the write-behind split
        shared_items: List[Any] = []
        stage_waits: List[float] = []
        stage_hidden: List[float] = []
        for item in items:
            wait0 = self.store.spill_wait_seconds
            hidden0 = self.store.spill_hidden_seconds
            shared_items.append(share_payload(item, self.store)[0])
            stage_waits.append(self.store.spill_wait_seconds - wait0)
            stage_hidden.append(self.store.spill_hidden_seconds - hidden0)
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in shared_items]
        shared_sizes = [refs_nbytes(item) for item in shared_items]
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            payloads = [(i, fn, blob) for i, blob in enumerate(blobs)]
            for index, out, start, stop, shared in pool.map(_shm_timed_call, payloads):
                # adopt while the pool is alive: the worker that created
                # the segments keeps them mapped until the driver owns them
                wait0 = self.store.spill_wait_seconds
                hidden0 = self.store.spill_hidden_seconds
                results[index] = adopt_payload(pickle.loads(out), self.store)
                timings.append(TaskTiming(
                    index, start, stop,
                    bytes_pickled=len(blobs[index]),
                    bytes_shared=shared_sizes[index],
                    bytes_results_pickled=len(out),
                    bytes_results_shared=shared,
                    spill_wait_seconds=stage_waits[index]
                    + self.store.spill_wait_seconds - wait0,
                    spill_hidden_seconds=stage_hidden[index]
                    + self.store.spill_hidden_seconds - hidden0))
        timings.sort(key=lambda t: t.index)
        self.timings = timings
        return results

    def shutdown(self) -> None:
        """Unlink the owned store's segments (shared stores are left alone)."""
        if self._owns_store:
            self.store.cleanup()


def make_executor(kind: str = "serial", workers: int | None = None,
                  store_capacity_bytes: int | None = None,
                  spill_dir: str | None = None,
                  spill_async: bool = True,
                  spill_queue_depth: int = 4) -> ExecutorBase:
    """Build an executor by name.

    Parameters
    ----------
    kind : str
        ``"serial"``, ``"threads"``, ``"processes"`` or ``"shm"``.
    workers : int, optional
        Pool size for the pooled kinds.
    store_capacity_bytes, spill_dir, spill_async, spill_queue_depth : optional
        Store and spill-pipeline configuration, forwarded to
        :class:`SharedMemoryExecutor` (ignored by the other kinds).

    Returns
    -------
    ExecutorBase
        The requested executor.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers)
    if kind in ("processes", "process"):
        return ProcessExecutor(workers)
    if kind in ("shm", "sharedmem", "shared-memory"):
        return SharedMemoryExecutor(workers, store_capacity_bytes=store_capacity_bytes,
                                    spill_dir=spill_dir, spill_async=spill_async,
                                    spill_queue_depth=spill_queue_depth)
    raise ValueError(f"unknown executor kind {kind!r}")
