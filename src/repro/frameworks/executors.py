"""Task executors: the physical layer under every framework substrate.

Each framework (sparklite, dasklite, pilot, mpilite) needs to actually run
Python callables over collections of inputs.  To keep that concern in one
place the frameworks delegate to one of four executors:

* :class:`SerialExecutor` — runs tasks in the calling thread; fully
  deterministic, used by default in tests.
* :class:`ThreadExecutor` — a thread pool; NumPy/SciPy kernels release the
  GIL, so this gives real parallel speedup for the compute-heavy tasks of
  the paper (2D-RMSD blocks, cdist blocks) without pickling overhead.
* :class:`ProcessExecutor` — a process pool (``spawn`` not required, the
  default start method is used); incurs pickling of inputs and outputs,
  which is exactly the serialization cost the paper discusses for
  Python frameworks.
* :class:`SharedMemoryExecutor` — a process pool with the zero-copy data
  plane of :mod:`repro.frameworks.shm`: array payloads are registered in
  a :class:`~repro.frameworks.shm.SharedMemoryStore` once and workers
  receive tiny :class:`~repro.frameworks.shm.BlockRef` handles that
  rehydrate as views — and the same happens in reverse for results,
  which workers publish into shared segments and the driver adopts
  zero-copy instead of unpickling.

All executors record per-task wall-clock durations so the frameworks can
report scheduling overhead separately from useful work; the process-based
executors additionally record, per task, ``bytes_pickled`` /
``bytes_results_pickled`` (payload bytes that crossed the process
boundary serialized, in each direction) and ``bytes_shared`` /
``bytes_results_shared`` (array bytes the task accessed or returned
through shared memory instead).

Fault tolerance
---------------
Every executor honours an optional
:class:`~repro.frameworks.faults.FaultPolicy` (plus a deterministic
:class:`~repro.frameworks.faults.FaultInjector` for chaos testing).
The in-process executors retry failing tasks in place; the process-pool
executors run a full recovery loop: tasks are fed to the pool with at
most ``workers`` in flight, a worker death (detected by the pool's
broken sentinel, or by the driver killing a worker whose heartbeat went
stale) marks the in-flight tasks lost, the orphaned result segments of
the dead worker are swept, the pool is rebuilt, and the lost tasks are
resubmitted — so one killed worker costs one task re-execution instead
of the whole run.  Per-task ``retries`` / ``lost`` /
``recovery_seconds`` land in the :class:`TaskTiming` records and roll
up into :class:`~repro.frameworks.base.RunMetrics`.
"""

from __future__ import annotations

import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .faults import (
    NO_RETRIES,
    BlockLost,
    FaultInjector,
    FaultPolicy,
    FaultSpec,
    WorkerLost,
    apply_block_fault,
    clear_heartbeat,
    execute_worker_fault,
    kill_heartbeat_workers,
    kill_stale_workers,
    reap_dead_heartbeats,
    simulate_in_process_fault,
    unlink_result_refs,
    write_heartbeat,
)
from .shm import (
    SharedMemoryStore,
    adopt_payload,
    mark_handed_off,
    publish_payload,
    refs_nbytes,
    resolve_payload,
    share_payload,
    sweep_orphan_segments,
)

__all__ = [
    "TaskTiming",
    "ExecutorBase",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "SharedMemoryExecutor",
    "make_executor",
    "default_worker_count",
]


def default_worker_count() -> int:
    """Return a sensible default worker count for the local machine.

    One core is reserved for the driver (scheduler loops, result
    gathering, the interactive session), matching the deployment the
    paper's single-node runs use; the floor of 1 keeps single-core
    machines working.

    Returns
    -------
    int
        ``max(1, cpu_count - 1)``.
    """
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass
class TaskTiming:
    """Wall-clock timing and data-plane accounting of one executed task.

    Parameters
    ----------
    index : int
        Position of the task in the submitted batch.
    start, stop : float
        ``perf_counter`` timestamps bracketing the task (including its
        payload deserialization and result serialization, where a real
        deployment pays them).
    bytes_pickled : int, optional
        The task's *input payload* bytes serialized across a process
        boundary.
    bytes_shared : int, optional
        Array bytes the task accessed through the shared-memory plane
        instead of receiving them in the payload.
    bytes_results_pickled : int, optional
        The task's *result payload* bytes serialized back across the
        boundary (for the shm plane this is just the refs).
    bytes_results_shared : int, optional
        Array bytes the task returned through shared memory instead of
        the result payload.
    spill_wait_seconds : float, optional
        Seconds the driver's store stalled the hot path on spill
        eviction while staging this task's payload and adopting its
        results (the full file write for synchronous stores,
        backpressure blocking for write-behind stores).
    spill_hidden_seconds : float, optional
        Spill-writer seconds that elapsed in the background during the
        same windows — file writes the write-behind pipeline hid from
        the put path.
    retries : int, optional
        Times this task was re-executed before the recorded (successful)
        attempt; ``start``/``stop`` bracket the final attempt only.
    lost : int, optional
        How many of those failures were worker deaths or lost blocks
        (the resilience layer's ``tasks_lost`` events).
    recovery_seconds : float, optional
        Driver-observed recovery time attributed to this task: backoff
        pauses, block healing, and (for the task that triggered it) the
        process-pool rebuild after a worker death.
    speculated : int, optional
        Speculative duplicate attempts launched because this task
        straggled past the policy's ``speculation_factor`` threshold.
    speculation_won : int, optional
        1 when the recorded result came from a speculative duplicate
        that beat the original attempt.

    Notes
    -----
    All byte and spill counters stay 0 for in-process executors, where
    no boundary is crossed and the framework's store is driven directly.
    """

    index: int
    start: float
    stop: float
    bytes_pickled: int = 0
    bytes_shared: int = 0
    bytes_results_pickled: int = 0
    bytes_results_shared: int = 0
    spill_wait_seconds: float = 0.0
    spill_hidden_seconds: float = 0.0
    retries: int = 0
    lost: int = 0
    recovery_seconds: float = 0.0
    speculated: int = 0
    speculation_won: int = 0

    @property
    def duration(self) -> float:
        """Task duration in seconds."""
        return self.stop - self.start


@dataclass
class ExecutorBase:
    """Common interface: ``map_tasks(fn, items)`` -> list of results.

    Results are always returned in input order.  ``timings`` holds the
    per-task wall clock of the most recent ``map_tasks`` call.

    ``fault_policy`` / ``fault_injector`` opt the executor into the
    resilience layer (``None`` keeps the fail-fast behaviour); a
    framework running on the shm data plane also points ``fault_store``
    at its store so lost-block healing can reach the registered source
    arrays.
    """

    workers: int = 1
    timings: List[TaskTiming] = field(default_factory=list, repr=False)
    fault_policy: Optional[FaultPolicy] = field(default=None, repr=False)
    fault_injector: Optional[FaultInjector] = field(default=None, repr=False)
    fault_store: Optional[SharedMemoryStore] = field(default=None, repr=False)
    #: heartbeat files left in ``hb_dir`` at the end of the last pooled
    #: run (after dead-pid reaping) — the clean-shutdown hygiene
    #: invariant the chaos suite asserts is that this list is empty
    last_hb_leftovers: List[str] = field(default_factory=list, repr=False)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in order.

        Parameters
        ----------
        fn : callable
            Task function applied to each item.
        items : sequence
            Task payloads.

        Returns
        -------
        list
            ``[fn(item) for item in items]``, computed on this
            executor's resources.
        """
        raise NotImplementedError

    def map_with_args(self, fn: Callable[..., Any],
                      items: Sequence[tuple]) -> List[Any]:
        """Run ``fn(*args)`` for every argument tuple in ``items``."""
        return self.map_tasks(lambda args: fn(*args), items)

    @property
    def total_task_time(self) -> float:
        """Sum of task durations from the last ``map_tasks`` call."""
        return sum(t.duration for t in self.timings)

    @property
    def total_bytes_pickled(self) -> int:
        """Input payload bytes pickled across process boundaries (last call)."""
        return sum(t.bytes_pickled for t in self.timings)

    @property
    def total_bytes_shared(self) -> int:
        """Array bytes accessed through shared memory (last call)."""
        return sum(t.bytes_shared for t in self.timings)

    @property
    def total_bytes_results_pickled(self) -> int:
        """Result payload bytes pickled back across the boundary (last call)."""
        return sum(t.bytes_results_pickled for t in self.timings)

    @property
    def total_bytes_results_shared(self) -> int:
        """Array bytes returned through shared memory (last call)."""
        return sum(t.bytes_results_shared for t in self.timings)

    @property
    def total_spill_wait_seconds(self) -> float:
        """Seconds spill eviction stalled the hot path (last call)."""
        return sum(t.spill_wait_seconds for t in self.timings)

    @property
    def total_spill_hidden_seconds(self) -> float:
        """Background spill-writer seconds observed during the last call."""
        return sum(t.spill_hidden_seconds for t in self.timings)

    @property
    def total_tasks_retried(self) -> int:
        """Task re-executions performed during the last call."""
        return sum(t.retries for t in self.timings)

    @property
    def total_tasks_lost(self) -> int:
        """Worker-death / lost-block failures recovered during the last call."""
        return sum(t.lost for t in self.timings)

    @property
    def total_recovery_seconds(self) -> float:
        """Driver-observed recovery time spent during the last call."""
        return sum(t.recovery_seconds for t in self.timings)

    @property
    def total_tasks_speculated(self) -> int:
        """Speculative duplicate attempts launched during the last call."""
        return sum(t.speculated for t in self.timings)

    @property
    def total_speculation_wins(self) -> int:
        """Speculative duplicates that beat their original (last call)."""
        return sum(t.speculation_won for t in self.timings)

    def _fault_context(self) -> Tuple[FaultPolicy, Optional[FaultInjector],
                                      Optional[SharedMemoryStore]]:
        """The (policy, injector, store) triple the retry loops consult."""
        store = getattr(self, "store", None) or self.fault_store
        return self.fault_policy or NO_RETRIES, self.fault_injector, store

    def _call_retrying(self, fn: Callable[[Any], Any], index: int,
                       item: Any) -> Tuple[Any, TaskTiming]:
        """Run one task in-process under the executor's fault policy.

        Claims the dispatch's fault from the injector (simulating
        ``kill_worker`` as :class:`~repro.frameworks.faults.WorkerLost`,
        since a real kill would take the driver down), re-executes per
        the policy, and heals lost payload blocks from their registered
        source arrays between attempts.

        Parameters
        ----------
        fn : callable
            Task function.
        index : int
            Task position in the submitted batch.
        item : Any
            Task payload.

        Returns
        -------
        result : Any
            The successful attempt's return value.
        timing : TaskTiming
            Timing of the final attempt, carrying the retry counters.
        """
        policy, injector, store = self._fault_context()
        retries = lost = 0
        recovery = 0.0
        speculated = spec_won = 0
        attempt = 0
        while True:
            spec = injector.claim(attempt) if injector is not None else None
            start = time.perf_counter()
            try:
                if spec is not None:
                    if spec.is_block_fault:
                        apply_block_fault(spec, store)
                    elif (spec.kind == "delay"
                          and policy.speculation_factor is not None):
                        # in-process straggler simulation: a real pool
                        # would race a duplicate attempt and take its
                        # result; here the duplicate "wins" immediately
                        # instead of sleeping out the injected delay
                        speculated = spec_won = 1
                    else:
                        simulate_in_process_fault(spec)
                result = fn(item)
                return result, TaskTiming(index, start, time.perf_counter(),
                                          retries=retries, lost=lost,
                                          recovery_seconds=recovery,
                                          speculated=speculated,
                                          speculation_won=spec_won)
            except Exception as exc:  # noqa: BLE001 - the policy decides
                if not policy.should_retry(exc, attempt):
                    raise
                recover_start = time.perf_counter()
                if isinstance(exc, BlockLost) and store is not None:
                    store.recover_spilled_block(exc.segment)
                pause = policy.backoff_for(attempt)
                if pause:
                    time.sleep(pause)
                attempt += 1
                retries += 1
                lost += int(isinstance(exc, (WorkerLost, BlockLost)))
                recovery += time.perf_counter() - recover_start

    def _after_pool_break(self) -> None:
        """Hook run between reaping a broken pool and rebuilding it.

        The shm executor sweeps the dead workers' orphaned result
        segments and settles the spill pipeline here; the base hook does
        nothing.
        """

    def shutdown(self) -> None:
        """Release any pooled resources (no-op for stateless executors)."""


class SerialExecutor(ExecutorBase):
    """Run every task in the calling thread, in order."""

    def __init__(self, fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=1, fault_policy=fault_policy,
                         fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks one after another in the calling thread."""
        self.timings = []
        results: List[Any] = []
        for i, item in enumerate(items):
            result, timing = self._call_retrying(fn, i, item)
            results.append(result)
            self.timings.append(timing)
        return results


class ThreadExecutor(ExecutorBase):
    """Thread-pool executor (shared memory, no pickling).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    fault_policy : FaultPolicy, optional
        Per-task retry policy (``None`` keeps fail-fast behaviour).
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on the thread pool, preserving input order."""
        self.timings = []
        items = list(items)
        results: List[Any] = [None] * len(items)
        timings: List[TaskTiming] = [None] * len(items)  # type: ignore[list-item]

        def run(index: int, item: Any) -> None:
            results[index], timings[index] = self._call_retrying(fn, index, item)

        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(run, i, item) for i, item in enumerate(items)]
            for future in futures:
                future.result()  # re-raise worker exceptions here
        self.timings = list(timings)
        return results


def _timed_call(payload: tuple) -> tuple:
    """Run one pre-pickled task in a pool worker (pickle plane).

    The item arrives pre-pickled (serialized exactly once, driver-side,
    which is also how its byte count is measured); deserialization and
    the result's serialization both run inside the timed region, where a
    real deployment pays them.  The result returns as a pickle blob so
    the driver can account the exact bytes that crossed back.

    ``spec`` carries a claimed task-side fault to execute here (a real
    SIGKILL for ``kill_worker``), and ``hb_dir`` the heartbeat directory
    this worker stamps for the driver's hung-worker monitor.
    """
    index, fn, blob, spec, hb_dir = payload
    write_heartbeat(hb_dir)
    try:
        if spec is not None:
            execute_worker_fault(spec)
        start = time.perf_counter()
        result = fn(pickle.loads(blob))
        out = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        stop = time.perf_counter()
        if (spec is not None and spec.kind == "kill_worker"
                and spec.when == "after_publish"):
            os.kill(os.getpid(), signal.SIGKILL)
        return index, out, start, stop
    finally:
        clear_heartbeat(hb_dir)


class _PoolBroke(Exception):
    """Internal: the process pool died under the current in-flight set."""


class _PooledMapEngine:
    """Fault-tolerant task feeder shared by the two process-pool executors.

    Feeds at most ``workers`` tasks into a :class:`ProcessPoolExecutor`
    at a time (so worker death loses at most one task per worker) and
    implements the whole recovery protocol:

    * a *task exception* returned by a worker is retried per the policy
      (lost payload blocks are healed from their registered sources
      between attempts);
    * a *broken pool* (worker SIGKILLed, OOM-killed, or killed by the
      heartbeat monitor below) marks the in-flight tasks lost, reaps
      the pool, runs the owner's :meth:`ExecutorBase._after_pool_break`
      hook (the shm executor sweeps the dead workers' orphaned result
      segments there), rebuilds the pool and resubmits;
    * with ``heartbeat_timeout_s`` set, the driver checks worker
      heartbeat files while waiting and SIGKILLs any worker whose
      current task overran the timeout — converting a hang into the
      broken-pool path above;
    * with ``speculation_factor`` set, a task still in flight after
      ``speculation_factor * median(completed durations)`` (floored at
      one heartbeat interval) gets a *duplicate attempt* submitted to a
      free worker.  The first attempt to return wins and is recorded;
      the loser's result is discarded (``on_discard``, so published
      segments never leak), and a loser that never returns — the
      straggler itself — is SIGKILLed once every result is in, its
      leftovers reclaimed by the ordinary broken-pool sweep;
    * a result whose blocks cannot be adopted (``on_result`` raises
      :class:`~repro.frameworks.shm.BlockLost`) is treated as lost and
      the task re-executed.

    Faults are claimed from the injector once per first-attempt dispatch
    in dispatch order; task-side faults ship to the worker inside the
    payload, driver-side block faults are applied at dispatch (or, for
    ``target="result"``, remembered and applied to the returned refs
    before adoption).  Speculative duplicates never touch the injector:
    the exactly-once injection contract counts real dispatches only.
    """

    def __init__(self, owner: "ExecutorBase", worker_fn: Callable[[tuple], tuple],
                 payload_for: Callable[[int, Optional[FaultSpec], Optional[str]], tuple],
                 on_result: Callable[[int, tuple, Optional[FaultSpec], tuple], None],
                 n_tasks: int,
                 on_discard: Optional[Callable[[tuple], None]] = None) -> None:
        self.owner = owner
        self.worker_fn = worker_fn
        self.payload_for = payload_for
        self.on_result = on_result
        self.on_discard = on_discard
        self.n_tasks = n_tasks
        policy, injector, store = owner._fault_context()
        self.policy = policy
        self.injector = injector
        self.store = store
        self.attempts = [0] * n_tasks
        self.retries = [0] * n_tasks
        self.lost = [0] * n_tasks
        self.recovery = [0.0] * n_tasks
        self.speculated = [0] * n_tasks
        self.spec_won = [0] * n_tasks
        self.result_faults: Dict[int, FaultSpec] = {}
        self._durations: List[float] = []
        self._completed: set = set()
        self._spec_futures: set = set()
        self._launched: Dict[Any, float] = {}

    # ------------------------------------------------------------------ #
    def _fail(self, index: int, exc: BaseException, pending: "deque[int]",
              front: bool = False) -> None:
        """Handle one task failure: schedule a retry or re-raise."""
        if not self.policy.should_retry(exc, self.attempts[index]):
            raise exc
        recover_start = time.perf_counter()
        is_lost = isinstance(exc, (WorkerLost, BlockLost))
        if isinstance(exc, BlockLost) and self.store is not None:
            self.store.recover_spilled_block(exc.segment)
        pause = self.policy.backoff_for(self.attempts[index])
        if pause:
            time.sleep(pause)
        self.attempts[index] += 1
        self.retries[index] += 1
        self.lost[index] += int(is_lost)
        self.recovery[index] += time.perf_counter() - recover_start
        if front:
            pending.appendleft(index)
        else:
            pending.append(index)

    def _dispatch_spec(self, index: int) -> Optional[FaultSpec]:
        """Claim and pre-process this dispatch's fault; the worker-side part."""
        if self.injector is None:
            return None
        spec = self.injector.claim(self.attempts[index])
        if spec is None:
            return None
        if spec.is_block_fault:
            if spec.target == "result":
                self.result_faults[index] = spec
            else:
                apply_block_fault(spec, self.store)
            return None
        return spec

    def stats_for(self, index: int) -> tuple:
        """Per-task (retries, lost, recovery_seconds, speculated, wins)."""
        return (self.retries[index], self.lost[index], self.recovery[index],
                self.speculated[index], self.spec_won[index])

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Execute every task to completion (or raise the fatal failure)."""
        hb_dir: Optional[str] = None
        if (self.policy.heartbeat_timeout_s is not None
                or self.policy.speculation_factor is not None):
            hb_dir = tempfile.mkdtemp(prefix="repro-hb-")
        pending: "deque[int]" = deque(range(self.n_tasks))
        in_flight: Dict[Any, int] = {}
        pool = ProcessPoolExecutor(max_workers=self.owner.workers)
        try:
            while pending or in_flight:
                try:
                    self._pump(pool, pending, in_flight, hb_dir)
                except _PoolBroke:
                    pool = self._recover(pool, pending, in_flight, hb_dir)
        finally:
            pool.shutdown(wait=True)
            if hb_dir is not None:
                try:
                    self.owner.last_hb_leftovers = sorted(os.listdir(hb_dir))
                except OSError:
                    self.owner.last_hb_leftovers = []
                shutil.rmtree(hb_dir, ignore_errors=True)

    def _pump(self, pool: ProcessPoolExecutor, pending: "deque[int]",
              in_flight: Dict[Any, int], hb_dir: Optional[str]) -> None:
        """Fill free slots, wait for completions, and process them."""
        while pending and len(in_flight) < self.owner.workers:
            index = pending.popleft()
            first_attempt = self.attempts[index] == 0
            spec = self._dispatch_spec(index)
            try:
                future = pool.submit(self.worker_fn,
                                     self.payload_for(index, spec, hb_dir))
            except BrokenProcessPool:
                # the pool died under a previous task; this dispatch never
                # started, so it goes back un-penalized — and the claim it
                # made is rolled back so the injector's dispatch counter
                # (and any claimed-but-unexecuted spec) stays exact
                if self.injector is not None and first_attempt:
                    self.injector.unclaim(spec or self.result_faults.pop(index, None))
                pending.appendleft(index)
                raise _PoolBroke() from None
            in_flight[future] = index
            self._launched[future] = time.monotonic()
        if not in_flight:
            return
        if (not pending and hb_dir is not None
                and all(i in self._completed for i in in_flight.values())):
            # every result is in; the only occupied workers are beaten
            # straggler attempts.  SIGKILL them (ownership-verified via
            # the heartbeat files) and let the broken-pool path below
            # reap, sweep and rebuild with nothing left to resubmit.
            kill_heartbeat_workers(hb_dir)
        timeout = self.policy.heartbeat_interval_s if hb_dir is not None else None
        done, _ = futures_wait(set(in_flight), timeout=timeout,
                               return_when=FIRST_COMPLETED)
        if not done:
            if hb_dir is not None and self.policy.heartbeat_timeout_s is not None:
                kill_stale_workers(hb_dir, self.policy.heartbeat_timeout_s)
            self._maybe_speculate(pool, pending, in_flight, hb_dir)
            return
        broke = False
        for future in done:
            index = in_flight.pop(future)
            was_dup = future in self._spec_futures
            self._spec_futures.discard(future)
            self._launched.pop(future, None)
            try:
                out = future.result()
            except BrokenProcessPool:
                in_flight[future] = index  # counted lost by the recovery
                if was_dup:
                    self._spec_futures.add(future)
                broke = True
                continue
            except Exception as exc:  # noqa: BLE001 - policy decides below
                if index in self._completed:
                    continue  # a beaten attempt failed; the winner landed
                self._fail(index, exc, pending)
                continue
            if index in self._completed:
                # the losing attempt of a speculated task finished after
                # the winner: discard its result (and published segments)
                if self.on_discard is not None:
                    self.on_discard(out)
                continue
            self._completed.add(index)
            if was_dup:
                self.spec_won[index] += 1
            if self.policy.speculation_factor is not None:
                self._durations.append(max(0.0, out[3] - out[2]))
            try:
                self.on_result(index, out, self.result_faults.pop(index, None),
                               self.stats_for(index))
            except BlockLost as exc:
                # the result's segments vanished before adoption:
                # re-execute the producing task
                self._completed.discard(index)
                if was_dup and self.spec_won[index]:
                    self.spec_won[index] -= 1
                self._fail(index, exc, pending)
        if broke:
            raise _PoolBroke()
        self._maybe_speculate(pool, pending, in_flight, hb_dir)

    def _maybe_speculate(self, pool: ProcessPoolExecutor, pending: "deque[int]",
                         in_flight: Dict[Any, int],
                         hb_dir: Optional[str]) -> None:
        """Launch duplicate attempts for tasks straggling past the threshold.

        The threshold is ``speculation_factor * median(completed task
        durations)``, floored at one ``heartbeat_interval_s`` so a batch
        of microsecond tasks cannot trip speculation on dispatch jitter.
        At most one duplicate per task, only onto genuinely free workers
        (pending tasks always fill slots first), and never through the
        injector — duplicates cannot fire or consume injected faults.
        """
        factor = self.policy.speculation_factor
        if factor is None or pending or not self._durations:
            return
        ordered = sorted(self._durations)
        median = ordered[len(ordered) // 2]
        threshold = factor * max(median, self.policy.heartbeat_interval_s)
        now = time.monotonic()
        for future, index in list(in_flight.items()):
            if len(in_flight) >= self.owner.workers:
                return
            if (future in self._spec_futures or self.speculated[index]
                    or index in self._completed):
                continue
            if now - self._launched.get(future, now) <= threshold:
                continue
            try:
                dup = pool.submit(self.worker_fn,
                                  self.payload_for(index, None, hb_dir))
            except BrokenProcessPool:
                return  # the primary's failure handling owns this path
            in_flight[dup] = index
            self._launched[dup] = now
            self._spec_futures.add(dup)
            self.speculated[index] += 1

    def _recover(self, pool: ProcessPoolExecutor, pending: "deque[int]",
                 in_flight: Dict[Any, int],
                 hb_dir: Optional[str]) -> ProcessPoolExecutor:
        """Broken-pool path: account lost tasks, sweep, rebuild, resubmit."""
        recover_start = time.perf_counter()
        doomed = sorted(set(in_flight.values()))
        in_flight.clear()
        self._spec_futures.clear()
        self._launched.clear()
        pool.shutdown(wait=True)  # reap the dead workers first
        self.owner._after_pool_break()
        if hb_dir is not None:
            # a SIGKILLed worker never ran its clear_heartbeat; drop the
            # files of dead/recycled pids so hb_dir ends the run empty
            reap_dead_heartbeats(hb_dir)
        alive = [i for i in doomed if i not in self._completed]
        for index in reversed(alive):
            self._fail(index, WorkerLost(
                f"worker died while task {index} was in flight"),
                pending, front=True)
        replacement = ProcessPoolExecutor(max_workers=self.owner.workers)
        if alive:
            self.recovery[alive[0]] += time.perf_counter() - recover_start
        return replacement


class ProcessExecutor(ExecutorBase):
    """Process-pool executor (pays pickling costs, bypasses the GIL).

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    fault_policy : FaultPolicy, optional
        Opt into worker-death recovery and task retries (see the module
        docstring); ``None`` keeps the fail-fast behaviour.
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool, measuring both crossings."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # serialize each payload exactly once: the blob is both the bytes
        # shipped to the worker and the measurement of what crossed
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in items]
        results: List[Any] = [None] * len(items)
        timings: List[Optional[TaskTiming]] = [None] * len(items)

        def payload_for(i: int, spec: Optional[FaultSpec],
                        hb_dir: Optional[str]) -> tuple:
            return (i, fn, blobs[i], spec, hb_dir)

        def on_result(i: int, out_tuple: tuple, result_fault: Optional[FaultSpec],
                      stats: tuple) -> None:
            _, out, start, stop = out_tuple
            # result-target block faults act on shm segments; the pickle
            # plane has none, so they are inert here
            results[i] = pickle.loads(out)
            retries, lost, recovery, speculated, spec_won = stats
            timings[i] = TaskTiming(i, start, stop,
                                    bytes_pickled=len(blobs[i]),
                                    bytes_results_pickled=len(out),
                                    retries=retries, lost=lost,
                                    recovery_seconds=recovery,
                                    speculated=speculated,
                                    speculation_won=spec_won)

        _PooledMapEngine(self, _timed_call, payload_for, on_result,
                         len(items)).run()
        self.timings = [t for t in timings if t is not None]
        return results


def _shm_timed_call(payload: tuple) -> tuple:
    """Run one task in a pool worker on the shm plane, both directions.

    Unpickling the (tiny) ref payload plus attaching to the segments
    *is* this data plane's deserialization cost, and publishing the
    result arrays into shared segments is its serialization cost — both
    run inside the timed region, exactly where pickling/unpickling shows
    up for :class:`ProcessExecutor`.  Only the published refs travel
    back through the pickle channel.

    ``spec`` carries a claimed task-side fault: a ``kill_worker`` with
    ``when="after_publish"`` SIGKILLs *between* publishing and the
    hand-off — the crash window whose pid-keyed orphan segments the
    driver's recovery sweep reclaims.
    """
    index, fn, blob, spec, hb_dir = payload
    write_heartbeat(hb_dir)
    try:
        if spec is not None:
            execute_worker_fault(spec)
        start = time.perf_counter()
        result = fn(resolve_payload(pickle.loads(blob)))
        published, shared = publish_payload(result)
        out = pickle.dumps(published, protocol=pickle.HIGHEST_PROTOCOL)
        stop = time.perf_counter()
        if (spec is not None and spec.kind == "kill_worker"
                and spec.when == "after_publish"):
            # die with the refs unreturned: the segments are orphans only
            # the pid-keyed sweep can reclaim (SIGKILL skips every hook)
            os.kill(os.getpid(), signal.SIGKILL)
        # the blob is on its way to the driver, whose store adopts the
        # segments; this worker's crash-cleanup hook must leave them alone
        mark_handed_off(published)
        return index, out, start, stop, shared
    finally:
        clear_heartbeat(hb_dir)


class SharedMemoryExecutor(ExecutorBase):
    """Process-pool executor with a zero-copy shared-memory data plane.

    Before submission every task payload is walked and its NumPy arrays
    are registered in the executor's :class:`SharedMemoryStore` (each
    distinct array exactly once); the workers receive payloads whose
    arrays are replaced by :class:`~repro.frameworks.shm.BlockRef`
    handles and rehydrate them as views of the shared segments.  Results
    travel the same plane in reverse: workers publish result arrays into
    fresh segments, only the refs return through the pickle channel, and
    the driver adopts the segments into the store — so returned arrays
    are read-only views that stay valid until the store is cleaned up
    (:meth:`shutdown`), and they spill to disk with the rest of the
    store when a capacity is configured.

    Parameters
    ----------
    workers : int, optional
        Pool size; defaults to :func:`default_worker_count`.
    store : SharedMemoryStore, optional
        An existing store to register payloads in (shared with a
        framework, for example).  When omitted the executor owns a
        private store and unlinks its segments on :meth:`shutdown`.
    store_capacity_bytes : int, optional
        Capacity watermark for a privately owned store (ignored when
        ``store`` is given); segments past it spill to disk.
    spill_dir : str, optional
        Spill directory for a privately owned store.
    spill_async : bool, optional
        Write-behind spilling for a privately owned store (default
        ``True``; see :class:`~repro.frameworks.shm.SharedMemoryStore`).
    spill_queue_depth : int, optional
        Bounded spill-queue depth for a privately owned store.
    fault_policy : FaultPolicy, optional
        Opt into worker-death recovery, retries, the heartbeat monitor
        and lost-block handling; ``None`` keeps fail-fast behaviour.
    fault_injector : FaultInjector, optional
        Deterministic chaos source consumed at dispatch time.
    """

    def __init__(self, workers: int | None = None,
                 store: SharedMemoryStore | None = None,
                 store_capacity_bytes: int | None = None,
                 spill_dir: str | None = None,
                 spill_async: bool = True,
                 spill_queue_depth: int = 4,
                 fault_policy: FaultPolicy | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        super().__init__(workers=workers or default_worker_count(),
                         fault_policy=fault_policy, fault_injector=fault_injector)
        if store is not None:
            self.store = store
        else:
            self.store = SharedMemoryStore(capacity_bytes=store_capacity_bytes,
                                           spill_dir=spill_dir,
                                           spill_async=spill_async,
                                           spill_queue_depth=spill_queue_depth)
        self._owns_store = store is None

    def _after_pool_break(self) -> None:
        """Reclaim what a dead worker left behind before resubmitting.

        A SIGKILLed worker runs neither ``atexit`` nor its
        ``multiprocessing.util.Finalize`` hooks, so result segments it
        published but never handed off would outlive the run —
        :func:`~repro.frameworks.shm.sweep_orphan_segments` reclaims
        them by their pid-keyed names now that the pool's processes are
        reaped.  The spill pipeline is settled too, so resubmitted tasks
        resolve through a consistent tier state; a sticky spill-writer
        failure is tolerated here — the flush reinstates the enqueued
        blocks as resident (no names leak) and the recovery proceeds
        with spilling disabled.
        """
        sweep_orphan_segments()
        try:
            self.store.flush_spill()
        except RuntimeError:
            pass

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run the tasks on a process pool with zero-copy payloads and results."""
        self.timings = []
        items = list(items)
        if not items:
            return []
        # staging payloads can trigger spill eviction; attribute each
        # item's put-path stall (and background-writer progress) so the
        # per-task timings carry the write-behind split
        shared_items: List[Any] = []
        stage_waits: List[float] = []
        stage_hidden: List[float] = []
        for item in items:
            wait0 = self.store.spill_wait_seconds
            hidden0 = self.store.spill_hidden_seconds
            shared_items.append(share_payload(item, self.store)[0])
            stage_waits.append(self.store.spill_wait_seconds - wait0)
            stage_hidden.append(self.store.spill_hidden_seconds - hidden0)
        blobs = [pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                 for item in shared_items]
        shared_sizes = [refs_nbytes(item) for item in shared_items]
        results: List[Any] = [None] * len(items)
        timings: List[Optional[TaskTiming]] = [None] * len(items)

        def payload_for(i: int, spec: Optional[FaultSpec],
                        hb_dir: Optional[str]) -> tuple:
            return (i, fn, blobs[i], spec, hb_dir)

        def on_result(i: int, out_tuple: tuple, result_fault: Optional[FaultSpec],
                      stats: tuple) -> None:
            _, out, start, stop, shared = out_tuple
            payload = pickle.loads(out)
            if result_fault is not None:
                # injected handoff crash: the refs' segments vanish before
                # adoption, which must surface as BlockLost → re-execution
                unlink_result_refs(payload)
            # adopt while the pool is alive: the worker that created the
            # segments keeps them mapped until the driver owns them
            wait0 = self.store.spill_wait_seconds
            hidden0 = self.store.spill_hidden_seconds
            results[i] = adopt_payload(payload, self.store)
            retries, lost, recovery, speculated, spec_won = stats
            timings[i] = TaskTiming(
                i, start, stop,
                bytes_pickled=len(blobs[i]),
                bytes_shared=shared_sizes[i],
                bytes_results_pickled=len(out),
                bytes_results_shared=shared,
                spill_wait_seconds=stage_waits[i]
                + self.store.spill_wait_seconds - wait0,
                spill_hidden_seconds=stage_hidden[i]
                + self.store.spill_hidden_seconds - hidden0,
                retries=retries, lost=lost, recovery_seconds=recovery,
                speculated=speculated, speculation_won=spec_won)

        def on_discard(out_tuple: tuple) -> None:
            # a beaten speculative attempt still published its result
            # segments (and marked them handed off, so its own crash
            # cleanup leaves them alone); unlink them here or they leak
            try:
                unlink_result_refs(pickle.loads(out_tuple[1]))
            except Exception:  # noqa: BLE001 - best-effort reclamation
                pass

        _PooledMapEngine(self, _shm_timed_call, payload_for, on_result,
                         len(items), on_discard=on_discard).run()
        self.timings = [t for t in timings if t is not None]
        return results

    def shutdown(self) -> None:
        """Unlink the owned store's segments (shared stores are left alone)."""
        if self._owns_store:
            self.store.cleanup()


def make_executor(kind: str = "serial", workers: int | None = None,
                  store_capacity_bytes: int | None = None,
                  spill_dir: str | None = None,
                  spill_async: bool = True,
                  spill_queue_depth: int = 4,
                  fault_policy: FaultPolicy | None = None,
                  fault_injector: FaultInjector | None = None) -> ExecutorBase:
    """Build an executor by name.

    Parameters
    ----------
    kind : str
        ``"serial"``, ``"threads"``, ``"processes"`` or ``"shm"``.
    workers : int, optional
        Pool size for the pooled kinds.
    store_capacity_bytes, spill_dir, spill_async, spill_queue_depth : optional
        Store and spill-pipeline configuration, forwarded to
        :class:`SharedMemoryExecutor` (ignored by the other kinds).
    fault_policy : FaultPolicy, optional
        Retry/recovery policy for the resilience layer (all kinds).
    fault_injector : FaultInjector, optional
        Deterministic chaos source for fault-injection runs (all kinds).

    Returns
    -------
    ExecutorBase
        The requested executor.
    """
    if kind == "serial":
        return SerialExecutor(fault_policy=fault_policy,
                              fault_injector=fault_injector)
    if kind in ("threads", "thread"):
        return ThreadExecutor(workers, fault_policy=fault_policy,
                              fault_injector=fault_injector)
    if kind in ("processes", "process"):
        return ProcessExecutor(workers, fault_policy=fault_policy,
                               fault_injector=fault_injector)
    if kind in ("shm", "sharedmem", "shared-memory"):
        return SharedMemoryExecutor(workers,
                                    store_capacity_bytes=store_capacity_bytes,
                                    spill_dir=spill_dir, spill_async=spill_async,
                                    spill_queue_depth=spill_queue_depth,
                                    fault_policy=fault_policy,
                                    fault_injector=fault_injector)
    raise ValueError(f"unknown executor kind {kind!r}")
