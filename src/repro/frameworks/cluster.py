"""Cluster resource model.

The paper runs on two XSEDE machines — SDSC Comet (24 Haswell cores and
128 GB per node) and TACC Wrangler (24 hyper-threaded Haswell cores, i.e.
48 hardware threads, and 128 GB per node) — using up to 10 nodes.  All
frameworks in this package describe the resources they run on with a
:class:`ClusterSpec`; the perfmodel extends it with machine-specific cost
constants (see :mod:`repro.perfmodel.machines`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec", "local_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster allocation.

    Attributes
    ----------
    nodes:
        Number of allocated nodes.
    cores_per_node:
        Physical cores per node.
    memory_per_node_gb:
        Usable memory per node in GB.
    hyperthreads_per_core:
        Hardware threads per core (2 on Wrangler, 1 on Comet).  The paper
        observes that scheduling onto hyperthreads yields lower speedups
        than onto physical cores; the perfmodel uses this factor for that
        effect.
    name:
        Label used in reports ("comet", "wrangler", "local", ...).
    """

    nodes: int = 1
    cores_per_node: int = 4
    memory_per_node_gb: float = 8.0
    hyperthreads_per_core: int = 1
    name: str = "local"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be >= 1")
        if self.memory_per_node_gb <= 0:
            raise ValueError("memory_per_node_gb must be positive")
        if self.hyperthreads_per_core < 1:
            raise ValueError("hyperthreads_per_core must be >= 1")

    @property
    def total_cores(self) -> int:
        """Total physical cores in the allocation."""
        return self.nodes * self.cores_per_node

    @property
    def total_slots(self) -> int:
        """Total schedulable slots (cores x hyperthreads)."""
        return self.total_cores * self.hyperthreads_per_core

    @property
    def total_memory_gb(self) -> float:
        """Total memory in the allocation (GB)."""
        return self.nodes * self.memory_per_node_gb

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        """Return a copy with a different node count."""
        return ClusterSpec(nodes=nodes, cores_per_node=self.cores_per_node,
                           memory_per_node_gb=self.memory_per_node_gb,
                           hyperthreads_per_core=self.hyperthreads_per_core,
                           name=self.name)

    def for_cores(self, cores: int) -> "ClusterSpec":
        """Return the smallest allocation of whole nodes providing ``cores`` slots.

        Mirrors how the paper reports runs as "cores/nodes" pairs
        (e.g. 256/8 on Wrangler where a node exposes 32 slots used).
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        per_node = self.cores_per_node * self.hyperthreads_per_core
        nodes = max(1, -(-cores // per_node))  # ceil division
        return self.with_nodes(nodes)


def local_cluster(cores: int = 4, memory_gb: float = 8.0) -> ClusterSpec:
    """A single-node "cluster" describing the local machine."""
    return ClusterSpec(nodes=1, cores_per_node=cores, memory_per_node_gb=memory_gb,
                       hyperthreads_per_core=1, name="local")
